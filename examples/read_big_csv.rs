//! Out-of-core CSV ingest end to end: open a file larger than the session's memory
//! budget, run a filter → groupby → sort pipeline over it, and write the result back
//! — without the full frame ever being resident.
//!
//! This is the "first statement of nearly every workflow" scenario the parallel
//! ingest subsystem exists for: the file is planned into band-sized chunks by a
//! quote-aware scan, the chunks are parsed on the engine's worker pool, every
//! finished band goes straight into the session's spill store (so peak residency
//! stays within budget + one band per worker), and the pipeline's result is written
//! band-by-band at the end.
//!
//! Run with: `cargo run --release --example read_big_csv`

use scalable_dataframes::core::algebra::{AggFunc, Aggregation};
use scalable_dataframes::engine::engine::ModinConfig;
use scalable_dataframes::engine::session::EvalMode;
use scalable_dataframes::pandas::{PandasFrame, Session};
use scalable_dataframes::storage::csv::CsvOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows: usize = std::env::var("BIG_CSV_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);

    // 1. Generate a CSV file on disk — the kind of artifact a workflow starts from.
    let dir = std::env::temp_dir().join(format!("read-big-csv-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("trips.csv");
    {
        use std::io::Write;
        let mut writer = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(writer, "region,vendor,fare,distance")?;
        for i in 0..rows {
            writeln!(
                writer,
                "r{},{},{}.{:02},{}",
                i % 23,
                if i % 2 == 0 { "CMT" } else { "VTS" },
                3 + (i % 47),
                i % 100,
                (i % 18) + 1,
            )?;
        }
        writer.flush()?;
    }
    let file_bytes = std::fs::metadata(&path)?.len() as usize;

    // 2. A memory-budgeted session: the in-memory budget is a fraction of the file,
    //    so the parsed frame (several times the file size) can never be resident.
    let budget = file_bytes / 2;
    let session = Session::modin_with(
        ModinConfig::default()
            .with_partition_size((rows / 32).max(1024), 32)
            .with_memory_budget(budget),
        EvalMode::Eager,
    );
    println!("file: {file_bytes} bytes, session memory budget: {budget} bytes ({rows} rows)");

    // 3. Parallel out-of-core ingest, straight into a partitioned handle.
    let options = CsvOptions {
        infer_schema: true,
        ..CsvOptions::default()
    };
    let trips = PandasFrame::read_csv_path(&session, &path, &options)?;
    let ingest = session.ingest_stats().expect("modin session");
    let spill = session.spill_stats().expect("modin session");
    println!(
        "ingested: shape={:?}, bands_parsed={}, ingest_bytes={}, spill_outs={}, peak={}B",
        trips.shape()?,
        ingest.bands_parsed,
        ingest.ingest_bytes,
        spill.spill_outs,
        spill.peak_memory_bytes,
    );
    assert!(
        spill.spill_outs > 0,
        "a file larger than the budget must spill during ingest"
    );

    // 4. A real pipeline over the handle: filter → groupby → sort.
    let by_region = trips
        .filter_gt("fare", 10)?
        .groupby_agg(
            &["region"],
            vec![
                Aggregation::count_rows(),
                Aggregation::of("fare", AggFunc::Mean).with_alias("mean_fare"),
                Aggregation::of("distance", AggFunc::Sum).with_alias("total_distance"),
            ],
            false,
        )
        .sort_values(&["region"], true);
    println!(
        "\nfares > 10 by region (first rows):\n{}",
        by_region.display(5)?
    );

    // 5. Write the result band-wise (no assembly), then confirm it round-trips.
    let out_path = dir.join("by_region.csv");
    by_region.write_csv_path(&out_path)?;
    let written = std::fs::metadata(&out_path)?.len();
    println!("wrote {} bytes to {}", written, out_path.display());

    let spill = session.spill_stats().expect("modin session");
    println!(
        "session totals: spill_outs={}, load_backs={}, peak={}B (budget {}B)",
        spill.spill_outs, spill.load_backs, spill.peak_memory_bytes, budget
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
