//! Pivot in the dataframe algebra: the paper's Figure 5 example and the Figure 6 / 8
//! query plans.
//!
//! Shows (1) the exact Figure 5 narrow→wide pivot, (2) the algebra expression the API
//! builds for it (GROUPBY(collect) → MAP(flatten) → [TOLABELS] → [TRANSPOSE]),
//! (3) that the alternative Figure 8 plan produces the identical table, and (4) the
//! unpivot (round trip back to the narrow table) composed from FROMLABELS + MAP.
//!
//! Run with: `cargo run --example pivot_sales`

use scalable_dataframes::engine::optimizer::{choose_pivot_plan, PivotPlan};
use scalable_dataframes::pandas::{PandasFrame, Session};
use scalable_dataframes::workloads::sales::{figure5_narrow_table, figure5_wide_by_year};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::modin();
    let narrow = PandasFrame::from_dataframe(&session, figure5_narrow_table());
    println!("Figure 5 narrow table (SALES)\n{}", narrow.display(8)?);

    // Direct plan: group by Year, flatten the collected months, years become labels.
    let wide_by_year = narrow.pivot("Year", "Month", "Sales")?;
    println!(
        "pivot(index=Year, columns=Month) — wide table of years\n{}",
        wide_by_year.display(8)?
    );
    println!(
        "logical plan: {} operators, {} transposes, expression = {}",
        wide_by_year.expr().operator_count(),
        wide_by_year.expr().transpose_count(),
        wide_by_year.expr().name()
    );
    assert!(wide_by_year.collect()?.same_data(&figure5_wide_by_year()));

    // The Figure 8 alternative: pivot over the other axis and transpose the result.
    let alternative = narrow.pivot_with_plan(
        "Year",
        "Month",
        "Sales",
        PivotPlan::PivotOtherAxisThenTranspose,
    )?;
    assert!(alternative.collect()?.same_data(&figure5_wide_by_year()));
    println!(
        "alternative plan produces the identical table using {} transpose(s)",
        alternative.expr().transpose_count()
    );
    println!(
        "cost-based choice for pivoting by Year (3 years vs 3 months here): {:?}",
        choose_pivot_plan(3, 3)
    );

    // The transpose of the wide-by-year table is the paper's "Wide Table of MONTHs".
    let wide_by_month = wide_by_year.t();
    println!(
        "transposed: wide table of months\n{}",
        wide_by_month.display(8)?
    );

    // Unpivot: back from the wide table to the narrow table via FROMLABELS + apply.
    let restored = wide_by_year
        .reset_index("Year")
        .apply_rows("unpivot", vec!["Year", "Jan", "Feb", "Mar"], |row| {
            row.cells.to_vec()
        })
        .collect()?;
    println!(
        "unpivot scaffolding (year column restored)\n{}",
        restored.display_with(4)
    );

    Ok(())
}
