//! Notebook-corpus usage statistics: the paper's §4.6 / Figure 7 analysis.
//!
//! Generates the synthetic notebook corpus, extracts pandas method invocations, loads
//! the per-function statistics *into a dataframe*, and then uses the library's own API
//! to answer the paper's three questions: which functions dominate overall, which
//! appear in the most notebooks, and how usage splits between inspection, aggregation
//! and relational operators.
//!
//! Run with: `cargo run --example usage_stats`

use scalable_dataframes::pandas::{PandasFrame, Session};
use scalable_dataframes::prelude::*;
use scalable_dataframes::workloads::notebooks::{
    analyze_corpus, generate_corpus, usage_dataframe, CorpusConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CorpusConfig {
        notebooks: 2_000,
        ..CorpusConfig::default()
    };
    let corpus = generate_corpus(&config);
    let stats = analyze_corpus(&corpus);
    println!(
        "analysed {} notebooks; {} ({:.0}%) use pandas (the paper found ~40%)",
        stats.total_notebooks,
        stats.pandas_notebooks,
        100.0 * stats.pandas_notebooks as f64 / stats.total_notebooks as f64
    );

    let session = Session::modin();
    let usage = PandasFrame::from_dataframe(&session, usage_dataframe(&stats)?);

    println!("\nFigure 7 — most frequently invoked functions:");
    println!("{}", usage.head(10)?.display_with(10));

    println!("functions appearing in the most notebooks:");
    let by_files = usage.sort_values(&["notebooks"], false);
    println!("{}", by_files.head(10)?.display_with(10));

    // Classify functions into the paper's buckets and aggregate with the library.
    let classified = usage.map_column("function", "bucket", |cell_value| {
        let name = cell_value.as_str().unwrap_or("");
        let bucket = match name {
            "head" | "shape" | "plot" | "describe" | "values" | "index" | "columns" => "inspection",
            "mean" | "sum" | "max" | "kurtosis" => "aggregation",
            "groupby" | "merge" | "pivot" | "append" | "drop" => "relational/reshaping",
            "loc" | "iloc" => "point access",
            "read_csv" => "ingest",
            _ => "other",
        };
        cell(bucket)
    })?;
    let by_bucket = classified
        .rename(&[("function", "bucket")])
        .groupby_agg(
            &["bucket"],
            vec![
                df_core::algebra::Aggregation::of("occurrences", df_core::algebra::AggFunc::Sum)
                    .with_alias("total_calls"),
            ],
            false,
        )
        .sort_values(&["total_calls"], false);
    println!(
        "usage by category:\n{}",
        by_bucket.collect()?.display_with(8)
    );

    Ok(())
}
