//! Quickstart: the end-to-end analyst workflow of the paper's Figure 1.
//!
//! The script walks through the same steps the paper narrates — ingest a
//! product-comparison table oriented for human consumption, clean it (point update,
//! transpose, column transformation), load a second table, one-hot encode, join, and
//! finish with a covariance matrix — using the pandas-style API on the scalable
//! engine. Every step prints the tabular view, mirroring how an analyst validates each
//! statement in a notebook.
//!
//! Run with: `cargo run --example quickstart`

use scalable_dataframes::pandas::{PandasFrame, Session};
use scalable_dataframes::prelude::*;
use scalable_dataframes::types::cell::Cell;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::modin();

    // R1. "Read HTML": the iPhone comparison chart as scraped — features are rows,
    // products are columns, and every value is a raw string.
    let products = PandasFrame::from_rows(
        &session,
        vec![
            "iPhone 11",
            "iPhone 11 Pro",
            "iPhone 11 Pro Max",
            "iPhone SE",
        ],
        vec![
            vec![
                cell("6.1-inch"),
                cell("5.8-inch"),
                cell("6.5-inch"),
                cell("4.7-inch"),
            ],
            vec![cell("12MP"), cell("12MP"), cell("12MP"), cell("12MP")],
            vec![cell("12MP"), cell("120MP"), cell("12MP"), cell("7MP")],
            vec![cell("Yes"), cell("Yes"), cell("Yes"), cell("No")],
            vec![cell("64GB"), cell("64GB"), cell("64GB"), cell("64GB")],
        ],
    )?
    .collect()?
    .with_row_labels(vec![
        "Display",
        "Camera",
        "Front Camera",
        "Wireless Charging",
        "Base Storage",
    ])?;
    let products = PandasFrame::from_dataframe(&session, products);
    println!("R1. raw comparison chart\n{}", products.display(6)?);

    // C1. Ordered point update: the Front Camera of the iPhone 11 Pro is listed as
    // 120MP; fix it to 12MP via positional (iloc-style) access.
    let products = products.iloc_set(2, 1, "12MP")?;
    println!("C1. after point update\n{}", products.display(6)?);

    // C2. Matrix-like transpose: orient the table relationally (products as rows).
    let products = products.t();
    println!("C2. after transpose\n{}", products.display(6)?);

    // C3. Column transformation: Wireless Charging Yes/No -> 1/0.
    let products = products.map_column("Wireless Charging", "yes_no_to_binary", |c| {
        match c.as_str() {
            Some("Yes") => cell(1),
            Some("No") => cell(0),
            _ => Cell::Null,
        }
    })?;
    println!("C3. after column transformation\n{}", products.display(6)?);

    // C4. Read Excel: price and rating information for the same products.
    let prices = PandasFrame::from_rows(
        &session,
        vec!["product", "price", "rating"],
        vec![
            vec![cell("iPhone 11"), cell(699.0), cell(4.6)],
            vec![cell("iPhone 11 Pro"), cell(999.0), cell(4.8)],
            vec![cell("iPhone 11 Pro Max"), cell(1099.0), cell(4.8)],
            vec![cell("iPhone SE"), cell(399.0), cell(4.5)],
        ],
    )?
    .set_index("product");
    println!("C4. price/rating table\n{}", prices.display(6)?);

    // A1. One-to-many column mapping: one-hot encode the non-numeric feature columns.
    let one_hot = products.get_dummies(&["Display", "Front Camera", "Base Storage", "Camera"])?;
    println!("A1. one-hot encoded features\n{}", one_hot.display(6)?);

    // A2. Join: attach price and rating by row label (merge on the index).
    let iphone_df = prices.merge_index(&one_hot, df_core::algebra::JoinType::Inner);
    println!("A2. joined frame\n{}", iphone_df.display(6)?);

    // A3. Matrix covariance over the (now fully numeric) frame.
    let cov = iphone_df.cov()?;
    println!("A3. covariance matrix\n{}", cov.display_with(8));

    // The same workflow runs unchanged on the pandas-like baseline engine: the API is
    // engine-agnostic, which is the paper's drop-in-replacement requirement.
    let baseline = Session::baseline();
    let check = PandasFrame::from_rows(
        &baseline,
        vec!["a", "b"],
        vec![vec![cell(1), cell(2.0)], vec![cell(3), cell(4.0)]],
    )?;
    println!(
        "baseline engine executes the same API: shape = {:?}",
        check.isna().shape()?
    );

    // Summarise which engine did the work.
    println!(
        "engine: {:?}, statements executed so far: {}",
        session.engine_kind(),
        session.stats().statements
    );
    Ok(())
}
