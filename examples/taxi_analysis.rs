//! Taxi-trip analysis: the workload behind the paper's Figure 2 case study, expressed
//! through the pandas-style API.
//!
//! Generates the synthetic NYC-taxi-like trace (untyped, as if read from CSV), then
//! runs the four paper queries plus a few realistic follow-ups (value counts, revenue
//! by passenger count, rolling fares) on both the scalable engine and the pandas-like
//! baseline, printing timings so the speedup shape of Figure 2 is visible from a
//! plain `cargo run --example taxi_analysis`.

use std::time::Instant;

use scalable_dataframes::core::algebra::{AggFunc, Aggregation};
use scalable_dataframes::pandas::{PandasFrame, Session};
use scalable_dataframes::workloads::taxi::{generate_raw, TaxiConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows: usize = std::env::var("TAXI_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let taxi = generate_raw(&TaxiConfig {
        base_rows: rows,
        replication: 1,
        ..TaxiConfig::default()
    })?;
    println!(
        "generated {} taxi trips x {} columns (untyped CSV-style cells)",
        rows,
        taxi.n_cols()
    );

    for (name, session) in [
        ("modin-engine", Session::modin()),
        ("pandas-baseline", Session::baseline()),
    ] {
        println!("\n=== {name} ===");
        let trips = PandasFrame::from_dataframe(&session, taxi.clone());

        let start = Instant::now();
        let mask = trips.isna();
        let (null_rows, _) = mask.shape()?;
        println!(
            "map (null mask) over {null_rows} rows: {:?}",
            start.elapsed()
        );

        let start = Instant::now();
        let by_passengers = trips.groupby_count(&["passenger_count"]).collect()?;
        println!(
            "groupby(n) -> {} groups: {:?}",
            by_passengers.n_rows(),
            start.elapsed()
        );

        let start = Instant::now();
        let non_null = trips.count_non_null("passenger_count").collect()?;
        println!(
            "groupby(1) -> {} non-null rows: {:?}",
            non_null.cell(0, 0)?,
            start.elapsed()
        );

        let start = Instant::now();
        let transposed = trips.t().isna();
        let shape = transposed.shape()?;
        println!("transpose + map -> {shape:?}: {:?}", start.elapsed());

        // Follow-up analysis an analyst would actually run.
        let start = Instant::now();
        let revenue = trips
            .infer_types()
            .groupby_agg(
                &["passenger_count"],
                vec![
                    Aggregation::of("total_amount", AggFunc::Sum).with_alias("revenue"),
                    Aggregation::of("total_amount", AggFunc::Mean).with_alias("avg_fare"),
                    Aggregation::count_rows(),
                ],
                false,
            )
            .sort_values(&["revenue"], false)
            .collect()?;
        println!(
            "revenue by passenger count ({} rows): {:?}\n{}",
            revenue.n_rows(),
            start.elapsed(),
            revenue.display_with(4)
        );

        let payment_mix = trips.value_counts("payment_type").head(4)?;
        println!("payment mix (top 4)\n{}", payment_mix.display_with(4));

        println!(
            "session stats: statements={}, executions={}, cache_hits={}",
            session.stats().statements,
            session.stats().executions,
            session.stats().cache_hits
        );
    }
    Ok(())
}
