//! Offline shim for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this workspace vendors the slice of
//! the Criterion API its benches use: `Criterion`, `BenchmarkGroup` with
//! `sample_size`/`warm_up_time`/`measurement_time`/`bench_function`/`finish`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Semantics match Criterion where it matters for CI:
//! * `cargo bench` measures each benchmark (warm-up, then `sample_size` samples) and
//!   prints a mean/min/max per-iteration time.
//! * `cargo bench -- --test` runs every benchmark exactly once and reports `ok`,
//!   mirroring Criterion's test mode so benches are compile- and run-checked cheaply.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
const DEFAULT_WARM_UP: Duration = Duration::from_millis(300);
const DEFAULT_MEASUREMENT: Duration = Duration::from_millis(1_500);

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            sample_size: DEFAULT_SAMPLE_SIZE,
            warm_up_time: DEFAULT_WARM_UP,
            measurement_time: DEFAULT_MEASUREMENT,
        }
    }
}

impl Criterion {
    /// Reads the harness-relevant CLI flags (`--test`) from `std::env::args`.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|arg| arg == "--test");
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up_time = dur;
        self
    }

    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            warm_up_time: None,
            measurement_time: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = (
            self.test_mode,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
        );
        run_benchmark(id, settings, f);
        self
    }
}

/// A named group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = Some(dur);
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = Some(dur);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = (
            self.criterion.test_mode,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
        );
        run_benchmark(&format!("{}/{id}", self.name), settings, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, settings: (bool, usize, Duration, Duration), mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let (test_mode, sample_size, warm_up_time, measurement_time) = settings;
    if test_mode {
        let mut bencher = Bencher {
            mode: Mode::TestOnce,
            samples: Vec::new(),
        };
        f(&mut bencher);
        println!("test {id} ... ok");
        return;
    }

    // Warm-up pass: run the routine until the warm-up budget elapses.
    let mut bencher = Bencher {
        mode: Mode::TimeBoxed(warm_up_time),
        samples: Vec::new(),
    };
    f(&mut bencher);

    // Measurement pass: collect `sample_size` timed samples within the budget.
    let mut bencher = Bencher {
        mode: Mode::Sample {
            count: sample_size,
            budget: measurement_time,
        },
        samples: Vec::new(),
    };
    f(&mut bencher);
    let samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<40} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[derive(Debug)]
enum Mode {
    TestOnce,
    TimeBoxed(Duration),
    Sample { count: usize, budget: Duration },
}

/// Handed to the benchmark closure; `iter` drives the routine under measurement.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::TestOnce => {
                black_box(routine());
            }
            Mode::TimeBoxed(budget) => {
                let start = Instant::now();
                while start.elapsed() < budget {
                    black_box(routine());
                }
            }
            Mode::Sample { count, budget } => {
                // Calibrate iterations-per-sample so one sample is cheap but non-zero.
                let calibration = Instant::now();
                black_box(routine());
                let once = calibration.elapsed().max(Duration::from_nanos(1));
                let per_sample = (budget.as_nanos() / count.max(1) as u128).max(1);
                let iters = ((per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000)) as usize;

                let start = Instant::now();
                self.samples.clear();
                for _ in 0..count {
                    let sample_start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    self.samples
                        .push(sample_start.elapsed().as_nanos() as f64 / iters as f64);
                    if start.elapsed() > budget.saturating_mul(2) {
                        break; // Hard cap: never run wildly past the budget.
                    }
                }
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut calls = 0usize;
        let mut criterion = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut group = criterion.benchmark_group("unit");
        group.bench_function("count_calls", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measurement_mode_collects_samples() {
        let mut criterion = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        criterion.bench_function("spin", |b| b.iter(|| black_box(2u64 + 2)));
    }
}
