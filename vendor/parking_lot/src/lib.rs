//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace vendors the small
//! slice of the `parking_lot` API it actually uses: `Mutex`/`RwLock` whose `lock()`
//! methods return guards directly instead of `Result`s. Poisoning is deliberately
//! ignored (a poisoned lock yields its inner guard), matching `parking_lot`'s
//! non-poisoning semantics closely enough for this workspace.

use std::fmt;
use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning `lock()` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning `read()`/`write()` signatures.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_exclusive_access() {
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8_000);
    }

    #[test]
    fn rwlock_read_and_write() {
        let lock = RwLock::new(vec![1, 2, 3]);
        assert_eq!(lock.read().len(), 3);
        lock.write().push(4);
        assert_eq!(*lock.read(), vec![1, 2, 3, 4]);
    }
}
