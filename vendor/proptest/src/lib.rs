//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors the slice of
//! proptest it uses: the `proptest! { #![proptest_config(...)] #[test] fn f(x in
//! strategy, ...) { ... } }` macro form with numeric-range strategies, plus
//! `prop_assert!`/`prop_assert_eq!`. Each generated test draws `cases` deterministic
//! samples (seeded from the test's module path and name, overridable via
//! `PROPTEST_SEED`) and reports the failing inputs on the first violated assertion.
//! Shrinking is intentionally not implemented — failures print the exact inputs, which
//! the deterministic seeding makes reproducible.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type; numeric ranges implement it directly.
    pub trait Strategy {
        type Value: Debug;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($ty:ty),+ $(,)?) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + offset as i128) as $ty
                }
            }
        )+};
    }

    impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_float_strategy {
        ($($ty:ty),+ $(,)?) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + unit as $ty * (self.end - self.start)
                }
            }
        )+};
    }

    impl_float_strategy!(f32, f64);
}

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration; only `cases` is honoured by this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A rejected test case, produced by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic SplitMix64 generator driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test's identity so every test gets an independent,
        /// reproducible stream. `PROPTEST_SEED` perturbs all streams at once.
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the test name.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = seed.parse::<u64>() {
                    hash ^= seed.rotate_left(17);
                }
            }
            Self { state: hash }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = $config:expr;
        $(
            #[test]
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                )+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let ::std::result::Result::Err(error) = outcome {
                    let inputs: ::std::vec::Vec<::std::string::String> = ::std::vec![
                        $(::std::format!("{} = {:?}", stringify!($arg), &$arg)),+
                    ];
                    ::std::panic!(
                        "proptest case {} of {} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        error,
                        inputs.join(", "),
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} — {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} != {}\n    both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn samples_stay_in_range(x in 0usize..10, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y), "y out of range: {y}");
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert_eq!(x + 1, x + 1);
            prop_assert_ne!(x as i64 - 100, y);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            let mut rng = crate::test_runner::TestRng::deterministic("unit::failing");
            let value = crate::strategy::Strategy::sample(&(0usize..4), &mut rng);
            let outcome = (|| -> Result<(), TestCaseError> {
                prop_assert!(value > 100, "value was {value}");
                Ok(())
            })();
            outcome.unwrap();
        });
        assert!(result.is_err());
    }
}
