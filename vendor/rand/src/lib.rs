//! Offline shim for the `rand` crate (0.8-style API).
//!
//! The build environment has no network access, so this workspace vendors the slice of
//! `rand` it uses: `SeedableRng::seed_from_u64`, `Rng::gen_range` over half-open and
//! inclusive numeric ranges, and `Rng::gen_bool`. The generator behind
//! [`rngs::StdRng`] is SplitMix64 — statistically fine for synthetic workload
//! generation and fully deterministic for a given seed, which is all the workspace
//! requires (it makes no cryptographic claims).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    fn gen_bool(&mut self, probability: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&probability),
            "gen_bool probability must lie in [0, 1], got {probability}"
        );
        unit_f64(self.next_u64()) < probability
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A type whose uniform distribution over an interval can be sampled.
///
/// The blanket [`SampleRange`] impls below are deliberately generic over `T:
/// SampleUniform` (mirroring real rand) so that untyped integer literals in range
/// expressions unify with the surrounding context instead of falling back to `i32`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from the half-open interval `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from the closed interval `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// A range that knows how to draw a uniform sample of `T` from itself.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty(&self) -> bool;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }

    fn is_empty(&self) -> bool {
        // NaN endpoints compare as incomparable and therefore count as empty.
        self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }

    fn is_empty(&self) -> bool {
        !matches!(
            self.start().partial_cmp(self.end()),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sample_uniform {
    ($($ty:ty),+ $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $ty
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $ty
            }
        }
    )+};
}

impl_int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_sample_uniform {
    ($($ty:ty),+ $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = unit_f64(rng.next_u64()) as $ty;
                low + unit * (high - low)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // Measure-zero distinction from the half-open case; good enough here.
                Self::sample_half_open(rng, low, high)
            }
        }
    )+};
}

impl_float_sample_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&v));
            let w = rng.gen_range(1usize..=6);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed rate {rate}");
        assert!((0..1_000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1_000).all(|_| rng.gen_bool(1.0)));
    }
}
