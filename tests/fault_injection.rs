//! Chaos acceptance suite for the fault-tolerance layer.
//!
//! The contract under test: with failpoints armed at every spill / ingest /
//! shuffle site, across thread counts and memory budgets, a statement either
//! **retries or recomputes to a bit-exact result** (transient I/O, corruption,
//! missing blocks — anything the retry policy or the lineage-based recovery can
//! absorb) or surfaces a **typed `DfError`** — never an escaped panic, never a
//! poisoned lock — and the session stays reusable once the faults clear.
//!
//! The failpoint registry is process-global, so every armed scenario in this
//! file serialises on one mutex and disarms on drop (even when the test
//! panics). Unit tests in the library crates never arm failpoints.

use std::sync::{Arc, Mutex, MutexGuard};

use proptest::prelude::*;

use df_core::dataframe::DataFrame;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::session::EvalMode;
use df_pandas::{PandasFrame, Session};
use df_storage::csv::{read_csv_str, CsvOptions};
use df_types::cell::cell;
use df_types::error::DfError;
use df_types::fail;

/// Serialises armed-failpoint scenarios and guarantees disarm-on-drop, so one
/// failing test cannot leak injected faults into the next.
struct Armed {
    _guard: MutexGuard<'static, ()>,
}

static FAIL_LOCK: Mutex<()> = Mutex::new(());

impl Armed {
    fn new(spec: &str) -> Armed {
        let guard = FAIL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        fail::configure_seeded(spec, 7).expect("valid failpoint spec");
        Armed { _guard: guard }
    }

    fn rearm(&self, spec: &str) {
        fail::configure_seeded(spec, 7).expect("valid failpoint spec");
    }

    fn disarm(&self) {
        fail::clear();
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fail::clear();
    }
}

fn fleet_frame(rows: usize) -> DataFrame {
    DataFrame::from_columns(
        vec!["a", "b"],
        vec![
            (0..rows).map(|i| cell(i as i64)).collect(),
            (0..rows).map(|i| cell(((i * 7) % 13) as i64)).collect(),
        ],
    )
    .unwrap()
}

fn lazy_session(threads: usize, budget: Option<usize>) -> Arc<Session> {
    let mut config = ModinConfig::default()
        .with_threads(threads)
        .with_partition_size(16, 4);
    if let Some(bytes) = budget {
        config = config.with_memory_budget(bytes);
    }
    Session::modin_with(config, EvalMode::Lazy)
}

#[test]
fn spill_read_corruption_recovers_to_bit_exact_results() {
    let armed = Armed::new("");
    let df = fleet_frame(240);
    for threads in [1usize, 4] {
        for budget in [None, Some(df.approx_size_bytes() / 4)] {
            let budgeted = budget.is_some();
            let s = lazy_session(threads, budget);
            let frame = PandasFrame::try_from_dataframe(&s, df.clone())
                .unwrap()
                .isna();
            armed.disarm();
            let baseline = frame.collect().unwrap();
            // Corrupt the first load-back: the checksum catches it, the poisoned
            // entry is quarantined, and the statement recomputes from its plan.
            armed.rearm("spill.read=corrupt@1");
            let out = frame.collect().unwrap();
            assert!(
                out.same_data(&baseline),
                "threads={threads} budgeted={budgeted}: recovery diverged"
            );
            if budgeted {
                assert!(
                    s.stats().recoveries >= 1,
                    "no recovery recorded: {:?}",
                    s.stats()
                );
            }
            armed.disarm();
            assert!(frame.collect().unwrap().same_data(&baseline));
        }
    }
}

#[test]
fn missing_spill_blocks_are_recomputed_from_lineage() {
    let armed = Armed::new("");
    let df = fleet_frame(240);
    let s = lazy_session(2, Some(df.approx_size_bytes() / 4));
    let base = PandasFrame::try_from_dataframe(&s, df).unwrap();
    let frame = base.isna();
    let baseline = frame.collect().unwrap();
    // The `missing` action really deletes a spill file on disk, so the session's
    // own retry (re-reading the same handle) fails too; only the pandas layer's
    // lineage walk — evict the ancestors, replay the logical plan — can recover.
    armed.rearm("spill.read=missing@1");
    let out = frame.collect().unwrap();
    assert!(out.same_data(&baseline), "lineage recompute diverged");
    assert!(
        s.stats().recoveries >= 1,
        "no recovery recorded: {:?}",
        s.stats()
    );
}

#[test]
fn transient_spill_write_failures_are_retried_invisibly() {
    let _armed = Armed::new("spill.write=io_transient@1");
    let df = fleet_frame(240);
    let s = lazy_session(2, Some(df.approx_size_bytes() / 4));
    let frame = PandasFrame::try_from_dataframe(&s, df).unwrap().isna();
    let out = frame.collect().unwrap();
    assert_eq!(out.shape(), (240, 2));
    let stats = s.spill_stats().expect("budgeted engine");
    assert!(
        stats.retries >= 1,
        "transient write fault was not retried: {stats:?}"
    );
}

#[test]
fn ingest_chunk_faults_retry_transient_and_surface_permanent() {
    let armed = Armed::new("");
    let mut csv = String::from("a,b\n");
    for i in 0..500 {
        csv.push_str(&format!("{i},{}\n", i * 3));
    }
    let options = CsvOptions::default();
    let serial = read_csv_str(&csv, &options).unwrap();
    let path = std::env::temp_dir().join(format!("fault-ingest-{}.csv", std::process::id()));
    std::fs::write(&path, &csv).unwrap();

    for threads in [1usize, 4] {
        let engine = ModinEngine::with_config(
            ModinConfig::default()
                .with_threads(threads)
                .with_partition_size(64, 8),
        );
        // Transient chunk-read fault: absorbed by the ingest retry policy.
        armed.rearm("ingest.read=io_transient@1");
        let handle = engine.read_csv_handle(&path, &options).unwrap();
        assert!(
            handle.to_dataframe().unwrap().same_data(&serial),
            "threads={threads}: retried ingest diverged from serial"
        );
        // Permanent fault: a typed non-transient error, not a panic.
        armed.rearm("ingest.read=io_full@1");
        let err = engine.read_csv_handle(&path, &options).unwrap_err();
        assert!(
            matches!(
                err,
                DfError::SpillIo {
                    transient: false,
                    ..
                }
            ),
            "threads={threads}: expected permanent SpillIo, got {err}"
        );
        // The engine survives the failed ingest.
        armed.disarm();
        let clean = engine.read_csv_handle(&path, &options).unwrap();
        assert!(clean.to_dataframe().unwrap().same_data(&serial));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn shuffle_faults_and_panics_surface_typed_and_leave_the_session_reusable() {
    let armed = Armed::new("");
    for threads in [1usize, 4] {
        let s = lazy_session(threads, None);
        let df = fleet_frame(200);
        let grouped = PandasFrame::try_from_dataframe(&s, df)
            .unwrap()
            .drop_duplicates();
        armed.disarm();
        let baseline = grouped.collect().unwrap();
        s.query().clear_cache();

        // An exchange-task fault is a typed error...
        armed.rearm("shuffle.exchange=io_full@1");
        let err = grouped.collect().unwrap_err();
        assert!(
            matches!(err, DfError::SpillIo { .. }),
            "threads={threads}: expected typed SpillIo, got {err}"
        );

        // ...and an exchange-task *panic* is caught at the worker boundary,
        // siblings are cancelled, and no lock is poisoned.
        armed.rearm("shuffle.exchange=panic@1");
        let err = grouped.collect().unwrap_err();
        assert!(
            matches!(err, DfError::WorkerPanic(_)),
            "threads={threads}: expected WorkerPanic, got {err}"
        );

        // Faults cleared: the very same session computes the correct result.
        armed.disarm();
        let out = grouped.collect().unwrap();
        assert!(
            out.same_data(&baseline),
            "threads={threads}: session unusable after faults"
        );
    }
}

/// A process-backend engine pointed at the worker binary Cargo built for this
/// test run.
fn proc_engine(threads: usize) -> ModinEngine {
    std::env::set_var("DF_WORKER_BIN", env!("CARGO_BIN_EXE_df-band-worker"));
    ModinEngine::try_with_config(
        ModinConfig::default()
            .with_threads(threads)
            .with_partition_size(16, 4)
            .with_backend(df_types::backend::BackendKind::Procs),
    )
    .expect("process backend engine")
}

#[test]
fn proc_worker_death_mid_exchange_recovers_or_surfaces_typed() {
    use df_core::algebra::AlgebraExpr;
    use df_core::engine::Engine;

    let armed = Armed::new("");
    let expr = AlgebraExpr::literal(fleet_frame(200)).drop_duplicates();
    let engine = proc_engine(1);
    armed.disarm();
    let baseline = engine.execute_collect(&expr).unwrap();

    // Kill the checked-out worker once, right before a band exchange (`@1` fires
    // on exactly the first evaluation). The dead pipe surfaces as a lost worker,
    // the backend discards it, spawns a replacement and replays the task — the
    // result is bit-exact and the restart is accounted.
    armed.rearm("backend.exchange=missing@1");
    let recovered = engine.execute_collect(&expr).unwrap();
    assert!(
        recovered.same_data(&baseline),
        "recovery after a worker death diverged"
    );
    let health = engine.backend_health();
    assert!(
        health.restarts >= 1,
        "worker death did not record a restart: {health:?}"
    );

    // A worker that dies on *every* attempt (probability form: fires always) is a
    // typed `WorkerLost` — no hang, no panic — once the retry allowance is spent.
    armed.rearm("backend.exchange=missing@1.0");
    let err = engine.execute_collect(&expr).unwrap_err();
    assert!(
        matches!(err, DfError::WorkerLost { .. }),
        "expected WorkerLost, got {err}"
    );

    // Bit-rot on the wire: the response frame's payload is mangled in flight, the
    // spill-v4 checksum catches it, and the retry replays the exchange cleanly.
    armed.rearm("backend.exchange=corrupt@1");
    let recovered = engine.execute_collect(&expr).unwrap();
    assert!(
        recovered.same_data(&baseline),
        "recovery after wire corruption diverged"
    );

    // Faults cleared: the very same engine (and its respawned pool) still answers.
    armed.disarm();
    let healed = engine.execute_collect(&expr).unwrap();
    assert!(
        healed.same_data(&baseline),
        "engine unusable after backend faults cleared"
    );
}

#[test]
fn spill_dir_is_removed_on_drop_even_after_worker_panics() {
    let armed = Armed::new("");
    let df = fleet_frame(240);
    let engine = ModinEngine::with_config(
        ModinConfig::default()
            .with_threads(4)
            .with_memory_budget(df.approx_size_bytes() / 4)
            .with_partition_size(16, 4),
    );
    let dir = engine
        .store()
        .expect("budgeted engine")
        .directory()
        .to_path_buf();
    let s = Session::with_engine(Arc::new(engine), EvalMode::Lazy);
    let frame = PandasFrame::try_from_dataframe(&s, df).unwrap().isna();
    frame.collect().unwrap();
    assert!(dir.exists(), "budgeted engine created no spill dir");
    armed.rearm("shuffle.exchange=panic@1");
    let grouped = frame.drop_duplicates();
    let _ = grouped.collect(); // panic isolated; error or recovery both fine here
    armed.disarm();
    drop(frame);
    drop(grouped);
    drop(s);
    assert!(
        !dir.exists(),
        "spill dir survived engine drop after a worker panic"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Randomised corruption rates: whatever fires, the outcome is either a
    // bit-exact result (recovery absorbed it) or a typed error — and once the
    // faults clear, the same session produces the exact baseline.
    #[test]
    fn random_corruption_rates_never_escape_the_taxonomy(
        permille in 0u64..300,
        threads in 1usize..3,
    ) {
        let armed = Armed::new("");
        let df = fleet_frame(160);
        let s = lazy_session(if threads == 1 { 1 } else { 4 }, Some(df.approx_size_bytes() / 4));
        let frame = PandasFrame::try_from_dataframe(&s, df).unwrap().isna();
        let baseline = frame.collect().unwrap();
        armed.rearm(&format!("spill.read=corrupt@0.{permille:03}"));
        match frame.collect() {
            Ok(out) => prop_assert!(out.same_data(&baseline), "recovered result diverged"),
            Err(err) => prop_assert!(
                err.is_spill_corruption(),
                "expected SpillCorruption, got {err}"
            ),
        }
        armed.disarm();
        let healed = frame.collect();
        match healed {
            Ok(out) => prop_assert!(out.same_data(&baseline)),
            Err(err) => return Err(TestCaseError::fail(format!("session unusable: {err}"))),
        }
    }
}
