//! Out-of-core equivalence suite (paper §3.3): the full shuffle operator suite and
//! GROUPBY must produce cell-for-cell identical results when the engine's
//! `memory_budget_bytes` is capped at ~1/4 of the working set versus unlimited — with
//! the spill store demonstrably engaging under the tight budget — and the store's
//! resident high-water mark must never exceed the budget by more than one band
//! (`peak <= budget + max_insert`). A concurrent-access test hammers one `SpillStore`
//! from multiple executor threads.

use std::sync::Arc;

use df_core::algebra::{AggFunc, Aggregation, AlgebraExpr, JoinOn, JoinType, SortSpec};
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::ParallelExecutor;
use df_storage::spill::SpillStore;
use df_types::cell::{cell, Cell};

/// A mixed-domain frame with nulls, duplicate keys and string payload.
fn working_frame(rows: usize) -> DataFrame {
    let k: Vec<Cell> = (0..rows)
        .map(|i| {
            if i % 13 == 0 {
                Cell::Null
            } else {
                cell((i % 6) as i64)
            }
        })
        .collect();
    let v: Vec<Cell> = (0..rows).map(|i| cell((i as f64) * 0.25)).collect();
    let s: Vec<Cell> = (0..rows)
        .map(|i| cell(format!("payload-{}-{}", i % 4, i)))
        .collect();
    DataFrame::from_columns(vec!["k", "v", "s"], vec![k, v, s]).unwrap()
}

fn join_side(rows: usize) -> DataFrame {
    let k: Vec<Cell> = (0..rows).map(|i| cell((i % 9) as i64)).collect();
    let w: Vec<Cell> = (0..rows).map(|i| cell(i as i64 * 3)).collect();
    DataFrame::from_columns(vec!["k", "w"], vec![k, w]).unwrap()
}

/// The operator suite under test: every shuffle-dispatched operator plus GROUPBY.
fn suite(base: &DataFrame, other: &DataFrame) -> Vec<(&'static str, AlgebraExpr)> {
    let lit = || AlgebraExpr::literal(base.clone());
    let rhs = || AlgebraExpr::literal(other.clone());
    vec![
        (
            "SORT",
            lit().sort(SortSpec::ascending(vec![cell("k"), cell("v")])),
        ),
        (
            "DROP_DUPLICATES",
            lit().union(lit().limit(40, false)).drop_duplicates(),
        ),
        ("DIFFERENCE", lit().difference(lit().limit(70, false))),
        (
            "JOIN",
            lit().join(rhs(), JoinOn::Columns(vec![cell("k")]), JoinType::Outer),
        ),
        (
            "GROUPBY",
            lit().group_by(
                vec![cell("k")],
                vec![
                    Aggregation::count_rows(),
                    Aggregation::of("v", AggFunc::Sum).with_alias("v_sum"),
                    Aggregation::of("v", AggFunc::Mean).with_alias("v_mean"),
                    Aggregation::of("s", AggFunc::Min).with_alias("s_min"),
                ],
                false,
            ),
        ),
    ]
}

fn config(threads: usize) -> ModinConfig {
    ModinConfig::default()
        .with_threads(threads)
        .with_partition_size(32, 8)
        // Force the full shuffle machinery for the binary operators.
        .with_broadcast_threshold(0)
}

#[test]
fn capped_budget_matches_unlimited_and_spills() {
    let base = working_frame(320);
    let other = join_side(96);
    // The working set of these queries is dominated by the base literal; a quarter of
    // it forces the store to spill aggressively.
    let budget = base.approx_size_bytes() / 4;
    for threads in [1, 4] {
        for (name, expr) in suite(&base, &other) {
            let unlimited = ModinEngine::with_config(config(threads));
            let expected = unlimited.execute_collect(&expr).unwrap();

            let bounded = ModinEngine::with_config(config(threads).with_memory_budget(budget));
            let got = bounded.execute_collect(&expr).unwrap();
            assert!(
                got.same_data(&expected),
                "{name} (threads={threads}) diverged under the capped budget"
            );

            let stats = bounded.spill_stats();
            assert!(
                stats.spill_outs > 0,
                "{name} (threads={threads}) never spilled: {stats:?}"
            );
            assert!(
                stats.load_backs > 0,
                "{name} (threads={threads}) never loaded back: {stats:?}"
            );
            // The acceptance bound: resident bytes may exceed the budget only by the
            // band(s) currently being inserted — one per worker thread, exactly one
            // in the sequential case — never by unbounded accumulation.
            assert!(
                stats.peak_memory_bytes <= budget + threads * stats.max_insert_bytes,
                "{name} (threads={threads}) peak {} exceeds budget {budget} + {threads} bands of {}",
                stats.peak_memory_bytes,
                stats.max_insert_bytes
            );
            // Unlimited engines report zeroed spill stats.
            assert_eq!(unlimited.spill_stats().spill_outs, 0);
        }
    }
}

#[test]
fn engine_frees_spilled_partitions_when_results_are_consumed() {
    let base = working_frame(200);
    let budget = base.approx_size_bytes() / 4;
    let engine = ModinEngine::with_config(config(2).with_memory_budget(budget));
    let expr = AlgebraExpr::literal(base).sort(SortSpec::ascending(vec![cell("v")]));
    let result = engine.execute_collect(&expr).unwrap();
    assert_eq!(result.n_rows(), 200);
    // `execute` consumes the result grid, so every store entry created along the way
    // has been dropped again: the session store holds nothing between statements.
    let stats = engine.spill_stats();
    assert_eq!(
        stats.in_memory + stats.spilled,
        0,
        "store leaked partitions: {stats:?}"
    );
}

#[test]
fn spill_store_survives_concurrent_executor_access() {
    // Many executor threads hammer one tight store with interleaved put/get/take
    // cycles; every frame must round-trip intact and the store must end empty.
    let store = Arc::new(SpillStore::new(512).unwrap());
    let executor = ParallelExecutor::new(8);
    let items: Vec<usize> = (0..64).collect();
    let results = executor
        .par_map(items, |_, tag| {
            let frame = DataFrame::from_columns(
                vec!["id", "name"],
                vec![
                    (0..20).map(|i| cell((tag * 1000 + i) as i64)).collect(),
                    (0..20).map(|i| cell(format!("row-{tag}-{i}"))).collect(),
                ],
            )
            .unwrap();
            let id = store.put(frame.clone()).unwrap();
            // Read it back twice (forcing load-backs under contention), then consume.
            let first = store.get(id).unwrap();
            assert!(first.same_data(&frame), "concurrent get corrupted a frame");
            let second = store.take(id).unwrap();
            assert!(
                second.same_data(&frame),
                "concurrent take corrupted a frame"
            );
            assert!(store.get(id).is_err(), "taken id still resolves");
            Ok(tag)
        })
        .unwrap();
    assert_eq!(results.len(), 64);
    let stats = store.stats();
    assert_eq!(stats.in_memory + stats.spilled, 0, "store not drained");
    assert!(
        stats.spill_outs > 0,
        "tight concurrent store never spilled: {stats:?}"
    );
    // Eight writers → up to eight in-flight insertions above the budget.
    assert!(stats.peak_memory_bytes <= 512 + 8 * stats.max_insert_bytes);
}
