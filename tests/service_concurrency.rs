//! Acceptance suite for the multi-tenant query service (`df-service`).
//!
//! The contract under test: N client threads driving tenant sessions against
//! **one** shared engine and spill budget get exactly the answers a serial
//! single-tenant run produces — cell for cell — while the service guarantees:
//!
//! * **single-flight deduplication** — identical fingerprints from different
//!   tenants execute once, everyone else is served the published handle;
//! * **admission control** — never more than `max_concurrent` statements on the
//!   engine, bounded queue, typed refusals;
//! * **quota containment** — one tenant's quota violations (typed
//!   `ResourceExhausted`) never disturb a neighbour;
//! * **clean shutdown** — draining refuses new work typed while in-flight
//!   statements finish;
//! * **fault isolation** (chaos arm, PR-7 failpoints) — a spill fault absorbed
//!   or surfaced in one tenant's statement never poisons another tenant.
//!
//! The failpoint registry is process-global, so every test in this file takes
//! the same `FAIL_LOCK` (even non-chaos ones: an armed fault must never leak
//! into a concurrently running clean test) and disarms on drop.

use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Duration;

use df_core::algebra::{AggFunc, Aggregation, AlgebraExpr, SortSpec};
use df_core::dataframe::DataFrame;
use df_engine::engine::ModinConfig;
use df_engine::session::EvalMode;
use df_pandas::{PandasFrame, Session};
use df_service::{QueryService, ServiceConfig};
use df_types::cell::{cell, Cell};
use df_types::error::DfError;
use df_types::fail;

/// Serialises the tests (armed or not) on the process-global failpoint registry
/// and guarantees disarm-on-drop. Same idiom as `tests/fault_injection.rs`.
struct Armed {
    _guard: MutexGuard<'static, ()>,
}

static FAIL_LOCK: Mutex<()> = Mutex::new(());

impl Armed {
    fn new(spec: &str) -> Armed {
        let guard = FAIL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        fail::configure_seeded(spec, 7).expect("valid failpoint spec");
        Armed { _guard: guard }
    }

    fn rearm(&self, spec: &str) {
        fail::configure_seeded(spec, 7).expect("valid failpoint spec");
    }

    fn disarm(&self) {
        fail::clear();
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fail::clear();
    }
}

const TENANTS: usize = 8;

fn salted_frame(rows: usize, salt: i64) -> DataFrame {
    DataFrame::from_columns(
        vec!["k", "v"],
        vec![
            (0..rows)
                .map(|i| cell((i as i64 * 7 + salt) % 11))
                .collect::<Vec<Cell>>(),
            (0..rows).map(|i| cell(i as i64 + salt)).collect(),
        ],
    )
    .unwrap()
}

/// The shared statement mix every tenant runs: all four expressions read the
/// *same* literal leaf (`Arc` identity), so their fingerprints are identical
/// across tenants and the shared cache can deduplicate them service-wide.
fn shared_statements(base: &Arc<DataFrame>) -> Vec<Arc<AlgebraExpr>> {
    let leaf = || AlgebraExpr::literal_arc(Arc::clone(base));
    vec![
        Arc::new(leaf().group_by(vec![cell("k")], vec![Aggregation::count_rows()], false)),
        Arc::new(leaf().group_by(
            vec![cell("k")],
            vec![Aggregation::of("v", AggFunc::Sum)],
            false,
        )),
        Arc::new(leaf().drop_duplicates()),
        Arc::new(leaf().sort(SortSpec::ascending(vec![cell("v")]))),
    ]
}

/// A statement only tenant `t` runs (its own literal leaf → its own fingerprint).
fn unique_statement(rows: usize, t: usize) -> Arc<AlgebraExpr> {
    Arc::new(
        AlgebraExpr::literal(salted_frame(rows, 1 + t as i64)).group_by(
            vec![cell("k")],
            vec![Aggregation::of("v", AggFunc::Mean)],
            false,
        ),
    )
}

fn serial_reference() -> Arc<Session> {
    Session::modin_with(
        ModinConfig::sequential().with_partition_size(16, 4),
        EvalMode::Eager,
    )
}

fn engine_config(threads: usize, budget: Option<usize>) -> ModinConfig {
    let mut config = ModinConfig::default()
        .with_threads(threads)
        .with_partition_size(16, 4);
    if let Some(bytes) = budget {
        config = config.with_memory_budget(bytes);
    }
    config
}

/// The tentpole scenario: 8 tenant threads over mixed cached / uncached /
/// spilling statements, across thread counts and memory budgets. Every result
/// must match the serial single-tenant reference cell for cell, each unique
/// fingerprint must execute exactly once service-wide, and the gate must never
/// exceed its slot count.
#[test]
fn eight_tenants_mixed_statements_match_serial_and_dedup() {
    let _armed = Armed::new("");
    const ROWS: usize = 240;
    const REPS: usize = 2;
    let base = Arc::new(salted_frame(ROWS, 0));
    let working_set = base.approx_size_bytes();

    let shared = shared_statements(&base);
    let uniques: Vec<Arc<AlgebraExpr>> = (0..TENANTS).map(|t| unique_statement(ROWS, t)).collect();
    let reference = serial_reference();
    let shared_expected: Vec<Arc<DataFrame>> = shared
        .iter()
        .map(|e| Arc::new(reference.query().collect(e).unwrap()))
        .collect();
    let unique_expected: Vec<Arc<DataFrame>> = uniques
        .iter()
        .map(|e| Arc::new(reference.query().collect(e).unwrap()))
        .collect();

    for threads in [1usize, 4] {
        for budget in [None, Some(working_set / 4)] {
            let budgeted = budget.is_some();
            let service = QueryService::start(
                ServiceConfig::default()
                    .with_engine(engine_config(threads, budget))
                    .with_max_concurrent(3)
                    .with_queue(64, Duration::from_secs(60)),
            )
            .expect("service starts");
            let barrier = Arc::new(Barrier::new(TENANTS));

            let workers: Vec<_> = (0..TENANTS)
                .map(|t| {
                    let service = Arc::clone(&service);
                    let barrier = Arc::clone(&barrier);
                    let shared = shared.clone();
                    let shared_expected = shared_expected.clone();
                    let unique = Arc::clone(&uniques[t]);
                    let unique_expected = Arc::clone(&unique_expected[t]);
                    std::thread::spawn(move || {
                        let tenant = service.tenant(&format!("tenant-{t}"));
                        barrier.wait();
                        for rep in 0..REPS {
                            for (i, expr) in shared.iter().enumerate() {
                                let out = tenant.query().collect(expr).unwrap_or_else(|e| {
                                    panic!("tenant-{t} rep {rep} shared {i}: {e}")
                                });
                                assert!(
                                    out.same_data(&shared_expected[i]),
                                    "tenant-{t} rep {rep}: shared statement {i} diverged"
                                );
                            }
                        }
                        let out = tenant
                            .query()
                            .collect(&unique)
                            .unwrap_or_else(|e| panic!("tenant-{t} unique: {e}"));
                        assert!(
                            out.same_data(&unique_expected),
                            "tenant-{t}: unique statement diverged"
                        );
                    })
                })
                .collect();
            for worker in workers {
                worker.join().expect("tenant thread panicked");
            }

            let stats = service.stats();
            let executions: u64 = stats.tenants.iter().map(|(_, s)| s.executions).sum();
            let unique_fingerprints = (shared.len() + TENANTS) as u64;
            assert_eq!(
                executions, unique_fingerprints,
                "threads={threads} budgeted={budgeted}: every unique fingerprint must \
                 execute exactly once: {stats:?}"
            );
            let cache = stats.cache.expect("shared cache");
            // 8 tenants × 2 reps × 4 shared statements = 64 accesses, 4 of which
            // produced; at least the rest were hits (single-flight waiters that
            // woke to a published entry count here too).
            assert!(
                cache.hits >= (TENANTS * REPS * shared.len() - shared.len()) as u64,
                "threads={threads} budgeted={budgeted}: {cache:?}"
            );
            assert!(
                cache.shared_hits > 0,
                "no cross-tenant reuse observed: {cache:?}"
            );
            assert!(
                stats.admission.peak_active <= 3,
                "gate exceeded its slots: {:?}",
                stats.admission
            );
            assert_eq!(stats.admission.rejected_full, 0);
            assert_eq!(stats.admission.timed_out, 0);
            if budgeted {
                assert!(
                    service.spill_stats().spill_outs > 0,
                    "ws/4 budget never spilled: {:?}",
                    service.spill_stats()
                );
            }
        }
    }
}

/// The headline acceptance criterion: 8 tenants racing the *same* fingerprint
/// cause exactly one engine execution — one gate admission, seven cache hits.
#[test]
fn same_fingerprint_from_eight_tenants_executes_once() {
    let _armed = Armed::new("");
    let base = Arc::new(salted_frame(160, 0));
    let expr = Arc::new(AlgebraExpr::literal_arc(Arc::clone(&base)).group_by(
        vec![cell("k")],
        vec![Aggregation::of("v", AggFunc::Max)],
        false,
    ));
    let expected = Arc::new(serial_reference().query().collect(&expr).unwrap());

    let service = QueryService::start(
        ServiceConfig::default()
            .with_engine(engine_config(2, None))
            .with_max_concurrent(2)
            .with_queue(32, Duration::from_secs(60)),
    )
    .expect("service starts");
    let barrier = Arc::new(Barrier::new(TENANTS));
    let workers: Vec<_> = (0..TENANTS)
        .map(|t| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let expr = Arc::clone(&expr);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let tenant = service.tenant(&format!("tenant-{t}"));
                barrier.wait();
                let out = tenant.query().collect(&expr).expect("collect succeeds");
                assert!(out.same_data(&expected), "tenant-{t} diverged");
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("tenant thread panicked");
    }

    let stats = service.stats();
    let executions: u64 = stats.tenants.iter().map(|(_, s)| s.executions).sum();
    assert_eq!(executions, 1, "{stats:?}");
    assert_eq!(stats.admission.admitted, 1, "{:?}", stats.admission);
    let cache = stats.cache.expect("shared cache");
    assert_eq!(cache.hits, (TENANTS - 1) as u64, "{cache:?}");
    assert_eq!(cache.shared_hits, (TENANTS - 1) as u64, "{cache:?}");
}

/// One tenant's quota violations are typed and contained: the greedy tenant's
/// own productions fail `ResourceExhausted`, while its neighbours (and its own
/// *reads* of entries others produced) are untouched.
#[test]
fn quota_violations_are_typed_and_never_disturb_neighbours() {
    let _armed = Armed::new("");
    let base = Arc::new(salted_frame(160, 0));
    let shared = Arc::new(AlgebraExpr::literal_arc(Arc::clone(&base)).group_by(
        vec![cell("k")],
        vec![Aggregation::count_rows()],
        false,
    ));
    let expected = Arc::new(serial_reference().query().collect(&shared).unwrap());

    let service = QueryService::start(ServiceConfig::default().with_engine(engine_config(2, None)))
        .expect("service starts");
    let greedy = service.tenant_with_quota("greedy", Some(1));
    let normal = service.tenant("normal");

    // The greedy tenant cannot *produce*: no result fits a 1-byte quota.
    let err = greedy
        .query()
        .collect(&unique_statement(160, 99))
        .unwrap_err();
    assert!(matches!(err, DfError::ResourceExhausted(_)), "{err}");

    // Its neighbour is untouched — produces and caches the shared statement.
    let out = normal
        .query()
        .collect(&shared)
        .expect("neighbour unaffected");
    assert!(out.same_data(&expected));

    // And the greedy tenant can still *read* what others produced (a hit
    // retains nothing, so no quota applies).
    let out = greedy.query().collect(&shared).expect("hits bypass quota");
    assert!(out.same_data(&expected));

    let cache = service.stats().cache.expect("shared cache");
    assert!(cache.quota_rejections >= 1, "{cache:?}");
    let greedy_slice = cache
        .tenants
        .iter()
        .find(|(name, _)| name == "greedy")
        .map(|(_, t)| *t)
        .expect("greedy attributed");
    assert_eq!(greedy_slice.retained_bytes, 0, "{cache:?}");
    assert_eq!(greedy_slice.hits, 1, "{cache:?}");
}

/// Graceful shutdown under load: in-flight statements drain, late arrivals are
/// refused with typed admission errors, and the service ends idle.
#[test]
fn shutdown_drains_in_flight_work_and_refuses_late_arrivals() {
    let _armed = Armed::new("");
    let service = QueryService::start(
        ServiceConfig::default()
            .with_engine(engine_config(2, None))
            .with_max_concurrent(2)
            .with_queue(32, Duration::from_secs(60)),
    )
    .expect("service starts");

    let workers: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let tenant = service.tenant(&format!("tenant-{t}"));
                let mut completed = 0u64;
                // Every iteration builds a fresh frame → fresh fingerprint →
                // a real execution, until the drain refuses us.
                for round in 0..10_000u64 {
                    let expr =
                        AlgebraExpr::literal(salted_frame(96, (t as i64) * 100_000 + round as i64))
                            .drop_duplicates();
                    match tenant.query().collect(&expr) {
                        Ok(out) => {
                            assert_eq!(out.n_rows(), 96, "tenant-{t} round {round}");
                            completed += 1;
                        }
                        Err(err) => {
                            assert!(
                                err.is_admission() || err.is_cancelled(),
                                "tenant-{t} round {round}: untyped shutdown error {err}"
                            );
                            return completed;
                        }
                    }
                }
                completed
            })
        })
        .collect();

    // Let the tenants get some statements in flight, then drain.
    std::thread::sleep(Duration::from_millis(100));
    let report = service.shutdown(Duration::from_secs(30));
    assert!(report.idle, "{report:?}");
    assert!(!report.cancelled_stragglers, "{report:?}");

    let completed: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("tenant thread panicked"))
        .sum();
    assert!(completed > 0, "nobody finished anything before the drain");
    assert!(service.is_draining());
    let err = service
        .tenant("latecomer")
        .query()
        .collect(&unique_statement(32, 7))
        .unwrap_err();
    assert!(err.is_admission(), "{err}");
}

/// Chaos arm (PR-7 failpoints, seed pinned to 7): a spill-read corruption hit by
/// one tenant's statement is either absorbed by recovery (bit-exact result) or
/// surfaced as a typed error to *that tenant only* — the other tenant's
/// statements keep answering exactly, and once the fault clears the first
/// tenant's session heals on the same service.
#[test]
fn one_tenants_spill_fault_never_poisons_another_tenant() {
    let armed = Armed::new("");
    // A 1-byte budget spills every band, so materialisation always reads back
    // from disk — the armed fault is guaranteed to fire on the first statement
    // that runs, which we make tenant A's.
    let service = QueryService::start(
        ServiceConfig::default()
            .with_engine(
                ModinConfig::default()
                    .with_threads(2)
                    .with_partition_size(16, 4)
                    .with_memory_budget(1),
            )
            .with_mode(EvalMode::Lazy),
    )
    .expect("service starts");
    let alpha = service.tenant("alpha");
    let beta = service.tenant("beta");

    let frame_a = PandasFrame::try_from_dataframe(alpha.session(), salted_frame(240, 1))
        .expect("alpha frame")
        .isna();
    let frame_b = PandasFrame::try_from_dataframe(beta.session(), salted_frame(240, 2))
        .expect("beta frame")
        .isna();
    let baseline_a = frame_a.collect().expect("alpha baseline");
    let baseline_b = frame_b.collect().expect("beta baseline");

    // Corrupt the next spill read; alpha runs first and takes the fault.
    armed.rearm("spill.read=corrupt@1");
    match frame_a.collect() {
        Ok(out) => assert!(out.same_data(&baseline_a), "alpha recovery diverged"),
        Err(err) => assert!(
            err.is_spill_corruption(),
            "alpha surfaced an untyped fault: {err}"
        ),
    }
    // Beta is a different tenant on the same engine, store and cache — its
    // statement must still answer exactly.
    let out = frame_b.collect().expect("beta must be unaffected");
    assert!(
        out.same_data(&baseline_b),
        "beta was poisoned by alpha's fault"
    );

    // Fault cleared: alpha heals on the very same service.
    armed.disarm();
    let healed = frame_a.collect().expect("alpha heals after disarm");
    assert!(healed.same_data(&baseline_a));
}
