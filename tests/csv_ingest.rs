//! Acceptance suite for parallel out-of-core CSV ingest.
//!
//! The contract under test: the chunk-parallel reader
//! (`ModinEngine::read_csv_handle` / `PandasFrame::read_csv_path`) is **cell-for-cell
//! identical to the serial reader** — on every workload generator, on adversarial
//! proptest inputs (quotes, delimiters, embedded newlines, CRLF, NaN/-0.0, untyped
//! numeric-looking strings), across thread counts and chunk sizes, with and without
//! schema inference — while a memory-budgeted session ingests files larger than its
//! budget within the documented peak-residency bound.

use std::sync::Arc;

use proptest::prelude::*;

use df_core::dataframe::DataFrame;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_pandas::{PandasFrame, Session};
use df_storage::csv::{read_csv_str, write_csv_string, CsvOptions};
use df_types::cell::cell;
use df_types::cell::Cell;
use df_workloads::random::{random_frame, RandomFrameConfig};
use df_workloads::sales::{generate_sales, SalesConfig};
use df_workloads::taxi::{generate_raw, TaxiConfig};

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("csv_ingest_suite_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = temp_dir().join(name);
    std::fs::write(&path, content).unwrap();
    path
}

/// Assert the parallel reader agrees with the serial reader on this document, across
/// thread counts, chunk granularities and both schema modes.
fn assert_parallel_matches_serial(name: &str, content: &str) {
    for infer_schema in [false, true] {
        let options = CsvOptions {
            infer_schema,
            ..CsvOptions::default()
        };
        let serial = read_csv_str(content, &options).unwrap();
        let path = write_temp(&format!("{name}-{infer_schema}.csv"), content);
        for threads in [1usize, 4] {
            for band_rows in [7usize, 64, 16_384] {
                let engine = ModinEngine::with_config(
                    ModinConfig::default()
                        .with_threads(threads)
                        .with_partition_size(band_rows, 32),
                );
                let handle = engine.read_csv_handle(&path, &options).unwrap();
                assert_eq!(handle.shape(), serial.shape());
                let parallel = handle.to_dataframe().unwrap();
                assert!(
                    parallel.same_data(&serial),
                    "{name}: threads={threads} band_rows={band_rows} infer={infer_schema} \
                     diverged from serial\nserial:\n{serial}\nparallel:\n{parallel}"
                );
                assert_eq!(
                    parallel.schema(),
                    serial.schema(),
                    "{name}: schema diverged (threads={threads}, band_rows={band_rows}, infer={infer_schema})"
                );
                let stats = engine.ingest_stats();
                assert_eq!(stats.files_ingested, 1);
                assert_eq!(stats.ingest_bytes, content.len() as u64);
            }
        }
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn workload_generators_ingest_identically() {
    let sales = generate_sales(&SalesConfig {
        years: 30,
        months: 12,
        seed: 7,
    })
    .unwrap();
    assert_parallel_matches_serial(
        "sales",
        &write_csv_string(&sales, &CsvOptions::default()).unwrap(),
    );

    let taxi = generate_raw(&TaxiConfig {
        base_rows: 150,
        ..TaxiConfig::default()
    })
    .unwrap();
    assert_parallel_matches_serial(
        "taxi",
        &write_csv_string(&taxi, &CsvOptions::default()).unwrap(),
    );

    let random = random_frame(&RandomFrameConfig {
        rows: 90,
        null_fraction: 0.25,
        seed: 11,
        ..RandomFrameConfig::default()
    })
    .unwrap();
    assert_parallel_matches_serial(
        "random",
        &write_csv_string(&random, &CsvOptions::default()).unwrap(),
    );
}

#[test]
fn engine_default_threads_follow_df_threads_matrix() {
    // CI runs the whole suite under DF_THREADS ∈ {1, 4}; the default engine picks
    // that up, so this case exercises the ingest path at whatever the matrix says.
    let sales = generate_sales(&SalesConfig {
        years: 20,
        months: 6,
        seed: 3,
    })
    .unwrap();
    let content = write_csv_string(&sales, &CsvOptions::default()).unwrap();
    let serial = read_csv_str(&content, &CsvOptions::default()).unwrap();
    let path = write_temp("df-threads.csv", &content);
    let engine = ModinEngine::with_config(ModinConfig::default().with_partition_size(16, 32));
    let parallel = engine
        .read_csv_handle(&path, &CsvOptions::default())
        .unwrap()
        .to_dataframe()
        .unwrap();
    assert!(parallel.same_data(&serial));
    assert!(engine.ingest_stats().bands_parsed > 1);
    std::fs::remove_file(path).ok();
}

#[test]
fn budgeted_ingest_of_a_file_larger_than_the_budget() {
    // A file whose parsed working set is ~4x the session's memory budget must ingest
    // completely, spill during ingest, respect the peak-residency bound, and still be
    // cell-for-cell identical to the serial read.
    let mut content = String::from("k,payload,score\n");
    for i in 0..2_000 {
        content.push_str(&format!(
            "{},{}-{},{}.25\n",
            i % 13,
            "x".repeat(40),
            i,
            i % 97
        ));
    }
    let serial = read_csv_str(&content, &CsvOptions::default()).unwrap();
    let working_set = serial.approx_size_bytes();
    let budget = working_set / 4;
    let threads = 4usize;
    let path = write_temp("bigger-than-budget.csv", &content);

    let engine = ModinEngine::with_config(
        ModinConfig::default()
            .with_threads(threads)
            .with_partition_size(128, 32)
            .with_memory_budget(budget),
    );
    let handle = engine
        .read_csv_handle(&path, &CsvOptions::default())
        .unwrap();
    let spill = engine.spill_stats();
    assert!(
        spill.spill_outs > 0,
        "ingest at ws/4 budget never spilled: {spill:?}"
    );
    assert!(
        spill.peak_memory_bytes <= budget + threads * spill.max_insert_bytes,
        "ingest peak exceeded budget + threads x band: {spill:?} (budget {budget})"
    );
    let ingest = engine.ingest_stats();
    assert!(ingest.bands_parsed >= 4, "too few bands: {ingest:?}");
    assert_eq!(ingest.ingest_bytes, content.len() as u64);
    // The handle stays partitioned and spill-backed until a materialisation point.
    assert_eq!(handle.shape(), serial.shape());
    assert!(handle.to_dataframe().unwrap().same_data(&serial));
    std::fs::remove_file(path).ok();
}

#[test]
fn pandas_read_csv_is_lazy_cached_and_invalidated_by_file_changes() {
    let mut content = String::from("region,amount\n");
    for i in 0..200 {
        content.push_str(&format!("r{},{}\n", i % 5, i));
    }
    let path = write_temp("cached.csv", &content);
    let session = Session::modin();
    let frame = PandasFrame::read_csv_path(&session, &path, &CsvOptions::default()).unwrap();
    // The statement is the partitioned scan handle: shape comes from metadata.
    assert_eq!(frame.shape().unwrap(), (200, 2));
    let executions_after_first = session.stats().executions;

    // Re-reading the unchanged file is a cache hit on the same underlying handle.
    let again = PandasFrame::read_csv_path(&session, &path, &CsvOptions::default()).unwrap();
    assert_eq!(
        frame.handle().unwrap().identity(),
        again.handle().unwrap().identity(),
        "unchanged file re-read did not reuse the cached scan"
    );
    assert_eq!(session.stats().executions, executions_after_first);
    assert!(session.stats().cache_hits >= 1);

    // Different parse options are a different statement.
    let typed_options = CsvOptions {
        infer_schema: true,
        ..CsvOptions::default()
    };
    let typed = PandasFrame::read_csv_path(&session, &path, &typed_options).unwrap();
    assert_ne!(
        typed.handle().unwrap().identity(),
        frame.handle().unwrap().identity()
    );

    // Rewriting the file invalidates the key (length/mtime/ctime change), and the
    // superseded version's cache entry is evicted rather than pinning its grid for
    // the rest of the session: one entry per live (path, options) statement.
    std::fs::write(&path, "region,amount\nonly,1\n").unwrap();
    let changed = PandasFrame::read_csv_path(&session, &path, &CsvOptions::default()).unwrap();
    assert_eq!(changed.shape().unwrap(), (1, 2));
    assert_eq!(
        session.query().cached_results(),
        2,
        "expected exactly the raw (current) and typed scan entries"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn pandas_pipeline_over_ingested_file_matches_serial_session_and_writes_bandwise() {
    // The end-to-end scenario: open a file under a tight budget, run
    // filter → groupby → sort, write the result band-wise — and agree with the same
    // pipeline over the serially read frame on an unbudgeted session.
    let mut content = String::from("region,amount\n");
    for i in 0..600 {
        content.push_str(&format!("r{},{}\n", i % 7, i % 50));
    }
    let path = write_temp("pipeline.csv", &content);
    let options = CsvOptions {
        infer_schema: true,
        ..CsvOptions::default()
    };
    let serial = read_csv_str(&content, &options).unwrap();
    let budget = serial.approx_size_bytes() / 4;

    let run = |session: &Arc<Session>, frame: PandasFrame| -> DataFrame {
        let filtered = frame.filter_gt("amount", 10).unwrap();
        let grouped = filtered.groupby_agg(
            &["region"],
            vec![
                df_core::algebra::Aggregation::of("amount", df_core::algebra::AggFunc::Sum)
                    .with_alias("total"),
            ],
            false,
        );
        let sorted = grouped.sort_values(&["region"], true);
        let _ = session;
        sorted.collect().unwrap()
    };

    let budgeted = Session::modin_with(
        ModinConfig::default()
            .with_partition_size(64, 32)
            .with_memory_budget(budget),
        df_engine::session::EvalMode::Eager,
    );
    let ingested = PandasFrame::read_csv_path(&budgeted, &path, &options).unwrap();
    let out_of_core_result = run(&budgeted, ingested.clone());

    let reference = Session::modin();
    let serial_frame = PandasFrame::try_from_dataframe(&reference, serial.clone()).unwrap();
    let reference_result = run(&reference, serial_frame);
    assert!(
        out_of_core_result.same_data(&reference_result),
        "budgeted ingest pipeline diverged\nbudgeted:\n{out_of_core_result}\nreference:\n{reference_result}"
    );
    assert!(budgeted.spill_stats().unwrap().spill_outs > 0);
    assert!(budgeted.ingest_stats().unwrap().bands_parsed > 1);

    // Band-wise write of the (partitioned) ingest result round-trips.
    let out_path = temp_dir().join("pipeline-out.csv");
    ingested.write_csv_path(&out_path).unwrap();
    let reread = read_csv_str(
        &std::fs::read_to_string(&out_path).unwrap(),
        &CsvOptions::default(),
    )
    .unwrap();
    let serial_raw = read_csv_str(&content, &CsvOptions::default()).unwrap();
    // The ingest was typed (infer_schema), so the written file renders typed cells;
    // compare against writing the serially read typed frame.
    let serial_written = write_csv_string(&serial, &CsvOptions::default()).unwrap();
    let serial_reread = read_csv_str(&serial_written, &CsvOptions::default()).unwrap();
    assert!(reread.same_data(&serial_reread));
    assert_eq!(reread.shape(), serial_raw.shape());

    // Non-MODIN sessions fall back to the serial reader and still agree.
    let baseline = Session::baseline();
    let fallback = PandasFrame::read_csv_path(&baseline, &path, &options).unwrap();
    assert!(fallback.collect().unwrap().same_data(&serial));
    std::fs::remove_file(path).ok();
    std::fs::remove_file(out_path).ok();
}

/// Adversarial cell vocabulary: quoting, delimiters, newlines (LF and CRLF), quotes,
/// null spellings, numeric-looking strings with leading zeros, NaN/-0.0 renderings.
const ADVERSARIAL: [&str; 18] = [
    "plain",
    "a,b",
    "say \"hi\"",
    "line\nbreak",
    "cr\r\nlf",
    "trailing\r",
    " padded ",
    "",
    "NA",
    "null",
    "007",
    "42",
    "-0.0",
    "2.5",
    "NaN",
    "1e3",
    "true",
    "2020-01-01",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn proptest_round_trip_serial_equals_parallel(
        rows in 0usize..40,
        cols in 2usize..5,
        seed in 0u64..10_000,
        band_rows in 1usize..12,
        infer_choice in 0u8..2,
    ) {
        let infer_schema = infer_choice == 1;
        // Deterministic adversarial frame from the seed.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let labels: Vec<String> = (0..cols).map(|j| format!("c{j}")).collect();
        let columns: Vec<Vec<Cell>> = (0..cols)
            .map(|_| {
                (0..rows)
                    .map(|_| Cell::Str(ADVERSARIAL[next() % ADVERSARIAL.len()].to_string()))
                    .collect()
            })
            .collect();
        let original = DataFrame::from_columns(labels, columns).unwrap();
        let content = write_csv_string(&original, &CsvOptions::default()).unwrap();
        let options = CsvOptions { infer_schema, ..CsvOptions::default() };

        // Serial read is the ground truth; the parallel read must match it exactly.
        let serial = read_csv_str(&content, &options).unwrap();
        let path = write_temp(&format!("prop-{seed}-{rows}-{cols}-{infer_schema}.csv"), &content);
        for threads in [1usize, 4] {
            let engine = ModinEngine::with_config(
                ModinConfig::default()
                    .with_threads(threads)
                    .with_partition_size(band_rows, 32),
            );
            let parallel = engine
                .read_csv_handle(&path, &options)
                .unwrap()
                .to_dataframe()
                .unwrap();
            prop_assert!(
                parallel.same_data(&serial),
                "adversarial ingest diverged (threads={}, band_rows={}, infer={})\nserial:\n{}\nparallel:\n{}",
                threads, band_rows, infer_schema, serial, parallel
            );
            prop_assert_eq!(parallel.schema(), serial.schema());
        }
        std::fs::remove_file(&path).ok();

        // Raw reads reproduce the original cells exactly, modulo the defined null
        // normalisation (null-token strings ingest as nulls).
        if !infer_schema {
            let expected_columns: Vec<Vec<Cell>> = original
                .columns()
                .iter()
                .map(|c| {
                    c.cells()
                        .iter()
                        .map(|cell| match cell {
                            Cell::Str(s) if df_types::domain::is_null_token(s) => Cell::Null,
                            other => other.clone(),
                        })
                        .collect()
                })
                .collect();
            let expected = DataFrame::from_columns(
                (0..cols).map(|j| format!("c{j}")).collect::<Vec<_>>(),
                expected_columns,
            )
            .unwrap();
            prop_assert!(
                serial.same_data(&expected),
                "round trip lost cells\nexpected:\n{}\ngot:\n{}",
                expected, serial
            );
        }
    }
}

#[test]
fn ingested_handles_chain_into_later_statements() {
    // A derived statement's plan rebases onto the cached scan handle: the engine
    // resumes from the partitioned grid instead of re-reading or re-partitioning.
    let mut content = String::from("v,w\n");
    for i in 0..120 {
        content.push_str(&format!("{i},{}\n", i * 2));
    }
    let path = write_temp("chained.csv", &content);
    let session = Session::modin_with(
        ModinConfig::default().with_partition_size(16, 32),
        df_engine::session::EvalMode::Eager,
    );
    let frame = PandasFrame::read_csv_path(
        &session,
        &path,
        &CsvOptions {
            infer_schema: true,
            ..CsvOptions::default()
        },
    )
    .unwrap();
    let engine = session.modin_engine().unwrap();
    let reuses_before = engine.handles_reused();
    let filtered = frame.filter_gt("v", 100).unwrap();
    assert_eq!(filtered.collect().unwrap().n_rows(), 19);
    assert!(
        engine.handles_reused() > reuses_before,
        "derived statement did not resume from the ingest handle"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn cell_helper_is_linked() {
    // Keep the `cell` import earning its place (used across ignored-on-failure
    // diagnostics); also a cheap smoke of the raw ingest cell state.
    let df = read_csv_str("a\n7\n", &CsvOptions::default()).unwrap();
    assert_eq!(df.cell(0, 0).unwrap(), &cell("7"));
}
