//! Workspace-level smoke test: the pandas-like baseline and the MODIN-like engine must
//! produce identical results for the paper's signature workload — pivoting a narrow
//! `(Year, Month, Sales)` table into the wide-by-year form (Figure 5 / Figure 8). The
//! §6 ablations compare the two engines' run times, which is only meaningful while
//! their visible semantics stay equal; this test guards that contract end to end
//! through the umbrella crate's public API.

use scalable_dataframes::prelude::*;
use scalable_dataframes::workloads::sales::{generate_sales, SalesConfig};

#[test]
fn baseline_and_modin_agree_on_a_small_sales_pivot() {
    let narrow = generate_sales(&SalesConfig {
        years: 12,
        months: 12,
        seed: 3,
    })
    .unwrap();

    let baseline_session = Session::baseline();
    let modin_session = Session::modin();
    let baseline_wide = PandasFrame::from_dataframe(&baseline_session, narrow.clone())
        .pivot("Year", "Month", "Sales")
        .unwrap()
        .collect()
        .unwrap();
    let modin_wide = PandasFrame::from_dataframe(&modin_session, narrow)
        .pivot("Year", "Month", "Sales")
        .unwrap()
        .collect()
        .unwrap();

    assert_eq!(baseline_wide.shape(), (12, 12));
    assert!(
        baseline_wide.same_data(&modin_wide),
        "baseline pivot:\n{baseline_wide}\nmodin pivot:\n{modin_wide}"
    );
}

#[test]
fn quickstart_prelude_covers_both_engines() {
    for session in [Session::baseline(), Session::modin()] {
        let df = PandasFrame::from_rows(
            &session,
            vec!["product", "price"],
            vec![
                vec![cell("iPhone 11"), cell(699)],
                vec![cell("iPhone 11 Pro"), cell(999)],
            ],
        )
        .unwrap();
        let expensive = df.filter_gt("price", 700.0).unwrap();
        assert_eq!(expensive.shape().unwrap(), (1, 2));
    }
}
