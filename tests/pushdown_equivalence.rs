//! Differential acceptance suite for cost-based scan pushdown.
//!
//! The contract under test: plans whose predicates and projections are pushed
//! into the `SCAN_CSV` leaf are **cell-for-cell identical** to (a) the same
//! plan with every rewrite disabled and (b) the serial reference
//! (`read_csv_str` + row-wise selection/projection) — across
//! threads {1, 4} × memory budgets {∞, working-set/4} × schema inference
//! {off, on} — including NaN/null boundary values and predicates that
//! reference columns the projection prunes away.

use proptest::prelude::*;

use df_core::algebra::{AlgebraExpr, CmpOp, ColumnSelector, Predicate};
use df_core::engine::Engine;
use df_core::ops;
use df_core::scan::{ScanCsv, ScanOptions};
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::optimizer::OptimizerConfig;
use df_storage::csv::{read_csv_str, CsvOptions};
use df_types::cell::{cell, Cell};

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pushdown_equiv_suite_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = temp_dir().join(name);
    std::fs::write(&path, content).unwrap();
    path
}

fn scan_expr(path: &std::path::Path, infer_schema: bool, identity: &str) -> AlgebraExpr {
    AlgebraExpr::scan_csv(ScanCsv::new(
        path,
        ScanOptions {
            infer_schema,
            ..ScanOptions::default()
        },
        identity,
    ))
}

fn col_cmp(column: &str, op: CmpOp, value: Cell) -> Predicate {
    Predicate::ColCmp {
        column: cell(column),
        op,
        value,
    }
}

/// Evaluate `scan → [select] → [project]` on a pushdown engine and on an
/// optimizer-disabled engine, across the full configuration matrix, and
/// require both to agree cell-for-cell with the serial reference.
fn assert_pushdown_equivalence(
    name: &str,
    content: &str,
    predicate: Option<Predicate>,
    projection: Option<&[&str]>,
    band_rows: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    for infer_schema in [false, true] {
        let csv_options = CsvOptions {
            infer_schema,
            ..CsvOptions::default()
        };
        let serial = read_csv_str(content, &csv_options).unwrap();
        let mut expected = match &predicate {
            Some(pred) => ops::rowwise::selection(&serial, pred).unwrap(),
            None => serial.clone(),
        };
        if let Some(labels) = projection {
            let selector =
                ColumnSelector::ByLabels(labels.iter().map(|label| cell(*label)).collect());
            expected = ops::rowwise::projection(&expected, &selector).unwrap();
        }

        let path = write_temp(&format!("{name}-{infer_schema}.csv"), content);
        let budgets = [None, Some((serial.approx_size_bytes() / 4).max(1))];
        for threads in [1usize, 4] {
            for budget in budgets {
                let mut config = ModinConfig::default()
                    .with_threads(threads)
                    .with_partition_size(band_rows, 32);
                if let Some(bytes) = budget {
                    config = config.with_memory_budget(bytes);
                }
                let plain_config = ModinConfig {
                    optimizer: OptimizerConfig::disabled(),
                    ..config.clone()
                };

                let identity = format!("{name}-{infer_schema}-{threads}-{budget:?}");
                let mut expr = scan_expr(&path, infer_schema, &identity);
                if let Some(pred) = &predicate {
                    expr = expr.select(pred.clone());
                }
                if let Some(labels) = projection {
                    expr = expr.project(ColumnSelector::ByLabels(
                        labels.iter().map(|label| cell(*label)).collect(),
                    ));
                }

                let pushed_engine = ModinEngine::with_config(config);
                let pushed = pushed_engine.execute_collect(&expr).unwrap();
                let plain_engine = ModinEngine::with_config(plain_config);
                let plain = plain_engine.execute_collect(&expr).unwrap();

                prop_assert!(
                    pushed.same_data(&expected),
                    "{name}: pushed plan diverged from serial reference \
                     (threads={threads}, budget={budget:?}, infer={infer_schema})\n\
                     expected:\n{expected}\npushed:\n{pushed}"
                );
                prop_assert!(
                    plain.same_data(&expected),
                    "{name}: unpushed plan diverged from serial reference \
                     (threads={threads}, budget={budget:?}, infer={infer_schema})\n\
                     expected:\n{expected}\nplain:\n{plain}"
                );
                prop_assert!(
                    pushed.schema() == plain.schema(),
                    "{name}: schema diverged (threads={threads}, budget={budget:?}, infer={infer_schema})"
                );
                // The disabled-optimizer arm must genuinely be the unpushed
                // plan, or the differential proves nothing.
                let plain_stats = plain_engine.pushdown_stats();
                prop_assert_eq!(plain_stats.predicates_pushed, 0);
                prop_assert_eq!(plain_stats.projections_pushed, 0);
                prop_assert_eq!(plain_stats.chunks_skipped, 0);
            }
        }
        std::fs::remove_file(path).ok();
    }
    Ok(())
}

/// Cell vocabulary for the value columns: numeric-looking strings, null
/// spellings, NaN renderings and signed zero — every boundary the chunk
/// statistics must stay conservative about.
const BOUNDARY: [&str; 12] = [
    "0", "-1", "7", "42", "-0.0", "2.5", "NaN", "nan", "", "NA", "null", "1e2",
];

/// Deterministic adversarial CSV from a seed: column `id` is numeric and
/// loosely clustered (so min/max pruning has something to bite on), `v` mixes
/// numeric values with nulls and NaN, `pad`/`tag` are string payload columns
/// that projection pushdown should prune.
fn generate_csv(rows: usize, seed: u64) -> String {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) as usize
    };
    let mut content = String::from("id,v,pad,tag\n");
    for i in 0..rows {
        let id: String = if next() % 10 == 0 {
            BOUNDARY[next() % BOUNDARY.len()].to_string()
        } else {
            format!("{i}")
        };
        let v = BOUNDARY[next() % BOUNDARY.len()];
        content.push_str(&format!("{id},{v},pad-{},t{}\n", next() % 100, next() % 3));
    }
    content
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn proptest_pushdown_plans_match_unpushed_and_serial(
        rows in 0usize..48,
        seed in 0u64..10_000,
        band_rows in 3usize..17,
        threshold in -4i64..52,
        shape in 0u8..4,
    ) {
        let content = generate_csv(rows, seed);
        // Rotate through the plan shapes: bare filter, bare projection,
        // filter + projection keeping the filter column, and filter +
        // projection that prunes the filter column away.
        let predicate = match shape {
            1 => None,
            _ => Some(col_cmp("id", CmpOp::Lt, cell(threshold))),
        };
        let projection: Option<&[&str]> = match shape {
            0 => None,
            1 | 2 => Some(&["v", "id"]),
            _ => Some(&["tag", "v"]), // predicate column pruned by projection
        };
        assert_pushdown_equivalence(
            &format!("prop-{rows}-{seed}-{band_rows}-{threshold}-{shape}"),
            &content,
            predicate,
            projection,
            band_rows,
        )?;
    }
}

#[test]
fn nan_and_null_boundaries_survive_pushdown() {
    // Every row of `v` is a boundary value; the predicate literal itself walks
    // across NaN, signed zero and a value below every cell.
    let mut content = String::from("v,id,w\n");
    for (i, token) in BOUNDARY.iter().enumerate() {
        content.push_str(&format!("{token},{i},w{i}\n"));
    }
    for (case, value) in [
        ("nan-lit", cell(f64::NAN)),
        ("negzero-lit", cell(-0.0_f64)),
        ("below-all", cell(-1_000_000)),
        ("str-lit", cell("42")),
    ] {
        assert_pushdown_equivalence(
            &format!("boundary-{case}"),
            &content,
            Some(col_cmp("v", CmpOp::Le, value)),
            Some(&["w", "v"]),
            4,
        )
        .unwrap();
    }
}

#[test]
fn predicate_on_pruned_column_still_filters_before_projection() {
    // Selection references `id`; the projection drops it. Pushdown must parse
    // `id` for the filter, then exclude it from the output — exactly like the
    // unpushed SELECTION → PROJECTION pipeline.
    let mut content = String::from("id,a,b,c\n");
    for i in 0..40 {
        content.push_str(&format!("{i},a{i},b{},c{}\n", i % 5, i % 3));
    }
    assert_pushdown_equivalence(
        "pruned-filter-col",
        &content,
        Some(col_cmp("id", CmpOp::Lt, cell(9))),
        Some(&["c", "a"]),
        8,
    )
    .unwrap();

    // And when the projection asks for a column that does not exist, both
    // plans must fail identically rather than one succeeding.
    let path = write_temp("missing-col.csv", &content);
    let expr = scan_expr(&path, true, "missing-col").project(ColumnSelector::ByLabels(vec![
        cell("a"),
        cell("no_such_column"),
    ]));
    let pushed = ModinEngine::with_config(ModinConfig::sequential().with_partition_size(8, 32))
        .execute_collect(&expr);
    let plain = ModinEngine::with_config(ModinConfig {
        optimizer: OptimizerConfig::disabled(),
        ..ModinConfig::sequential().with_partition_size(8, 32)
    })
    .execute_collect(&expr);
    assert_eq!(
        pushed.is_err(),
        plain.is_err(),
        "pushed and unpushed plans disagree on a missing projection column"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn selective_scan_prunes_chunks_and_columns_with_identical_results() {
    // The acceptance scenario from the issue: a filter matching < 10% of the
    // chunks plus a 2-of-8 projection must actually skip chunks and prune
    // columns — while staying cell-for-cell identical to the unpushed plan.
    let mut content = String::from("id,c1,c2,c3,c4,c5,c6,c7\n");
    for i in 0..256 {
        content.push_str(&format!(
            "{i},{},{}.5,x{},y{},z{},w{},t{}\n",
            i * 2,
            i % 9,
            i % 4,
            i % 5,
            i % 6,
            i % 7,
            i % 3
        ));
    }
    let predicate = col_cmp("id", CmpOp::Lt, cell(8));
    let projection: &[&str] = &["c2", "id"];
    assert_pushdown_equivalence(
        "selective",
        &content,
        Some(predicate.clone()),
        Some(projection),
        16,
    )
    .unwrap();

    // Counter-level acceptance on one representative engine.
    let path = write_temp("selective-counters.csv", &content);
    let expr = scan_expr(&path, true, "selective-counters")
        .select(predicate)
        .project(ColumnSelector::ByLabels(vec![cell("c2"), cell("id")]));
    let engine = ModinEngine::with_config(
        ModinConfig::default()
            .with_threads(4)
            .with_partition_size(16, 32),
    );
    let result = engine.execute_collect(&expr).unwrap();
    assert_eq!(result.shape(), (8, 2));
    let stats = engine.pushdown_stats();
    assert!(
        stats.chunks_skipped >= 14,
        "sorted ids in 16 bands, only the first survives id < 8: {stats:?}"
    );
    assert_eq!(stats.columns_pruned, 6, "8 columns, 2 referenced");
    assert_eq!(stats.predicates_pushed, 1);
    assert_eq!(stats.projections_pushed, 1);
    std::fs::remove_file(path).ok();
}
