//! Integration tests for the Table 2 rewrite catalogue and the Table 3 capability
//! matrix: the pandas-style API must produce exactly the algebra operators the paper's
//! tables claim, and the engines' capability probes must reproduce the feature matrix.

use df_baseline::BaselineEngine;
use df_core::algebra::{AlgebraExpr, MapFunc};
use df_core::engine::{Capabilities, Engine, ReferenceEngine};
use df_engine::engine::ModinEngine;
use df_pandas::{table2_rewrites, PandasFrame, RewriteKind, Session};
use df_types::cell::cell;
use df_workloads::random::{random_frame, RandomFrameConfig};

fn sample_frame(session: &std::sync::Arc<Session>) -> PandasFrame {
    PandasFrame::from_dataframe(
        session,
        random_frame(&RandomFrameConfig {
            rows: 30,
            seed: 3,
            ..RandomFrameConfig::default()
        })
        .unwrap(),
    )
}

#[test]
fn table2_rewrites_build_the_claimed_algebra_operators() {
    let session = Session::modin();
    let frame = sample_frame(&session);
    for rewrite in table2_rewrites() {
        let RewriteKind::OneToOne { algebra_op } = rewrite.kind else {
            panic!("Table 2 rows are one-to-one");
        };
        let derived = match rewrite.pandas_op {
            "fillna" => frame.fillna(0),
            "isnull" => frame.isnull(),
            "transpose" => frame.transpose(),
            "set_index" => frame.set_index("cat_0"),
            "reset_index" => frame.reset_index("row_id"),
            other => panic!("unexpected Table 2 operator {other}"),
        };
        // The outermost operator of the built expression is exactly the algebra
        // operator Table 2 names (MAP, TRANSPOSE, TOLABELS, FROMLABELS).
        assert_eq!(
            derived.expr().name(),
            algebra_op,
            "pandas op {} should rewrite to {}",
            rewrite.pandas_op,
            algebra_op
        );
        // And it executes identically on every engine.
        let reference = ReferenceEngine.execute_collect(derived.expr()).unwrap();
        assert!(BaselineEngine::new()
            .execute_collect(derived.expr())
            .unwrap()
            .same_data(&reference));
        assert!(ModinEngine::new()
            .execute_collect(derived.expr())
            .unwrap()
            .same_data(&reference));
    }
}

#[test]
fn composite_rewrites_expand_into_multiple_operators() {
    let session = Session::modin();
    // pivot: GROUPBY + MAP (+ TOLABELS implied by keys_as_labels) and no transpose in
    // the direct plan; get_dummies: one MAP per encoded column over the base literal;
    // value_counts: GROUPBY + SORT.
    let sales = PandasFrame::from_dataframe(&session, df_workloads::figure5_narrow_table());
    let pivot = sales.pivot("Year", "Month", "Sales").unwrap();
    assert!(pivot.expr().operator_count() >= 2);
    assert_eq!(pivot.expr().name(), "MAP");
    let frame = sample_frame(&session);
    let dummies = frame.get_dummies(&["cat_0"]).unwrap();
    assert_eq!(dummies.expr().name(), "MAP");
    let counts = frame.value_counts("cat_0");
    assert_eq!(counts.expr().name(), "SORT");
    assert!(counts.expr().operator_count() >= 2);
}

#[test]
fn reindex_like_composition_from_the_paper_section_4_4() {
    // target.reindex_like(reference): FROMLABELS on both, JOIN on the label column,
    // project the target's columns, TOLABELS to restore the labels — and the result
    // rows follow the reference's order.
    let session = Session::modin();
    let target = PandasFrame::from_rows(
        &session,
        vec!["value"],
        vec![vec![cell(10)], vec![cell(20)], vec![cell(30)]],
    )
    .unwrap()
    .collect()
    .unwrap()
    .with_row_labels(vec!["a", "b", "c"])
    .unwrap();
    let reference_order = ["c", "a", "b"];
    let target = PandasFrame::from_dataframe(&session, target);
    let reference_frame = PandasFrame::from_rows(
        &session,
        vec!["other"],
        vec![vec![cell(1)], vec![cell(2)], vec![cell(3)]],
    )
    .unwrap()
    .collect()
    .unwrap()
    .with_row_labels(reference_order.to_vec())
    .unwrap();
    let reference_frame = PandasFrame::from_dataframe(&session, reference_frame);

    let reindexed = reference_frame
        .reset_index("key")
        .merge_on(
            &target.reset_index("key"),
            &["key"],
            df_core::algebra::JoinType::Left,
        )
        .select(&["key", "value"])
        .set_index("key")
        .collect()
        .unwrap();
    assert_eq!(reindexed.shape(), (3, 1));
    assert_eq!(
        reindexed.row_labels().display_strings(),
        vec!["c", "a", "b"]
    );
    assert_eq!(reindexed.cell(0, 0).unwrap(), &cell(30));
    assert_eq!(reindexed.cell(1, 0).unwrap(), &cell(10));
}

#[test]
fn table3_capability_matrix_matches_the_paper() {
    let modin = ModinEngine::new().capabilities();
    let baseline = BaselineEngine::new().capabilities();
    let relational = Capabilities::relational_like();

    // Modin and pandas rows: full dataframe feature set (Table 3, blue columns).
    for caps in [modin, baseline] {
        assert!(caps.ordered_model);
        assert!(caps.eager_execution);
        assert!(caps.row_col_equivalence);
        assert!(caps.lazy_schema);
        assert!(caps.relational_operators);
        assert!(caps.map && caps.window && caps.transpose);
        assert!(caps.to_labels && caps.from_labels);
    }
    // Modin additionally supports deferred execution; the baseline (pandas) does not.
    assert!(modin.lazy_execution);
    assert!(!baseline.lazy_execution);

    // Spark/Dask-like systems (red columns): no ordered model, no row/column
    // equivalence, no TRANSPOSE, no FROMLABELS.
    assert!(!relational.ordered_model);
    assert!(!relational.row_col_equivalence);
    assert!(!relational.transpose);
    assert!(!relational.from_labels);
    assert!(relational.relational_operators && relational.map && relational.window);

    // The capability probe rejects exactly the operators the matrix says are missing.
    let probe = AlgebraExpr::literal(
        random_frame(&RandomFrameConfig {
            rows: 4,
            ..RandomFrameConfig::default()
        })
        .unwrap(),
    );
    assert!(!relational.supports(&probe.clone().transpose()));
    assert!(!relational.supports(&probe.clone().from_labels("idx")));
    assert!(relational.supports(&probe.clone().map(MapFunc::IsNullMask)));
    assert!(modin.supports(&probe.transpose()));

    // The `lazy_execution` probe is backed by live behaviour, not a hard-coded
    // claim: a lazy MODIN session defers the whole statement chain to its
    // materialisation point and executes it as one plan.
    let lazy = Session::modin_with(
        df_engine::engine::ModinConfig::sequential(),
        df_engine::session::EvalMode::Lazy,
    );
    let deferred = sample_frame(&lazy).isnull().fillna(false);
    assert_eq!(
        lazy.stats().executions,
        0,
        "a lazy session must not execute on submit"
    );
    deferred.collect().unwrap();
    assert_eq!(lazy.stats().executions, 1);
    assert!(lazy.query().engine().capabilities().lazy_execution);
}

#[test]
fn every_table1_operator_executes_on_every_engine() {
    // Table 1 conformance at the integration level: one expression per operator, all
    // three engines, identical results.
    let df = random_frame(&RandomFrameConfig {
        rows: 25,
        seed: 11,
        ..RandomFrameConfig::default()
    })
    .unwrap();
    let other = random_frame(&RandomFrameConfig {
        rows: 10,
        seed: 12,
        ..RandomFrameConfig::default()
    })
    .unwrap();
    let base = AlgebraExpr::literal(df);
    let other = AlgebraExpr::literal(other);
    let expressions: Vec<AlgebraExpr> = vec![
        base.clone().select(df_core::algebra::Predicate::NotNull {
            column: cell("int_0"),
        }),
        base.clone()
            .project(df_core::algebra::ColumnSelector::ByLabels(vec![cell(
                "float_0",
            )])),
        base.clone().union(other.clone()),
        base.clone().difference(other.clone()),
        base.clone()
            .limit(5, false)
            .cross(other.clone().limit(3, false)),
        base.clone().join(
            other.clone(),
            df_core::algebra::JoinOn::Columns(vec![cell("cat_0")]),
            df_core::algebra::JoinType::Inner,
        ),
        base.clone().drop_duplicates(),
        base.clone().group_by(
            vec![cell("cat_0")],
            vec![df_core::algebra::Aggregation::count_rows()],
            false,
        ),
        base.clone()
            .sort(df_core::algebra::SortSpec::ascending(vec![cell("int_0")])),
        base.clone().rename(vec![(cell("int_0"), cell("renamed"))]),
        base.clone().window(
            df_core::algebra::ColumnSelector::ByLabels(vec![cell("float_0")]),
            df_core::algebra::WindowFunc::CumSum,
        ),
        base.clone().transpose(),
        base.clone().map(MapFunc::IsNullMask),
        base.clone().to_labels("cat_0"),
        base.from_labels("rank"),
    ];
    assert_eq!(
        expressions.len(),
        15,
        "14 operators + LIMIT helper via cross"
    );
    for expr in expressions {
        let reference = ReferenceEngine.execute_collect(&expr).unwrap();
        assert!(BaselineEngine::new()
            .execute_collect(&expr)
            .unwrap()
            .same_data(&reference));
        assert!(ModinEngine::new()
            .execute_collect(&expr)
            .unwrap()
            .same_data(&reference));
        // Every Cell in the result renders (guards against panics in Display paths).
        let _ = reference.display_with(3);
    }
}
