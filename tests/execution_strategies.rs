//! Keeps the README's "Execution strategies" table honest: parse the table, execute
//! one expression per algebra operator on the scalable engine, and classify the
//! observed dispatch from the engine's counters (shuffles, fallbacks, deferred
//! transposes). A README row that disagrees with the engine fails here.

use std::collections::BTreeMap;

use df_core::algebra::{
    AggFunc, Aggregation, AlgebraExpr, CmpOp, ColumnSelector, JoinOn, JoinType, MapFunc, Predicate,
    SortSpec, WindowFunc,
};
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_types::cell::{cell, Cell};

fn readme_strategies() -> BTreeMap<String, String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/README.md");
    let readme = std::fs::read_to_string(path).expect("README.md is readable");
    let mut rows = BTreeMap::new();
    let mut in_table = false;
    for line in readme.lines() {
        let line = line.trim();
        if line.starts_with("| Operator |") {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        if !line.starts_with('|') {
            if !rows.is_empty() {
                break;
            }
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() == 2 && !cells[0].starts_with("---") {
            rows.insert(cells[0].to_string(), cells[1].to_string());
        }
    }
    rows
}

fn sample_frame(rows: usize) -> DataFrame {
    let vendor: Vec<Cell> = (0..rows)
        .map(|i| cell(if i % 2 == 0 { "CMT" } else { "VTS" }))
        .collect();
    let fare: Vec<Cell> = (0..rows).map(|i| cell(5.0 + (i % 20) as f64)).collect();
    let count: Vec<Cell> = (0..rows).map(|i| cell((i % 4) as i64)).collect();
    DataFrame::from_columns(vec!["vendor", "fare", "count"], vec![vendor, fare, count]).unwrap()
}

/// One representative expression per algebra operator (plus LIMIT).
fn operator_expressions() -> Vec<(&'static str, AlgebraExpr)> {
    let base = || AlgebraExpr::literal(sample_frame(64));
    let other = || AlgebraExpr::literal(sample_frame(24));
    vec![
        (
            "SELECTION",
            base().select(Predicate::ColCmp {
                column: cell("fare"),
                op: CmpOp::Gt,
                value: cell(10.0),
            }),
        ),
        (
            "PROJECTION",
            base().project(ColumnSelector::ByLabels(vec![cell("fare")])),
        ),
        ("UNION", base().union(other())),
        ("DIFFERENCE", base().difference(other())),
        (
            "CROSS_PRODUCT",
            base().limit(4, false).cross(other().limit(4, false)),
        ),
        (
            "JOIN",
            base().join(
                other(),
                JoinOn::Columns(vec![cell("vendor")]),
                JoinType::Inner,
            ),
        ),
        ("DROP_DUPLICATES", base().drop_duplicates()),
        (
            "GROUPBY",
            base().group_by(
                vec![cell("vendor")],
                vec![
                    Aggregation::count_rows(),
                    Aggregation::of("fare", AggFunc::Mean).with_alias("mean_fare"),
                ],
                false,
            ),
        ),
        ("SORT", base().sort(SortSpec::ascending(vec![cell("fare")]))),
        (
            "RENAME",
            base().rename(vec![(cell("vendor"), cell("vendor_id"))]),
        ),
        (
            "WINDOW",
            base().window(
                ColumnSelector::ByLabels(vec![cell("fare")]),
                WindowFunc::CumSum,
            ),
        ),
        ("TRANSPOSE", base().transpose()),
        ("MAP", base().map(MapFunc::IsNullMask)),
        ("TOLABELS", base().to_labels("vendor")),
        ("FROMLABELS", base().from_labels("row_id")),
        ("LIMIT", base().limit(7, false)),
    ]
}

#[test]
fn readme_table_matches_observed_dispatch() {
    let documented = readme_strategies();
    assert!(
        documented.len() >= 16,
        "README execution-strategies table not found or incomplete: {documented:?}"
    );
    for (name, expr) in operator_expressions() {
        let engine = ModinEngine::with_config(ModinConfig::sequential().with_partition_size(16, 2));
        let grid = engine.execute_partitioned(&expr).unwrap();
        let observed = if engine.fallbacks_dispatched() > 0 {
            "reference-fallback"
        } else if name == "TRANSPOSE" && grid.deferred_transposes() > 0 {
            "metadata-only"
        } else {
            "partition-parallel"
        };
        let expected = documented
            .get(name)
            .unwrap_or_else(|| panic!("operator {name} missing from the README table"));
        assert_eq!(
            expected,
            observed,
            "README documents {name} as {expected:?} but the engine dispatched it as \
             {observed:?} (shuffles={}, fallbacks={})",
            engine.shuffles_dispatched(),
            engine.fallbacks_dispatched()
        );
    }
}

#[test]
fn documented_fallback_edge_cases_do_fall_back() {
    // Non-stable SORT mirrors the reference's sort_unstable tie order.
    let engine = ModinEngine::with_config(ModinConfig::sequential().with_partition_size(16, 2));
    engine
        .execute(&AlgebraExpr::literal(sample_frame(40)).sort(SortSpec {
            by: vec![cell("vendor")],
            ascending: vec![true],
            stable: false,
        }))
        .unwrap();
    assert_eq!(engine.fallbacks_dispatched(), 1);

    // GROUPBY with a non-mergeable aggregate assembles.
    let engine = ModinEngine::with_config(ModinConfig::sequential().with_partition_size(16, 2));
    engine
        .execute(&AlgebraExpr::literal(sample_frame(40)).group_by(
            vec![cell("vendor")],
            vec![Aggregation::of("fare", AggFunc::Std).with_alias("std")],
            false,
        ))
        .unwrap();
    assert_eq!(engine.fallbacks_dispatched(), 1);
}
