//! Property-based tests of the algebraic laws the paper's data model implies:
//! transpose involution, TOLABELS/FROMLABELS round trips, order preservation of the
//! ordered set operators, selection monotonicity, sort stability and schema-induction
//! idempotence.

use proptest::prelude::*;

use df_core::algebra::{AlgebraExpr, CmpOp, MapFunc, Predicate, SortSpec};
use df_core::engine::{Engine, ReferenceEngine};
use df_core::ops;
use df_types::cell::{cell, Cell};
use df_workloads::random::{random_frame, RandomFrameConfig};

fn frame(rows: usize, seed: u64, null_fraction: f64) -> df_core::dataframe::DataFrame {
    random_frame(&RandomFrameConfig {
        rows,
        null_fraction,
        seed,
        ..RandomFrameConfig::default()
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transpose_is_an_involution(rows in 0usize..60, seed in 0u64..5_000) {
        let df = frame(rows, seed, 0.1);
        let round_trip = ops::reshape::transpose(&ops::reshape::transpose(&df).unwrap()).unwrap();
        prop_assert!(round_trip.same_data(&df));
    }

    #[test]
    fn transpose_swaps_shape_and_labels(rows in 0usize..60, seed in 0u64..5_000) {
        let df = frame(rows, seed, 0.1);
        let transposed = ops::reshape::transpose(&df).unwrap();
        prop_assert_eq!(transposed.shape(), (df.n_cols(), df.n_rows()));
        prop_assert_eq!(transposed.row_labels(), df.col_labels());
        prop_assert_eq!(transposed.col_labels(), df.row_labels());
    }

    #[test]
    fn tolabels_then_fromlabels_round_trips(rows in 1usize..60, seed in 0u64..5_000) {
        // Use a null-free frame: labels may be null in general, but the round trip is
        // only exact when the promoted column itself is preserved verbatim.
        let df = frame(rows, seed, 0.0);
        let promoted = ops::reshape::to_labels(&df, &cell("int_0")).unwrap();
        prop_assert_eq!(promoted.n_cols(), df.n_cols() - 1);
        let restored = ops::reshape::from_labels(&promoted, &cell("int_0")).unwrap();
        prop_assert!(restored.same_data(&df));
    }

    #[test]
    fn union_is_ordered_concatenation(rows_a in 0usize..40, rows_b in 0usize..40, seed in 0u64..5_000) {
        let a = frame(rows_a, seed, 0.1);
        let b = frame(rows_b, seed.wrapping_add(1), 0.1);
        let union = ops::setops::union(&a, &b).unwrap();
        prop_assert_eq!(union.n_rows(), a.n_rows() + b.n_rows());
        if a.n_rows() > 0 {
            prop_assert!(union.head(a.n_rows()).same_data(&a.clone().with_row_labels(
                union.head(a.n_rows()).row_labels().clone()).unwrap()));
        }
        // The left prefix is bit-identical including labels.
        prop_assert!(union.slice_rows(0, a.n_rows()).same_data(&a));
    }

    #[test]
    fn selection_returns_a_subsequence(rows in 0usize..80, seed in 0u64..5_000, threshold in -50i64..50) {
        let df = frame(rows, seed, 0.2);
        let selected = ops::rowwise::selection(
            &df,
            &Predicate::ColCmp {
                column: cell("int_0"),
                op: CmpOp::Gt,
                value: Cell::Int(threshold),
            },
        )
        .unwrap();
        prop_assert!(selected.n_rows() <= df.n_rows());
        // Every selected row label appears in the original, in the same relative order.
        let original: Vec<_> = df.row_labels().as_slice().to_vec();
        let mut cursor = 0usize;
        for label in selected.row_labels().as_slice() {
            let position = original[cursor..]
                .iter()
                .position(|l| l == label)
                .expect("selected label must come from the input, in order");
            cursor += position + 1;
        }
        // And selection is idempotent under the same predicate.
        let twice = ops::rowwise::selection(
            &selected,
            &Predicate::ColCmp {
                column: cell("int_0"),
                op: CmpOp::Gt,
                value: Cell::Int(threshold),
            },
        )
        .unwrap();
        prop_assert!(twice.same_data(&selected));
    }

    #[test]
    fn sort_produces_ordered_permutation(rows in 0usize..80, seed in 0u64..5_000) {
        let df = frame(rows, seed, 0.1);
        let sorted = ops::group::sort(&df, &SortSpec::ascending(vec![cell("float_0")])).unwrap();
        prop_assert_eq!(sorted.shape(), df.shape());
        let j = sorted.col_position(&cell("float_0")).unwrap();
        let cells = sorted.columns()[j].cells();
        for window in cells.windows(2) {
            prop_assert!(window[0].total_cmp(&window[1]) != std::cmp::Ordering::Greater);
        }
        // Sorting is a permutation: the multiset of row labels is preserved.
        let mut original: Vec<String> = df.row_labels().display_strings();
        let mut permuted: Vec<String> = sorted.row_labels().display_strings();
        original.sort();
        permuted.sort();
        prop_assert_eq!(original, permuted);
    }

    #[test]
    fn dedup_is_idempotent_and_shrinking(rows in 0usize..60, seed in 0u64..5_000) {
        let df = frame(rows, seed, 0.3);
        let once = ops::group::drop_duplicates(&df).unwrap();
        let twice = ops::group::drop_duplicates(&once).unwrap();
        prop_assert!(once.n_rows() <= df.n_rows());
        prop_assert!(twice.same_data(&once));
    }

    #[test]
    fn fillna_leaves_no_nulls_and_isnull_after_it_is_all_false(rows in 0usize..60, seed in 0u64..5_000) {
        let df = frame(rows, seed, 0.5);
        let filled = ops::rowwise::map(&df, &MapFunc::FillNull(cell(0))).unwrap();
        let nulls: usize = filled
            .columns()
            .iter()
            .map(|c| c.len() - c.count_non_null())
            .sum();
        prop_assert_eq!(nulls, 0);
        let mask = ops::rowwise::map(&filled, &MapFunc::IsNullMask).unwrap();
        prop_assert!(mask
            .columns()
            .iter()
            .flat_map(|c| c.cells())
            .all(|c| c == &cell(false)));
    }

    #[test]
    fn limit_is_a_prefix_of_the_full_result(rows in 0usize..80, seed in 0u64..5_000, k in 0usize..30) {
        let df = frame(rows, seed, 0.1);
        let expr = AlgebraExpr::literal(df.clone()).map(MapFunc::IsNullMask);
        let full = ReferenceEngine.execute_collect(&expr).unwrap();
        let limited = ReferenceEngine.execute_collect(&expr.limit(k, false)).unwrap();
        prop_assert!(limited.same_data(&full.head(k)));
    }

    #[test]
    fn schema_induction_is_idempotent(rows in 0usize..60, seed in 0u64..5_000) {
        let mut df = frame(rows, seed, 0.2);
        let first = df.resolve_schema();
        let second = df.resolve_schema();
        prop_assert_eq!(first, second);
    }
}

#[test]
fn double_transpose_optimisation_preserves_observable_results() {
    // The optimizer's transpose cancellation plus the engine's metadata transpose must
    // be invisible to the user: same data, same labels, and after induction the same
    // schema (the paper's "Python can recover the original D_n after two transposes").
    let df = frame(40, 7, 0.1);
    let expr = AlgebraExpr::literal(df.clone()).transpose().transpose();
    let engine = df_engine::engine::ModinEngine::with_config(
        df_engine::engine::ModinConfig::sequential().with_partition_size(8, 2),
    );
    let mut out = engine.execute_collect(&expr).unwrap();
    assert!(out.same_data(&df));
    let expected = &df;
    assert_eq!(out.resolve_schema(), expected.clone().resolve_schema());
}
