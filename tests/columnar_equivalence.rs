//! Columnar differential suite: the typed column-block layout must be invisible.
//!
//! The PR that introduced `ColumnData`/`ColumnBlock` rewired predicate evaluation,
//! groupby accumulation, sort comparison, shuffle hashing, spill encoding and ingest
//! check-in around typed buffers — all behind the global layout switch
//! (`df_types::set_columnar_enabled`). This suite pins the narrow-waist contract:
//! **every Table 1 operator produces cell-for-cell identical results with the
//! column-block layout on and off**, across thread counts {1, 4} and memory budgets
//! {unlimited, working-set/4}, on randomly generated mixed-type frames. Separately,
//! the spill codec must read back both its own typed v3 files and the legacy
//! row-oriented v2 files bit-exactly.
//!
//! The layout switch is process-global, so every arm that flips it holds one mutex
//! for the whole compare — tests in this binary serialise around it.

use std::sync::Mutex;

use proptest::prelude::*;

use df_core::algebra::{
    AggFunc, Aggregation, AlgebraExpr, CmpOp, ColumnSelector, JoinOn, JoinType, MapFunc, Predicate,
    SortSpec, WindowFunc,
};
use df_core::columnar::ColumnBlock;
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_storage::spill::{read_spill_part, write_spill_block_v3, write_spill_frame_v2, StoredPart};
use df_types::cell::cell;
use df_types::column::set_columnar_enabled;
use df_workloads::random::{random_frame, RandomFrameConfig};

/// Serialises access to the process-global layout switch.
static SWITCH: Mutex<()> = Mutex::new(());

/// Run `f` with the layout switch pinned to `columnar`, restoring the default (on)
/// afterwards. Poisoning is ignored: a failed arm must not wedge the other tests.
fn with_layout<T>(columnar: bool, f: impl FnOnce() -> T) -> T {
    let _guard = SWITCH
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    set_columnar_enabled(columnar);
    let out = f();
    set_columnar_enabled(true);
    out
}

/// Every Table 1 operator, each as one pipeline over the same base literal.
fn table1_suite(base: &DataFrame, other: &DataFrame) -> Vec<(&'static str, AlgebraExpr)> {
    let lit = || AlgebraExpr::literal(base.clone());
    let rhs = || AlgebraExpr::literal(other.clone());
    vec![
        (
            "SELECTION",
            lit().select(Predicate::ColCmp {
                column: cell("int_0"),
                op: CmpOp::Gt,
                value: cell(0),
            }),
        ),
        (
            "PROJECTION",
            lit().project(ColumnSelector::ByLabels(vec![cell("int_0"), cell("cat_0")])),
        ),
        ("UNION", lit().union(lit().limit(23, false))),
        ("DIFFERENCE", lit().difference(lit().limit(31, false))),
        (
            "JOIN",
            lit().join(rhs(), JoinOn::Columns(vec![cell("int_0")]), JoinType::Outer),
        ),
        ("DROP_DUPLICATES", lit().union(lit()).drop_duplicates()),
        (
            "GROUPBY",
            lit().group_by(
                vec![cell("cat_0")],
                vec![
                    Aggregation::count_rows(),
                    Aggregation::of("int_0", AggFunc::Sum).with_alias("i_sum"),
                    Aggregation::of("float_0", AggFunc::Mean).with_alias("f_mean"),
                    Aggregation::of("float_0", AggFunc::Min).with_alias("f_min"),
                    Aggregation::of("int_0", AggFunc::Max).with_alias("i_max"),
                ],
                false,
            ),
        ),
        (
            "SORT",
            lit().sort(SortSpec::ascending(vec![cell("cat_0"), cell("float_0")])),
        ),
        (
            "RENAME",
            lit().rename(vec![(cell("int_0"), cell("renamed"))]),
        ),
        ("MAP", lit().map(MapFunc::FillNull(cell(-1)))),
        (
            "WINDOW",
            lit().window(
                ColumnSelector::ByLabels(vec![cell("int_0")]),
                WindowFunc::CumSum,
            ),
        ),
        ("TRANSPOSE", lit().transpose().map(MapFunc::IsNullMask)),
        (
            "TO/FROM_LABELS",
            lit().to_labels("cat_0").from_labels("cat_back"),
        ),
        ("LIMIT", lit().limit(17, true)),
    ]
}

fn config(threads: usize, budget: Option<usize>) -> ModinConfig {
    let config = ModinConfig::default()
        .with_threads(threads)
        .with_partition_size(24, 4)
        // Force the full shuffle machinery for the binary operators.
        .with_broadcast_threshold(0);
    match budget {
        Some(bytes) => config.with_memory_budget(bytes),
        None => config,
    }
}

/// Execute `expr` under both layouts with the same engine configuration and return
/// the two results.
fn both_layouts(
    expr: &AlgebraExpr,
    threads: usize,
    budget: Option<usize>,
) -> (DataFrame, DataFrame) {
    let row = with_layout(false, || {
        ModinEngine::with_config(config(threads, budget))
            .execute_collect(expr)
            .expect("row-block arm failed")
    });
    let col = with_layout(true, || {
        ModinEngine::with_config(config(threads, budget))
            .execute_collect(expr)
            .expect("column-block arm failed")
    });
    (row, col)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The headline differential: random frames, every Table 1 operator, both
    // layouts, threads {1, 4} × budgets {unlimited, working-set/4}.
    #[test]
    fn table1_operators_are_layout_invariant(
        rows in 40usize..140,
        seed in 0u64..10_000,
        null_fraction in 0.0f64..0.35,
    ) {
        let base = random_frame(&RandomFrameConfig {
            rows,
            int_cols: 2,
            float_cols: 2,
            category_cols: 1,
            null_fraction,
            seed,
        }).unwrap();
        let other = random_frame(&RandomFrameConfig {
            rows: rows / 2,
            int_cols: 2,
            float_cols: 1,
            category_cols: 1,
            null_fraction,
            seed: seed.wrapping_add(1),
        }).unwrap();
        let budget = base.approx_size_bytes() / 4;
        for threads in [1usize, 4] {
            for budget in [None, Some(budget)] {
                for (name, expr) in table1_suite(&base, &other) {
                    let (row, col) = both_layouts(&expr, threads, budget);
                    prop_assert!(
                        row.same_data(&col),
                        "{name} diverged between layouts (threads={threads}, budget={budget:?}, \
                         rows={rows}, seed={seed})"
                    );
                }
            }
        }
    }

    // Spill format v3 round-trip: a typed block written as v3 reads back into an
    // identical frame, on arbitrary mixed frames (including all-null columns).
    #[test]
    fn spill_v3_round_trips_random_frames(
        rows in 0usize..80,
        seed in 0u64..10_000,
        null_fraction in 0.0f64..1.0,
    ) {
        let frame = random_frame(&RandomFrameConfig {
            rows,
            int_cols: 2,
            float_cols: 2,
            category_cols: 1,
            null_fraction,
            seed,
        }).unwrap();
        let block = ColumnBlock::from_frame(&frame);
        let dir = std::env::temp_dir().join(format!(
            "columnar_equiv_v3_{}_{seed}_{rows}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("block.spill");
        write_spill_block_v3(&block, &path).unwrap();
        let back = match read_spill_part(&path).unwrap() {
            StoredPart::Block(block) => block,
            StoredPart::Frame(_) => panic!("v3 file decoded as a v2 frame"),
        };
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(back.to_frame().same_data(&frame), "v3 round trip diverged");
        prop_assert_eq!(back.domains(), block.domains());
    }

    // Legacy compatibility: files written by the pre-columnar v2 codec still read
    // back bit-exactly through the dispatching reader.
    #[test]
    fn spill_v2_files_still_read_back(
        rows in 0usize..80,
        seed in 0u64..10_000,
        null_fraction in 0.0f64..0.6,
    ) {
        let frame = random_frame(&RandomFrameConfig {
            rows,
            int_cols: 1,
            float_cols: 1,
            category_cols: 1,
            null_fraction,
            seed,
        }).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "columnar_equiv_v2_{}_{seed}_{rows}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame.spill");
        write_spill_frame_v2(&frame, &path).unwrap();
        let back = match read_spill_part(&path).unwrap() {
            StoredPart::Frame(frame) => frame,
            StoredPart::Block(_) => panic!("v2 file decoded as a v3 block"),
        };
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(back.same_data(&frame), "v2 read-back diverged");
    }
}

/// v2 → v3 upgrade path: the same logical frame spilled under either layout decodes
/// to the same data, so a store can mix file versions freely.
#[test]
fn spill_v2_to_v3_upgrade_is_lossless() {
    let frame = random_frame(&RandomFrameConfig {
        rows: 64,
        int_cols: 2,
        float_cols: 2,
        category_cols: 1,
        null_fraction: 0.2,
        seed: 7,
    })
    .unwrap();
    let dir = std::env::temp_dir().join(format!("columnar_equiv_upgrade_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v2_path = dir.join("frame.v2");
    let v3_path = dir.join("frame.v3");
    write_spill_frame_v2(&frame, &v2_path).unwrap();
    write_spill_block_v3(&ColumnBlock::from_frame(&frame), &v3_path).unwrap();
    let from_v2 = read_spill_part(&v2_path).unwrap().to_frame();
    let from_v3 = read_spill_part(&v3_path).unwrap().to_frame();
    std::fs::remove_dir_all(&dir).ok();
    assert!(from_v2.same_data(&frame));
    assert!(from_v3.same_data(&frame));
    assert!(from_v2.same_data(&from_v3), "v2 and v3 decodes diverged");
}
