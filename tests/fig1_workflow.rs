//! Integration test: the end-to-end Figure 1 workflow (R1, C1–C4, A1–A3) must run on
//! every engine and produce identical results — the "unmodified pandas code runs on
//! MODIN" requirement of paper §3.

use std::sync::Arc;

use df_core::algebra::JoinType;
use df_core::dataframe::DataFrame;
use df_pandas::{PandasFrame, Session};
use df_types::cell::{cell, Cell};

fn raw_products(session: &Arc<Session>) -> PandasFrame {
    let df = DataFrame::from_rows(
        vec!["iPhone 11", "iPhone 11 Pro", "iPhone SE"],
        vec![
            vec![cell("6.1-inch"), cell("5.8-inch"), cell("4.7-inch")],
            vec![cell("12MP"), cell("120MP"), cell("7MP")],
            vec![cell("Yes"), cell("Yes"), cell("No")],
        ],
    )
    .unwrap()
    .with_row_labels(vec!["Display", "Front Camera", "Wireless Charging"])
    .unwrap();
    PandasFrame::from_dataframe(session, df)
}

fn prices(session: &Arc<Session>) -> PandasFrame {
    PandasFrame::from_rows(
        session,
        vec!["product", "price", "rating"],
        vec![
            vec![cell("iPhone 11"), cell(699.0), cell(4.6)],
            vec![cell("iPhone 11 Pro"), cell(999.0), cell(4.8)],
            vec![cell("iPhone SE"), cell(399.0), cell(4.5)],
        ],
    )
    .unwrap()
    .set_index("product")
}

fn run_workflow(session: &Arc<Session>) -> (DataFrame, DataFrame) {
    // C1: fix the anomalous 120MP front camera.
    let products = raw_products(session).iloc_set(1, 1, "12MP").unwrap();
    // C2: transpose so products are rows.
    let products = products.t();
    // C3: Wireless Charging Yes/No -> 1/0.
    let products = products
        .map_column("Wireless Charging", "binary", |c| match c.as_str() {
            Some("Yes") => cell(1),
            Some("No") => cell(0),
            _ => Cell::Null,
        })
        .unwrap();
    // A1: one-hot encode the remaining categorical features.
    let one_hot = products.get_dummies(&["Display", "Front Camera"]).unwrap();
    // A2: join with prices on the row labels (product names).
    let joined = prices(session).merge_index(&one_hot, JoinType::Inner);
    // A3: covariance over the numeric frame.
    let cov = joined.cov().unwrap();
    (joined.collect().unwrap(), cov)
}

#[test]
fn figure1_workflow_runs_identically_on_modin_and_baseline() {
    let (modin_joined, modin_cov) = run_workflow(&Session::modin());
    let (baseline_joined, baseline_cov) = run_workflow(&Session::baseline());
    let (reference_joined, reference_cov) = run_workflow(&Session::reference());
    assert!(modin_joined.same_data(&baseline_joined));
    assert!(modin_joined.same_data(&reference_joined));
    assert!(modin_cov.same_data(&baseline_cov));
    assert!(modin_cov.same_data(&reference_cov));
}

#[test]
fn figure1_workflow_produces_expected_values() {
    let (joined, cov) = run_workflow(&Session::modin());
    // 3 products x (price, rating, wireless, 3 display categories, 2 camera categories
    // — the 120MP anomaly was fixed in C1, so only 12MP and 7MP remain).
    assert_eq!(joined.shape(), (3, 8));
    assert_eq!(joined.row_labels().as_slice()[0], cell("iPhone 11"));
    // Wireless charging became 1/0.
    let wireless_col = joined.col_position(&cell("Wireless Charging")).unwrap();
    assert_eq!(joined.cell(0, wireless_col).unwrap(), &cell(1));
    assert_eq!(joined.cell(2, wireless_col).unwrap(), &cell(0));
    // The fixed point update survived the pipeline: no 120MP category exists.
    assert!(joined.col_position(&cell("Front Camera_120MP")).is_err());
    assert!(joined.col_position(&cell("Front Camera_12MP")).is_ok());
    // The covariance matrix is square over the numeric columns and symmetric.
    assert_eq!(cov.n_rows(), cov.n_cols());
    for i in 0..cov.n_rows() {
        for j in 0..cov.n_cols() {
            let a = cov.cell(i, j).unwrap().as_f64();
            let b = cov.cell(j, i).unwrap().as_f64();
            match (a, b) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                _ => panic!("asymmetric covariance at ({i}, {j})"),
            }
        }
    }
    // Price and rating move together in this toy data: positive covariance.
    let price_rating = cov.cell(0, 1).unwrap().as_f64().unwrap();
    assert!(price_rating > 0.0);
}

#[test]
fn intermediate_inspection_matches_full_result_prefixes() {
    // §6.1.2: the head() the analyst inspects must agree with the prefix of the full
    // materialised result, even though the engine may compute it differently.
    let session = Session::modin();
    let products = raw_products(&session).t();
    let head = products.head(2).unwrap();
    let full = products.collect().unwrap();
    assert!(head.same_data(&full.head(2)));
    let tail = products.tail(1).unwrap();
    assert!(tail.same_data(&full.tail(1)));
}
