//! Differential testing: the pandas-like baseline and the MODIN-like engine must agree
//! with the reference executor cell-for-cell on randomly generated frames and
//! pipelines. This is the workspace's core correctness argument: the scalable engine
//! may partition, parallelise, defer and rewrite however it likes, but the visible
//! semantics are pinned by `df-core::ops`.

use proptest::prelude::*;

use df_baseline::BaselineEngine;
use df_core::algebra::{
    AggFunc, Aggregation, AlgebraExpr, CmpOp, ColumnSelector, MapFunc, Predicate, SortSpec,
    WindowFunc,
};
use df_core::engine::{Engine, ReferenceEngine};
use df_engine::engine::{ModinConfig, ModinEngine};
use df_types::cell::cell;
use df_workloads::random::{random_frame, RandomFrameConfig};

/// The pipelines exercised by the differential test, parameterised by a small integer.
fn pipeline(choice: u8, base: AlgebraExpr) -> AlgebraExpr {
    match choice % 8 {
        0 => base.map(MapFunc::IsNullMask),
        1 => base.select(Predicate::ColCmp {
            column: cell("int_0"),
            op: CmpOp::Gt,
            value: cell(0),
        }),
        2 => base.group_by(
            vec![cell("cat_0")],
            vec![
                Aggregation::count_rows(),
                Aggregation::of("float_0", AggFunc::Sum).with_alias("sum"),
                Aggregation::of("float_0", AggFunc::Mean).with_alias("mean"),
            ],
            false,
        ),
        3 => base.transpose().map(MapFunc::FillNull(cell(0))),
        4 => base.sort(SortSpec::ascending(vec![cell("int_0"), cell("float_0")])),
        5 => base
            .clone()
            .select(Predicate::NotNull {
                column: cell("int_0"),
            })
            .window(
                ColumnSelector::ByLabels(vec![cell("int_0")]),
                WindowFunc::CumSum,
            ),
        6 => base
            .to_labels("cat_0")
            .from_labels("cat_0_restored")
            .drop_duplicates(),
        _ => base.map(MapFunc::FillNull(cell(1))).limit(7, false),
    }
}

fn engines() -> (BaselineEngine, ModinEngine, ModinEngine) {
    (
        BaselineEngine::new(),
        ModinEngine::with_config(ModinConfig::sequential().with_partition_size(16, 3)),
        ModinEngine::with_config(
            ModinConfig::default()
                .with_threads(3)
                .with_partition_size(16, 3),
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_pipelines(
        rows in 0usize..120,
        seed in 0u64..10_000,
        null_fraction in 0.0f64..0.4,
        choice in 0u8..8,
    ) {
        let frame = random_frame(&RandomFrameConfig {
            rows,
            int_cols: 2,
            float_cols: 2,
            category_cols: 1,
            null_fraction,
            seed,
        })
        .unwrap();
        let expr = pipeline(choice, AlgebraExpr::literal(frame));
        let reference = ReferenceEngine.execute_collect(&expr).unwrap();
        let (baseline, modin_seq, modin_par) = engines();
        let baseline_result = baseline.execute_collect(&expr).unwrap();
        let modin_seq_result = modin_seq.execute_collect(&expr).unwrap();
        let modin_par_result = modin_par.execute_collect(&expr).unwrap();
        // Float aggregates may be re-associated across partitions, so the comparison
        // allows a tiny relative tolerance on numeric cells.
        prop_assert!(baseline_result.approx_same_data(&reference, 1e-9),
            "baseline disagrees with reference for pipeline {choice}");
        prop_assert!(modin_seq_result.approx_same_data(&reference, 1e-9),
            "sequential modin disagrees with reference for pipeline {choice}");
        prop_assert!(modin_par_result.approx_same_data(&reference, 1e-9),
            "parallel modin disagrees with reference for pipeline {choice}");
    }

    #[test]
    fn prefix_execution_agrees_with_full_execution(
        rows in 1usize..150,
        seed in 0u64..10_000,
        k in 1usize..20,
    ) {
        let frame = random_frame(&RandomFrameConfig {
            rows,
            seed,
            ..RandomFrameConfig::default()
        })
        .unwrap();
        let expr = AlgebraExpr::literal(frame).map(MapFunc::IsNullMask);
        let engine = ModinEngine::with_config(ModinConfig::sequential().with_partition_size(16, 3));
        let full = engine.execute_collect(&expr).unwrap();
        let prefix = engine.execute_prefix(&expr, k).unwrap();
        let suffix = engine.execute_suffix(&expr, k).unwrap();
        prop_assert!(prefix.same_data(&full.head(k)));
        prop_assert!(suffix.same_data(&full.tail(k)));
    }
}

#[test]
fn engines_agree_on_joins_and_unions() {
    let left = random_frame(&RandomFrameConfig {
        rows: 40,
        seed: 1,
        ..RandomFrameConfig::default()
    })
    .unwrap();
    let right = random_frame(&RandomFrameConfig {
        rows: 25,
        seed: 2,
        ..RandomFrameConfig::default()
    })
    .unwrap();
    let (baseline, modin_seq, modin_par) = engines();
    for expr in [
        AlgebraExpr::literal(left.clone()).union(AlgebraExpr::literal(right.clone())),
        AlgebraExpr::literal(left.clone()).difference(AlgebraExpr::literal(right.clone())),
        AlgebraExpr::literal(left.clone()).join(
            AlgebraExpr::literal(right.clone()),
            df_core::algebra::JoinOn::Columns(vec![cell("cat_0")]),
            df_core::algebra::JoinType::Inner,
        ),
        AlgebraExpr::literal(left.head(6)).cross(AlgebraExpr::literal(right.head(4))),
    ] {
        let reference = ReferenceEngine.execute_collect(&expr).unwrap();
        assert!(baseline
            .execute_collect(&expr)
            .unwrap()
            .same_data(&reference));
        assert!(modin_seq
            .execute_collect(&expr)
            .unwrap()
            .same_data(&reference));
        assert!(modin_par
            .execute_collect(&expr)
            .unwrap()
            .same_data(&reference));
    }
}
