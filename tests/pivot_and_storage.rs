//! Integration tests for the pivot plans (Figures 5, 6 and 8), CSV ingest through the
//! full stack, and the out-of-core spill store feeding the engines.

use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::optimizer::PivotPlan;
use df_pandas::{PandasFrame, Session};
use df_storage::csv::{read_csv_str, write_csv_string, CsvOptions};
use df_storage::spill::SpillStore;
use df_types::cell::cell;
use df_workloads::sales::{
    figure5_narrow_table, figure5_wide_by_year, generate_sales, SalesConfig,
};

#[test]
fn figure5_pivot_matches_the_paper_table_on_every_engine() {
    for session in [Session::modin(), Session::baseline(), Session::reference()] {
        let narrow = PandasFrame::from_dataframe(&session, figure5_narrow_table());
        let wide = narrow
            .pivot("Year", "Month", "Sales")
            .unwrap()
            .collect()
            .unwrap();
        assert!(
            wide.same_data(&figure5_wide_by_year()),
            "engine {:?} produced\n{wide}",
            session.engine_kind()
        );
    }
}

#[test]
fn figure8_plans_agree_on_generated_sales_data() {
    let sales = generate_sales(&SalesConfig {
        years: 30,
        months: 12,
        seed: 4,
    })
    .unwrap();
    let session = Session::modin();
    let frame = PandasFrame::from_dataframe(&session, sales);
    let direct = frame
        .pivot_with_plan("Year", "Month", "Sales", PivotPlan::Direct)
        .unwrap()
        .collect()
        .unwrap();
    let alternative = frame
        .pivot_with_plan(
            "Year",
            "Month",
            "Sales",
            PivotPlan::PivotOtherAxisThenTranspose,
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(direct.shape(), (30, 12));
    assert!(direct.same_data(&alternative));
    // Every (year, month) pair exists in the generated data, so no nulls appear.
    assert!(direct
        .columns()
        .iter()
        .all(|c| c.count_non_null() == c.len()));
}

#[test]
fn unpivot_round_trip_restores_the_narrow_table_contents() {
    // Pivot then melt back (via FROMLABELS + per-row expansion) and compare the
    // multiset of (Year, Month, Sales) triples with the original narrow table.
    let session = Session::modin();
    let narrow = figure5_narrow_table();
    let frame = PandasFrame::from_dataframe(&session, narrow.clone());
    let wide = frame
        .pivot("Year", "Month", "Sales")
        .unwrap()
        .collect()
        .unwrap();
    let mut triples: Vec<(String, String, String)> = Vec::new();
    for (i, year) in wide.row_labels().as_slice().iter().enumerate() {
        for (j, month) in wide.col_labels().as_slice().iter().enumerate() {
            let value = wide.cell(i, j).unwrap();
            if !value.is_null() {
                triples.push((
                    year.to_raw_string(),
                    month.to_raw_string(),
                    value.to_raw_string(),
                ));
            }
        }
    }
    let mut expected: Vec<(String, String, String)> = (0..narrow.n_rows())
        .map(|i| {
            (
                narrow.cell(i, 0).unwrap().to_raw_string(),
                narrow.cell(i, 1).unwrap().to_raw_string(),
                narrow.cell(i, 2).unwrap().to_raw_string(),
            )
        })
        .collect();
    triples.sort();
    expected.sort();
    assert_eq!(triples, expected);
}

#[test]
fn csv_ingest_through_the_api_defers_typing_until_needed() {
    let csv = "passenger_count,fare\n1,10.5\n2,20.0\n,5.0\n1,7.5\n";
    let session = Session::modin();
    let trips = PandasFrame::read_csv_str(&session, csv, &CsvOptions::default()).unwrap();
    // Raw ingest: no schema yet.
    assert_eq!(trips.collect().unwrap().schema(), vec![None, None]);
    // Queries still work on the raw representation.
    let by_count = trips.groupby_count(&["passenger_count"]).collect().unwrap();
    assert_eq!(by_count.shape(), (3, 2));
    // Explicit typing works when asked for.
    let typed = trips.infer_types();
    let dtypes = typed.dtypes().unwrap();
    assert_eq!(dtypes[0].1, df_types::domain::Domain::Int);
    assert_eq!(dtypes[1].1, df_types::domain::Domain::Float);
    assert_eq!(typed.sum("fare").unwrap(), cell(43.0));
    // Round trip back to CSV.
    let written = typed.to_csv_string().unwrap();
    let reread = read_csv_str(&written, &CsvOptions::default()).unwrap();
    assert_eq!(reread.shape(), (4, 2));
}

#[test]
fn spill_store_round_trips_engine_results() {
    // An engine result spilled to disk and loaded back must survive another round of
    // query processing (the storage layer of §3.3).
    let sales = generate_sales(&SalesConfig {
        years: 20,
        months: 6,
        seed: 9,
    })
    .unwrap();
    let engine = ModinEngine::with_config(ModinConfig::sequential().with_partition_size(16, 4));
    let grouped = engine
        .execute_collect(&df_core::algebra::AlgebraExpr::literal(sales).group_by(
            vec![cell("Year")],
            vec![df_core::algebra::Aggregation::of(
                    "Sales",
                    df_core::algebra::AggFunc::Sum,
                )
                .with_alias("total")],
            false,
        ))
        .unwrap();
    let store = SpillStore::new(1).unwrap(); // spill everything immediately
    let id = store.put(grouped.clone()).unwrap();
    let restored = store.get(id).unwrap();
    assert_eq!(restored.shape(), grouped.shape());
    // Continue the analysis on the restored partition.
    let top = engine
        .execute_collect(
            &df_core::algebra::AlgebraExpr::literal(restored)
                .sort(df_core::algebra::SortSpec {
                    by: vec![cell("total")],
                    ascending: vec![false],
                    stable: true,
                })
                .limit(3, false),
        )
        .unwrap();
    assert_eq!(top.shape(), (3, 2));
    assert!(store.stats().spill_outs >= 1);
    // CSV writer handles the grouped result too.
    let text = write_csv_string(&grouped, &CsvOptions::default()).unwrap();
    assert!(text.lines().count() > 3);
}
