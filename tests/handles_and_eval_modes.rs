//! The handle-based narrow waist across statement boundaries (§3.3, §6.1).
//!
//! Two suites:
//!
//! * **Evaluation-mode matrix** — Eager / Lazy / Opportunistic × {modin, baseline} on
//!   a four-statement chained pipeline (filter → join → groupby → sort typed as
//!   separate `PandasFrame` statements), asserting the `SessionStats` counters each
//!   mode promises (lazy executes once at the materialisation point; re-submitted
//!   fingerprints hit the cache) and cell-for-cell equality with the reference
//!   engine.
//! * **Out-of-core handle boundaries** — the PR's acceptance criterion: the same
//!   chained pipeline at `memory_budget_bytes = ws/4` runs with every intermediate
//!   crossing the statement boundary as a partitioned handle (spill stats engage, the
//!   dispatch counters show handle reuse and no full-frame assembly between
//!   statements) and produces results identical to the unlimited-budget eager run.

use std::sync::Arc;

use df_baseline::BaselineEngine;
use df_core::algebra::{AggFunc, Aggregation, JoinType};
use df_core::dataframe::DataFrame;
use df_engine::engine::ModinConfig;
use df_engine::session::EvalMode;
use df_pandas::{PandasFrame, Session};
use df_types::cell::{cell, Cell};

/// The fact side of the workload: duplicate join keys, integer-valued floats (so
/// aggregation order cannot introduce rounding differences across engines).
fn facts(rows: usize) -> DataFrame {
    let k: Vec<Cell> = (0..rows).map(|i| cell((i % 9) as i64)).collect();
    let v: Vec<Cell> = (0..rows).map(|i| cell((i % 40) as f64)).collect();
    let s: Vec<Cell> = (0..rows)
        .map(|i| cell(format!("payload-{}-{i}", i % 5)))
        .collect();
    DataFrame::from_columns(vec!["k", "v", "s"], vec![k, v, s]).unwrap()
}

/// The dimension side of the join.
fn dims() -> DataFrame {
    let k: Vec<Cell> = (0..9).map(|i| cell(i as i64)).collect();
    let name: Vec<Cell> = (0..9).map(|i| cell(format!("dim-{i}"))).collect();
    DataFrame::from_columns(vec!["k", "name"], vec![k, name]).unwrap()
}

/// The four-statement pipeline, each step a separate `PandasFrame` statement the way
/// a notebook user would type them. Returns every intermediate so tests can re-submit
/// or inspect specific statements.
fn pipeline(session: &Arc<Session>, rows: usize) -> [PandasFrame; 6] {
    let base = PandasFrame::from_dataframe(session, facts(rows));
    let side = PandasFrame::from_dataframe(session, dims());
    let filtered = base.filter_gt("v", 10.0).unwrap();
    let joined = filtered.merge_on(&side, &["k"], JoinType::Inner);
    let grouped = joined.groupby_agg(
        &["name"],
        vec![
            Aggregation::count_rows(),
            Aggregation::of("v", AggFunc::Sum).with_alias("v_sum"),
        ],
        false,
    );
    let sorted = grouped.sort_values(&["name"], true);
    [base, side, filtered, joined, grouped, sorted]
}

fn modin_session(mode: EvalMode) -> Arc<Session> {
    Session::modin_with(ModinConfig::sequential().with_partition_size(32, 8), mode)
}

fn baseline_session(mode: EvalMode) -> Arc<Session> {
    Session::with_engine(Arc::new(BaselineEngine::new()), mode)
}

#[test]
fn eval_mode_matrix_agrees_with_the_reference_engine() {
    const ROWS: usize = 240;
    let reference_frames = pipeline(&Session::reference(), ROWS);
    let expected = reference_frames[5].collect().unwrap();
    assert_eq!(expected.n_cols(), 3);
    assert!(expected.n_rows() > 0);

    for mode in [EvalMode::Eager, EvalMode::Lazy, EvalMode::Opportunistic] {
        for session in [modin_session(mode), baseline_session(mode)] {
            let kind = session.engine_kind();
            let frames = pipeline(&session, ROWS);
            let out = frames[5].collect().unwrap();
            assert!(
                out.same_data(&expected),
                "{kind:?}/{mode:?} diverged from the reference:\n{out}\nexpected\n{expected}"
            );
            let stats = session.stats();
            assert_eq!(stats.statements, 6, "{kind:?}/{mode:?} statement count");
            assert_eq!(stats.submit_errors, 0, "{kind:?}/{mode:?} submit errors");
        }
    }
}

#[test]
fn lazy_mode_executes_once_at_the_materialisation_point() {
    for session in [
        modin_session(EvalMode::Lazy),
        baseline_session(EvalMode::Lazy),
    ] {
        let kind = session.engine_kind();
        let frames = pipeline(&session, 160);
        let sorted = &frames[5];
        assert_eq!(
            session.stats().executions,
            0,
            "{kind:?}: lazy statements must not execute on submit"
        );
        sorted.collect().unwrap();
        assert_eq!(
            session.stats().executions,
            1,
            "{kind:?}: the whole lazy pipeline is one plan, executed once at collect"
        );
        // A second collect is a cache hit, not a re-execution.
        sorted.collect().unwrap();
        assert_eq!(session.stats().executions, 1, "{kind:?}");
        assert!(session.stats().cache_hits >= 1, "{kind:?}");
    }
}

#[test]
fn eager_mode_hits_the_cache_on_resubmitted_fingerprints() {
    for session in [
        modin_session(EvalMode::Eager),
        baseline_session(EvalMode::Eager),
    ] {
        let kind = session.engine_kind();
        let [_, side, filtered, ..] = pipeline(&session, 160);
        let executions_after_chain = session.stats().executions;
        assert_eq!(executions_after_chain, 6, "{kind:?}");
        let hits_before = session.stats().cache_hits;
        // Re-deriving the same statement from the same parents produces the same
        // logical fingerprint: the session serves it from the cache.
        let rejoined = filtered.merge_on(&side, &["k"], JoinType::Inner);
        assert_eq!(
            session.stats().executions,
            executions_after_chain,
            "{kind:?}: re-submitted statement re-executed"
        );
        assert_eq!(session.stats().cache_hits, hits_before + 1, "{kind:?}");
        // And collecting it is another hit on the same handle.
        assert!(rejoined.collect().unwrap().n_rows() > 0);
        assert_eq!(
            session.stats().executions,
            executions_after_chain,
            "{kind:?}"
        );
    }
}

#[test]
fn lazy_chains_resume_from_intermediates_collected_later() {
    // The derivation happens BEFORE the intermediate is collected; the later
    // materialisation must still rebase onto the intermediate's cached handle
    // instead of re-executing its subtree.
    let session = modin_session(EvalMode::Lazy);
    let frames = pipeline(&session, 160);
    let (joined, sorted) = (&frames[3], &frames[5]);
    joined.collect().unwrap();
    assert_eq!(session.stats().executions, 1);
    let engine = session.modin_engine().unwrap();
    let reuses_before = engine.handles_reused();
    sorted.collect().unwrap();
    // One more plan executed (groupby+sort), resumed from the joined handle.
    assert_eq!(session.stats().executions, 2);
    assert!(
        engine.handles_reused() > reuses_before,
        "derived statement re-executed the collected intermediate's subtree"
    );
}

#[test]
fn opportunistic_mode_overlaps_background_execution() {
    let session = modin_session(EvalMode::Opportunistic);
    let frames = pipeline(&session, 200);
    let sorted = &frames[5];
    let stats = session.stats();
    assert!(
        stats.background_started >= 1,
        "no background work started: {stats:?}"
    );
    let out = sorted.collect().unwrap();
    assert!(out.n_rows() > 0);
    // Collected results land in the cache like any other handle.
    sorted.collect().unwrap();
    assert!(session.stats().cache_hits >= 1);
}

#[test]
fn out_of_core_pipeline_crosses_statement_boundaries_as_handles() {
    const ROWS: usize = 420;
    let working_set = facts(ROWS).approx_size_bytes();
    let budget = working_set / 4;

    // Unlimited-budget eager run: the ground truth.
    let unlimited = modin_session(EvalMode::Eager);
    let unlimited_frames = pipeline(&unlimited, ROWS);
    let expected = unlimited_frames[5].collect().unwrap();

    // Budgeted run of the same four chained statements.
    let bounded = Session::modin_with(
        ModinConfig::sequential()
            .with_partition_size(32, 8)
            .with_memory_budget(budget),
        EvalMode::Eager,
    );
    let engine = Arc::clone(bounded.modin_engine().expect("modin-backed session"));
    let bounded_frames = pipeline(&bounded, ROWS);
    let sorted = &bounded_frames[5];

    // Every derived statement resumed from its input's partitioned handle…
    assert!(
        engine.handles_reused() >= 5,
        "statements did not cross the waist as handles: {} reuses",
        engine.handles_reused()
    );
    // …and nothing was assembled while the chain was built: the only full-frame
    // assembly is the final collect below.
    assert_eq!(
        engine.assemblies_dispatched(),
        0,
        "a statement boundary assembled a full frame"
    );
    let out = sorted.collect().unwrap();
    assert_eq!(engine.assemblies_dispatched(), 1);
    assert_eq!(engine.fallbacks_dispatched(), 0, "pipeline fell back");

    // The tight budget forced intermediates (held as cached handles) to spill.
    let stats = bounded.spill_stats().expect("budgeted session has stats");
    assert!(
        stats.spill_outs > 0 && stats.load_backs > 0,
        "budget ws/4 never engaged the spill store: {stats:?}"
    );
    assert!(
        stats.peak_memory_bytes <= budget + stats.max_insert_bytes,
        "peak residency {} exceeded budget {} + one in-flight band {}",
        stats.peak_memory_bytes,
        budget,
        stats.max_insert_bytes
    );

    // Identical results to the unlimited-budget eager run.
    assert!(
        out.same_data(&expected),
        "bounded run diverged:\n{out}\nexpected\n{expected}"
    );
}
