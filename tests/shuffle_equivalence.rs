//! Differential suite for the shuffle subsystem: the partition-parallel JOIN,
//! GROUPBY, SORT, DROP_DUPLICATES and DIFFERENCE must match the baseline engine
//! cell-for-cell on random mixed-domain frames, across thread counts {1, 4}, all
//! three partition schemes, and both the broadcast and the forced-shuffle join paths.

use proptest::prelude::*;

use df_baseline::BaselineEngine;
use df_core::algebra::{AggFunc, Aggregation, AlgebraExpr, JoinOn, JoinType, SortSpec};
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::partition::PartitionScheme;
use df_types::cell::cell;
use df_workloads::random::{random_frame, RandomFrameConfig};

/// The shuffle-dispatched pipelines, parameterised by a small integer.
fn pipeline(choice: u8, base: AlgebraExpr, other: AlgebraExpr) -> AlgebraExpr {
    match choice % 8 {
        0 => base.join(other, JoinOn::Columns(vec![cell("cat_0")]), JoinType::Inner),
        1 => base.join(other, JoinOn::Columns(vec![cell("cat_0")]), JoinType::Left),
        2 => base.join(other, JoinOn::Columns(vec![cell("cat_0")]), JoinType::Outer),
        3 => base.sort(SortSpec::ascending(vec![cell("cat_0"), cell("float_0")])),
        4 => base.sort(SortSpec {
            by: vec![cell("int_0"), cell("cat_0")],
            ascending: vec![false, true],
            stable: true,
        }),
        // UNION against a prefix of itself manufactures duplicate rows to drop.
        5 => base.clone().union(base.limit(13, false)).drop_duplicates(),
        6 => base.clone().difference(other),
        _ => base.group_by(
            vec![cell("cat_0")],
            vec![
                Aggregation::count_rows(),
                Aggregation::of("float_0", AggFunc::Sum).with_alias("sum"),
                Aggregation::of("int_0", AggFunc::Mean).with_alias("mean"),
                Aggregation::of("float_1", AggFunc::Min).with_alias("min"),
            ],
            false,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn shuffled_operators_match_the_baseline_engine(
        rows in 0usize..90,
        other_rows in 0usize..40,
        seed in 0u64..10_000,
        null_fraction in 0.0f64..0.4,
        choice in 0u8..8,
    ) {
        let frame = random_frame(&RandomFrameConfig {
            rows,
            null_fraction,
            seed,
            ..RandomFrameConfig::default()
        })
        .unwrap();
        let other = random_frame(&RandomFrameConfig {
            rows: other_rows,
            null_fraction,
            seed: seed.wrapping_add(1),
            ..RandomFrameConfig::default()
        })
        .unwrap();
        let expr = pipeline(
            choice,
            AlgebraExpr::literal(frame),
            AlgebraExpr::literal(other),
        );
        let expected = BaselineEngine::new().execute_collect(&expr).unwrap();
        for threads in [1usize, 4] {
            for scheme in [
                PartitionScheme::Row,
                PartitionScheme::Column,
                PartitionScheme::Block,
            ] {
                // Broadcast threshold 0 forces the co-partitioning shuffle for the
                // binary operators; the default keeps the broadcast fast path.
                for broadcast in [0usize, 4096] {
                    let engine = ModinEngine::with_config(
                        ModinConfig::default()
                            .with_threads(threads)
                            .with_scheme(scheme)
                            .with_partition_size(16, 3)
                            .with_broadcast_threshold(broadcast),
                    );
                    let result = engine.execute_collect(&expr).unwrap();
                    // GROUPBY partial sums may re-associate floats across bands;
                    // everything else moves cells verbatim and must be bit-exact.
                    let agrees = if choice % 8 == 7 {
                        result.approx_same_data(&expected, 1e-9)
                    } else {
                        result.same_data(&expected)
                    };
                    prop_assert!(
                        agrees,
                        "pipeline {choice} diverged (threads={threads}, scheme={scheme:?}, \
                         broadcast={broadcast})\nexpected:\n{expected}\ngot:\n{result}"
                    );
                    prop_assert!(
                        engine.fallbacks_dispatched() == 0,
                        "pipeline {choice} used the fallback path"
                    );
                }
            }
        }
    }
}
