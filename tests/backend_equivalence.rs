//! Differential suite for the executor backends: every Table 1 operator the engine
//! dispatches — rowwise maps/selections/projections/renames, GROUPBY, and the
//! shuffle-based JOIN / SORT / DROP_DUPLICATES / DIFFERENCE — plus CSV ingest must
//! be cell-for-cell identical whether band tasks run on the in-process thread pool
//! or on spawned worker processes speaking the spill-v4 pipe protocol. Arms:
//! backends {threads, procs} × threads {1, 4} × memory budgets {∞, ws/4}.

use proptest::prelude::*;

use df_baseline::BaselineEngine;
use df_core::algebra::{
    AggFunc, Aggregation, AlgebraExpr, CmpOp, ColumnSelector, JoinOn, JoinType, MapFunc, Predicate,
    SortSpec,
};
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_types::backend::BackendKind;
use df_types::cell::cell;
use df_workloads::random::{random_frame, RandomFrameConfig};

/// Point the process backend at the worker binary Cargo built for this test run.
/// `CARGO_BIN_EXE_*` is only set for the root package's own tests, which is where
/// this suite lives.
fn ensure_worker_bin() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::set_var("DF_WORKER_BIN", env!("CARGO_BIN_EXE_df-band-worker"));
    });
}

/// An engine on the given backend/threads/budget arm.
fn engine(backend: BackendKind, threads: usize, budget: Option<usize>) -> ModinEngine {
    ensure_worker_bin();
    let mut config = ModinConfig::default()
        .with_threads(threads)
        .with_partition_size(16, 3)
        .with_backend(backend);
    if let Some(bytes) = budget {
        config = config.with_memory_budget(bytes);
    }
    ModinEngine::try_with_config(config).expect("engine construction")
}

/// The operator pipelines under test, parameterised by a small integer: the
/// shuffle-dispatched operators (mirroring `shuffle_equivalence.rs`) plus the
/// embarrassingly parallel rowwise ones.
fn pipeline(choice: u8, base: AlgebraExpr, other: AlgebraExpr) -> AlgebraExpr {
    match choice % 10 {
        0 => base.join(other, JoinOn::Columns(vec![cell("cat_0")]), JoinType::Inner),
        1 => base.join(other, JoinOn::Columns(vec![cell("cat_0")]), JoinType::Left),
        2 => base.join(other, JoinOn::Columns(vec![cell("cat_0")]), JoinType::Outer),
        3 => base.sort(SortSpec::ascending(vec![cell("cat_0"), cell("float_0")])),
        4 => base.sort(SortSpec {
            by: vec![cell("int_0"), cell("cat_0")],
            ascending: vec![false, true],
            stable: true,
        }),
        // UNION against a prefix of itself manufactures duplicate rows to drop.
        5 => base.clone().union(base.limit(13, false)).drop_duplicates(),
        6 => base.clone().difference(other),
        7 => base.group_by(
            vec![cell("cat_0")],
            vec![
                Aggregation::count_rows(),
                Aggregation::of("float_0", AggFunc::Sum).with_alias("sum"),
                Aggregation::of("int_0", AggFunc::Mean).with_alias("mean"),
                Aggregation::of("float_1", AggFunc::Min).with_alias("min"),
            ],
            false,
        ),
        // Rowwise chain: SELECTION → PROJECTION → RENAME, all shipped as tasks.
        8 => base
            .select(Predicate::ColCmp {
                column: cell("float_0"),
                op: CmpOp::Gt,
                value: cell(0.0),
            })
            .project(ColumnSelector::ByLabels(vec![
                cell("float_0"),
                cell("cat_0"),
            ]))
            .rename(vec![(cell("cat_0"), cell("category"))]),
        // Per-cell MAP (block-parallel path) over a null-filled frame.
        _ => base.map(MapFunc::IsNullMask),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn operators_are_identical_across_backends(
        rows in 0usize..90,
        other_rows in 0usize..40,
        seed in 0u64..10_000,
        null_fraction in 0.0f64..0.4,
        choice in 0u8..10,
    ) {
        let frame = random_frame(&RandomFrameConfig {
            rows,
            null_fraction,
            seed,
            ..RandomFrameConfig::default()
        })
        .unwrap();
        let working_set = frame.approx_size_bytes();
        let other = random_frame(&RandomFrameConfig {
            rows: other_rows,
            null_fraction,
            seed: seed.wrapping_add(1),
            ..RandomFrameConfig::default()
        })
        .unwrap();
        let expr = pipeline(
            choice,
            AlgebraExpr::literal(frame),
            AlgebraExpr::literal(other),
        );
        let expected = BaselineEngine::new().execute_collect(&expr).unwrap();
        for backend in [BackendKind::Threads, BackendKind::Procs] {
            for threads in [1usize, 4] {
                for budget in [None, Some((working_set / 4).max(1))] {
                    let engine = engine(backend, threads, budget);
                    let result = engine.execute_collect(&expr).unwrap();
                    // GROUPBY partial sums may re-associate floats across bands;
                    // everything else moves cells verbatim and must be bit-exact.
                    let agrees = if choice % 10 == 7 {
                        result.approx_same_data(&expected, 1e-9)
                    } else {
                        result.same_data(&expected)
                    };
                    prop_assert!(
                        agrees,
                        "pipeline {choice} diverged (backend={backend}, threads={threads}, \
                         budget={budget:?})\nexpected:\n{expected}\ngot:\n{result}"
                    );
                    // The procs arm must actually ship work: every shuffle split and
                    // every serialisable rowwise task crosses the pipe protocol.
                    if backend == BackendKind::Procs && engine.shuffles_dispatched() > 0 {
                        let health = engine.backend_health();
                        prop_assert!(
                            health.tasks_remote > 0,
                            "procs backend ran a shuffle without remote tasks: {health:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn csv_ingest_is_identical_across_backends() {
    ensure_worker_bin();
    let mut content = String::from("id,name,score,tag\n");
    for i in 0..60 {
        content.push_str(&format!("{i},row-{i},{}.5,t{}\n", i % 7, i % 3));
    }
    let dir = std::env::temp_dir().join(format!("df_backend_equiv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ingest.csv");
    std::fs::write(&path, &content).unwrap();
    for infer in [false, true] {
        let options = df_storage::csv::CsvOptions {
            infer_schema: infer,
            ..df_storage::csv::CsvOptions::default()
        };
        let serial = df_storage::csv::read_csv_str(&content, &options).unwrap();
        for backend in [BackendKind::Threads, BackendKind::Procs] {
            for threads in [1usize, 4] {
                for budget in [None, Some(content.len() / 4)] {
                    let engine = engine(backend, threads, budget);
                    let grid = engine.ingest_csv(&path, &options).unwrap();
                    let assembled = grid.into_dataframe().unwrap();
                    assert!(
                        assembled.same_data(&serial),
                        "ingest diverged (backend={backend}, threads={threads}, \
                         budget={budget:?}, infer={infer})"
                    );
                    assert_eq!(assembled.schema(), serial.schema());
                    if backend == BackendKind::Procs {
                        let health = engine.backend_health();
                        assert!(
                            health.tasks_remote > 0,
                            "procs ingest parsed no chunks remotely: {health:?}"
                        );
                    }
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}
