//! Tenant-facing session handles.
//!
//! A [`TenantSession`] is the worker half of the owner/worker split: a cheap,
//! cloneable handle a client thread drives. It owns no engine state — its
//! [`df_pandas::Session`] front end wraps a
//! [`df_engine::session::QuerySession`] built with the service's
//! shared cache and admission gate, so every dataframe call the tenant makes is
//! admission-controlled, fairly scheduled, and cache-attributed without the
//! client doing anything special.

use std::sync::Arc;

use df_engine::cache::{CacheStats, ResultCache, TenantCacheStats};
use df_engine::session::{QuerySession, SessionStats};
use df_pandas::Session;

/// One tenant's handle onto the shared service (see the module docs).
#[derive(Clone)]
pub struct TenantSession {
    name: String,
    session: Arc<Session>,
    cache: Arc<ResultCache>,
}

impl TenantSession {
    pub(crate) fn new(
        name: String,
        session: Arc<Session>,
        cache: Arc<ResultCache>,
    ) -> TenantSession {
        TenantSession {
            name,
            session,
            cache,
        }
    }

    /// The tenant this session is attributed to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pandas-style front end: build [`df_pandas::PandasFrame`]s against this
    /// to run dataframe programs under the service's admission and caching.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// The underlying query session (algebra-level `collect`, timeouts,
    /// cancellation).
    pub fn query(&self) -> &QuerySession {
        self.session.query()
    }

    /// This session's scheduling/caching counters (statements, executions, hits).
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// Counters of the result cache this tenant runs against (the shared cache,
    /// or the tenant's private one when the service was configured without
    /// sharing).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// This tenant's slice of the cache counters (hits, produced entries,
    /// retained bytes, quota).
    pub fn tenant_cache_stats(&self) -> TenantCacheStats {
        self.cache
            .stats()
            .tenants
            .into_iter()
            .find(|(name, _)| name == &self.name)
            .map(|(_, stats)| stats)
            .unwrap_or_default()
    }

    /// Drop every cache entry this tenant produced, releasing its retained bytes
    /// back to the shared budget. In-flight productions are unaffected.
    pub fn release_cached_results(&self) {
        self.cache.evict_tenant(&self.name);
    }
}

impl std::fmt::Debug for TenantSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantSession")
            .field("name", &self.name)
            .field("stats", &self.stats())
            .finish()
    }
}
