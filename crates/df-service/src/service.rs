//! The service owner: one engine, one budget, many tenants.
//!
//! [`QueryService::start`] builds the single shared [`ModinEngine`] (and with it the
//! single [`SpillStore`] budget every tenant draws from), the shared
//! [`ResultCache`], and the [`FairGate`] run queue. [`QueryService::tenant`] then
//! hands out [`TenantSession`]s — cheap handles whose every execution passes
//! through the gate and whose results land in (and are served from) the shared
//! cache with per-tenant attribution.
//!
//! [`SpillStore`]: df_storage::spill::SpillStore
//! [`ResultCache`]: df_engine::cache::ResultCache

use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use df_core::engine::Engine;
use df_engine::cache::{CacheStats, ResultCache};
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::session::{EvalMode, QuerySession, SessionStats, StatementGate};
use df_pandas::Session;
use df_storage::spill::SpillStats;
use df_types::error::DfResult;

use crate::admission::{AdmissionStats, FairGate};
use crate::tenant::TenantSession;

/// How a [`QueryService`] is provisioned.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Configuration of the single shared engine (thread pool, partition shape,
    /// memory budget — the budget is global across tenants).
    pub engine: ModinConfig,
    /// Evaluation mode every tenant session runs under.
    pub mode: EvalMode,
    /// Execution slots: at most this many statements run on the engine at once.
    pub max_concurrent: usize,
    /// Statements allowed to wait for a slot before arrivals are refused with
    /// [`df_types::error::DfError::Admission`].
    pub queue_capacity: usize,
    /// Longest a queued statement waits before failing with
    /// [`df_types::error::DfError::Cancelled`].
    pub queue_timeout: Duration,
    /// Byte budget of the result cache (`None` = unbounded).
    pub cache_budget_bytes: Option<usize>,
    /// Share one result cache across tenants (identical statements execute once,
    /// service-wide). When `false` each tenant gets a private cache with the same
    /// byte budget — the ablation arm benchmarks compare against.
    pub shared_cache: bool,
    /// Retained-bytes quota applied to every tenant that is not given an explicit
    /// quota via [`QueryService::tenant_with_quota`].
    pub default_tenant_quota: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            engine: ModinConfig::default(),
            mode: EvalMode::Eager,
            max_concurrent: 4,
            queue_capacity: 64,
            queue_timeout: Duration::from_secs(30),
            cache_budget_bytes: None,
            shared_cache: true,
            default_tenant_quota: None,
        }
    }
}

impl ServiceConfig {
    /// Replace the engine configuration.
    pub fn with_engine(mut self, engine: ModinConfig) -> ServiceConfig {
        self.engine = engine;
        self
    }

    /// Select the executor backend the shared engine places band tasks on —
    /// in-process threads or spawned worker processes. Shorthand for rebuilding
    /// [`ServiceConfig::engine`] with
    /// [`ModinConfig::with_backend`](df_engine::engine::ModinConfig::with_backend);
    /// every tenant of the service shares the selected backend's worker pool.
    pub fn with_backend(mut self, backend: df_types::backend::BackendKind) -> ServiceConfig {
        self.engine = self.engine.with_backend(backend);
        self
    }

    /// Set the evaluation mode tenant sessions run under.
    pub fn with_mode(mut self, mode: EvalMode) -> ServiceConfig {
        self.mode = mode;
        self
    }

    /// Set the concurrent-execution slot count.
    pub fn with_max_concurrent(mut self, slots: usize) -> ServiceConfig {
        self.max_concurrent = slots;
        self
    }

    /// Bound the run queue and the time a statement may wait in it.
    pub fn with_queue(mut self, capacity: usize, timeout: Duration) -> ServiceConfig {
        self.queue_capacity = capacity;
        self.queue_timeout = timeout;
        self
    }

    /// Bound the result cache to `bytes`.
    pub fn with_cache_budget(mut self, bytes: usize) -> ServiceConfig {
        self.cache_budget_bytes = Some(bytes);
        self
    }

    /// Give every tenant a private result cache instead of the shared one.
    pub fn without_shared_cache(mut self) -> ServiceConfig {
        self.shared_cache = false;
        self
    }

    /// Apply `quota` retained cache bytes to tenants without an explicit quota.
    pub fn with_default_tenant_quota(mut self, quota: usize) -> ServiceConfig {
        self.default_tenant_quota = Some(quota);
        self
    }
}

/// One service-wide stats snapshot: admission, cache, and per-tenant counters.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Run-queue counters (grants, refusals, timeouts, peaks).
    pub admission: AdmissionStats,
    /// Shared result-cache counters; `None` when the service runs per-tenant
    /// private caches ([`ServiceConfig::shared_cache`] = false).
    pub cache: Option<CacheStats>,
    /// Per-tenant session counters, in the order sessions were opened.
    pub tenants: Vec<(String, SessionStats)>,
}

/// What [`QueryService::shutdown`] observed while draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Every in-flight statement finished within the grace period on its own.
    pub drained_cleanly: bool,
    /// The engine's cancel token was fired to abort statements that outlived the
    /// grace period.
    pub cancelled_stragglers: bool,
    /// The gate was fully idle (no active or queued statements) when `shutdown`
    /// returned.
    pub idle: bool,
}

struct TenantEntry {
    name: String,
    session: Arc<Session>,
}

/// The in-process multi-tenant query service (see the crate docs for the model
/// and a walkthrough).
pub struct QueryService {
    engine: Arc<ModinEngine>,
    mode: EvalMode,
    gate: Arc<FairGate>,
    /// `Some` when tenants share one cache; `None` when each gets a private one.
    shared_cache: Option<Arc<ResultCache>>,
    cache_budget: Option<usize>,
    default_tenant_quota: Option<usize>,
    tenants: Mutex<Vec<TenantEntry>>,
}

impl QueryService {
    /// Provision the shared engine and start the service. Fails if the engine's
    /// spill store cannot be created (e.g. an unusable spill directory).
    pub fn start(config: ServiceConfig) -> DfResult<Arc<QueryService>> {
        let engine = Arc::new(ModinEngine::try_with_config(config.engine)?);
        let gate = Arc::new(FairGate::new(
            config.max_concurrent,
            config.queue_capacity,
            config.queue_timeout,
        ));
        let shared_cache = config
            .shared_cache
            .then(|| Arc::new(ResultCache::with_budget(config.cache_budget_bytes)));
        Ok(Arc::new(QueryService {
            engine,
            mode: config.mode,
            gate,
            shared_cache,
            cache_budget: config.cache_budget_bytes,
            default_tenant_quota: config.default_tenant_quota,
            tenants: Mutex::new(Vec::new()),
        }))
    }

    /// Open a session for `tenant` under the service-wide default quota.
    pub fn tenant(self: &Arc<QueryService>, tenant: &str) -> TenantSession {
        self.tenant_with_quota(tenant, self.default_tenant_quota)
    }

    /// Open a session for `tenant` with an explicit retained-cache-bytes quota
    /// (`None` = unbounded). Each call opens an independent session handle; a
    /// tenant reconnecting gets fresh session counters but the same shared cache
    /// attribution and quota key.
    pub fn tenant_with_quota(
        self: &Arc<QueryService>,
        tenant: &str,
        quota: Option<usize>,
    ) -> TenantSession {
        let cache = match &self.shared_cache {
            Some(cache) => Arc::clone(cache),
            None => Arc::new(ResultCache::with_budget(self.cache_budget)),
        };
        cache.set_tenant_quota(tenant, quota);
        let engine: Arc<dyn Engine> = Arc::clone(&self.engine) as Arc<dyn Engine>;
        let gate: Arc<dyn StatementGate> = Arc::clone(&self.gate) as Arc<dyn StatementGate>;
        let query = QuerySession::with_shared_state(
            engine,
            self.mode,
            Arc::clone(&cache),
            Some(tenant.to_string()),
            Some(gate),
        );
        let session = Session::from_query(query, Some(Arc::clone(&self.engine)));
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(TenantEntry {
                name: tenant.to_string(),
                session: Arc::clone(&session),
            });
        TenantSession::new(tenant.to_string(), session, cache)
    }

    /// The shared engine (one thread pool, one spill budget, service-wide).
    pub fn engine(&self) -> &Arc<ModinEngine> {
        &self.engine
    }

    /// Out-of-core counters of the shared spill store.
    pub fn spill_stats(&self) -> SpillStats {
        self.engine.spill_stats()
    }

    /// The shared result cache, when the service runs one.
    pub fn shared_cache(&self) -> Option<&Arc<ResultCache>> {
        self.shared_cache.as_ref()
    }

    /// Run-queue counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.gate.stats()
    }

    /// True once [`QueryService::shutdown`] has begun: every new statement is
    /// refused with a typed `Admission` error.
    pub fn is_draining(&self) -> bool {
        self.gate.is_draining()
    }

    /// One service-wide snapshot: admission, cache, and per-tenant counters.
    pub fn stats(&self) -> ServiceStats {
        let tenants = self
            .tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|entry| (entry.name.clone(), entry.session.stats()))
            .collect();
        ServiceStats {
            admission: self.gate.stats(),
            cache: self.shared_cache.as_ref().map(|cache| cache.stats()),
            tenants,
        }
    }

    /// Graceful shutdown: stop admitting (queued waiters fail with typed
    /// `Admission` errors), give in-flight statements `grace` to finish, and fire
    /// the engine's cancel token at whatever outlives the deadline (waiting up to
    /// `grace` again for the cancellations to land, then re-arming the token so
    /// the report reflects a reusable engine). The shared cache is cleared so the
    /// spill budget is released. Idempotent; later statements on any tenant
    /// session fail admission.
    pub fn shutdown(&self, grace: Duration) -> ShutdownReport {
        self.gate.begin_drain();
        let drained = self.gate.wait_idle(grace);
        let mut cancelled = false;
        let mut idle = drained;
        if !drained {
            if let Some(token) = self.engine.cancel_token() {
                token.cancel();
                cancelled = true;
            }
            idle = self.gate.wait_idle(grace);
            if let Some(token) = self.engine.cancel_token() {
                token.reset();
            }
        }
        if let Some(cache) = &self.shared_cache {
            cache.clear();
        }
        ShutdownReport {
            drained_cleanly: drained,
            cancelled_stragglers: cancelled,
            idle,
        }
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("mode", &self.mode)
            .field("gate", &self.gate)
            .field("shared_cache", &self.shared_cache.is_some())
            .field(
                "tenants",
                &self
                    .tenants
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_core::algebra::{Aggregation, AlgebraExpr};
    use df_core::dataframe::DataFrame;
    use df_types::cell::{cell, Cell};

    fn service(config: ServiceConfig) -> Arc<QueryService> {
        QueryService::start(
            config.with_engine(ModinConfig::sequential().with_partition_size(16, 2)),
        )
        .expect("service starts")
    }

    fn group_expr(rows: usize) -> AlgebraExpr {
        let k: Vec<Cell> = (0..rows).map(|i| cell((i % 5) as i64)).collect();
        let v: Vec<Cell> = (0..rows).map(|i| cell(i as i64)).collect();
        let frame = DataFrame::from_columns(vec!["k", "v"], vec![k, v]).expect("frame");
        AlgebraExpr::literal(frame).group_by(
            vec![cell("k")],
            vec![Aggregation::count_rows()],
            false,
        )
    }

    #[test]
    fn identical_statements_across_tenants_execute_once() {
        let service = service(ServiceConfig::default());
        let alpha = service.tenant("alpha");
        let beta = service.tenant("beta");
        let expr = group_expr(64);
        let first = alpha.query().collect(&expr).expect("alpha collects");
        let second = beta.query().collect(&expr).expect("beta collects");
        assert!(first.same_data(&second));
        let stats = service.stats();
        let executions: u64 = stats.tenants.iter().map(|(_, s)| s.executions).sum();
        assert_eq!(executions, 1, "{stats:?}");
        let cache = stats.cache.expect("shared cache on by default");
        assert_eq!(cache.shared_hits, 1, "{cache:?}");
        // Attribution: alpha produced the entry, beta hit it.
        let beta_cache = cache
            .tenants
            .iter()
            .find(|(name, _)| name == "beta")
            .map(|(_, t)| *t)
            .expect("beta attributed");
        assert_eq!(beta_cache.hits, 1);
        assert_eq!(service.admission_stats().admitted, 1);
    }

    #[test]
    fn backend_selection_reaches_the_shared_engine() {
        use df_types::backend::BackendKind;
        let config = ServiceConfig::default().with_backend(BackendKind::Threads);
        assert_eq!(config.engine.backend, BackendKind::Threads);
        // A service provisioned with an explicit backend still serves queries
        // (the procs arm of the same path runs in the backend equivalence suite,
        // which can build the worker binary).
        let service = QueryService::start(
            config.with_engine(
                ModinConfig::sequential()
                    .with_partition_size(16, 2)
                    .with_backend(BackendKind::Threads),
            ),
        )
        .expect("service starts");
        let tenant = service.tenant("solo");
        let expr = group_expr(48);
        let result = tenant.query().collect(&expr).expect("collects");
        assert_eq!(result.shape().0, 5);
    }

    #[test]
    fn private_caches_keep_tenants_apart() {
        let service = service(ServiceConfig::default().without_shared_cache());
        let alpha = service.tenant("alpha");
        let beta = service.tenant("beta");
        let expr = group_expr(64);
        alpha.query().collect(&expr).expect("alpha collects");
        beta.query().collect(&expr).expect("beta collects");
        let stats = service.stats();
        assert!(stats.cache.is_none());
        let executions: u64 = stats.tenants.iter().map(|(_, s)| s.executions).sum();
        assert_eq!(
            executions, 2,
            "no cross-tenant reuse without a shared cache"
        );
    }

    #[test]
    fn tenant_quota_violations_surface_typed_and_stay_contained() {
        let service = service(ServiceConfig::default());
        // A 1-byte quota: no result fits, so the statement fails typed and
        // nothing is retained for the tenant.
        let thrifty = service.tenant_with_quota("thrifty", Some(1));
        let expr = group_expr(64);
        let err = thrifty.query().collect(&expr).unwrap_err();
        assert!(
            matches!(err, df_types::error::DfError::ResourceExhausted(_)),
            "{err}"
        );
        let cache = service.stats().cache.expect("shared cache");
        assert!(cache.quota_rejections > 0, "{cache:?}");
        let retained = cache
            .tenants
            .iter()
            .find(|(name, _)| name == "thrifty")
            .map(|(_, t)| t.retained_bytes)
            .expect("thrifty attributed");
        assert_eq!(retained, 0);
        // Another tenant is untouched by the neighbour's quota trouble.
        let roomy = service.tenant("roomy");
        assert!(roomy.query().collect(&group_expr(64)).is_ok());
    }

    #[test]
    fn shutdown_drains_and_refuses_later_statements() {
        let service = service(ServiceConfig::default());
        let tenant = service.tenant("solo");
        let expr = group_expr(64);
        tenant
            .query()
            .collect(&expr)
            .expect("collect before shutdown");
        let report = service.shutdown(Duration::from_secs(5));
        assert!(report.drained_cleanly && report.idle && !report.cancelled_stragglers);
        assert!(service.is_draining());
        // The shared cache was cleared, and new statements are refused typed.
        assert_eq!(service.stats().cache.expect("cache").entries, 0);
        let err = tenant.query().collect(&group_expr(32)).unwrap_err();
        assert!(err.is_admission(), "{err}");
    }
}
