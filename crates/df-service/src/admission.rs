//! Bounded, tenant-fair admission control for the shared engine.
//!
//! [`FairGate`] implements [`StatementGate`]: every engine execution any tenant
//! session performs first takes one of `max_concurrent` slots. When the slots are
//! busy the statement waits in a *per-tenant* queue, and freed slots are granted
//! **round-robin across tenants** — a tenant that bursts fifty statements cannot
//! starve a tenant that submitted one, because each rotation turn takes exactly one
//! ticket from the next tenant with queued work (FIFO within the tenant, fair
//! across tenants). This is the queueing half of Helland's owner/worker split: the
//! gate owns who runs, the executor pool owns how.
//!
//! Refusals are typed, and the distinction matters to clients:
//!
//! * queue full or service draining → [`DfError::Admission`] — nothing was started,
//!   back off and retry (or reconnect elsewhere);
//! * queue wait exceeded the configured timeout → [`DfError::Cancelled`] — the
//!   statement was accepted and then abandoned, like any other cancellation.
//!
//! Like the result cache, blocking uses `std::sync::{Mutex, Condvar}` (the vendored
//! `parking_lot` shim has no `Condvar`); poisoning is recovered, not propagated.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use df_engine::session::StatementGate;
use df_types::error::{DfError, DfResult};

/// Queue key for sessions without a tenant label.
const UNTENANTED: &str = "(untenanted)";

struct GateState {
    /// Statements currently holding an execution slot.
    active: usize,
    /// Tickets currently waiting across all tenant queues.
    queued: usize,
    /// Draining for shutdown: all new admissions (and queued waiters) refuse.
    draining: bool,
    next_ticket: u64,
    /// FIFO of waiting tickets per tenant.
    queues: HashMap<String, VecDeque<u64>>,
    /// Round-robin rotation over tenants with queued work.
    rotation: VecDeque<String>,
    /// Tickets granted a slot, awaiting pickup by their parked waiter.
    granted: HashSet<u64>,
    admitted: u64,
    queued_grants: u64,
    rejected_full: u64,
    rejected_draining: u64,
    timed_out: u64,
    peak_active: usize,
    max_queue_depth: usize,
}

impl GateState {
    /// Grant freed slots to queued tickets, one tenant per rotation turn.
    fn pump(&mut self, slots: usize) {
        while self.active < slots && self.queued > 0 {
            let Some(tenant) = self.rotation.pop_front() else {
                break;
            };
            let Some(queue) = self.queues.get_mut(&tenant) else {
                continue;
            };
            let Some(ticket) = queue.pop_front() else {
                self.queues.remove(&tenant);
                continue;
            };
            if queue.is_empty() {
                self.queues.remove(&tenant);
            } else {
                // The tenant goes to the back of the rotation: one grant per turn.
                self.rotation.push_back(tenant);
            }
            self.queued -= 1;
            self.granted.insert(ticket);
            self.queued_grants += 1;
            self.take_slot();
        }
    }

    fn take_slot(&mut self) {
        self.active += 1;
        self.admitted += 1;
        self.peak_active = self.peak_active.max(self.active);
    }

    /// Remove `ticket` from `tenant`'s queue (timeout / drain abandonment).
    fn abandon(&mut self, tenant: &str, ticket: u64) {
        if let Some(queue) = self.queues.get_mut(tenant) {
            if let Some(position) = queue.iter().position(|&t| t == ticket) {
                queue.remove(position);
                self.queued -= 1;
                if queue.is_empty() {
                    self.queues.remove(tenant);
                }
            }
        }
    }
}

/// Point-in-time admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Execution slots granted (fast path and queued grants alike).
    pub admitted: u64,
    /// Of [`AdmissionStats::admitted`], how many had to wait in the queue first.
    pub queued_grants: u64,
    /// Statements refused because the run queue was full.
    pub rejected_full: u64,
    /// Statements refused because the service was draining.
    pub rejected_draining: u64,
    /// Queued statements abandoned after exceeding the queue-wait timeout.
    pub timed_out: u64,
    /// Highest concurrent slot occupancy observed.
    pub peak_active: usize,
    /// Deepest total queue observed.
    pub max_queue_depth: usize,
    /// Slots held right now.
    pub active_now: usize,
    /// Tickets waiting right now.
    pub queued_now: usize,
}

/// The bounded, tenant-fair run queue (see the module docs).
pub struct FairGate {
    state: Mutex<GateState>,
    /// Wakes queued waiters (on grant, drain, or producer release) and the
    /// shutdown path waiting for idleness.
    turnstile: Condvar,
    slots: usize,
    queue_capacity: usize,
    queue_timeout: Duration,
}

impl FairGate {
    /// A gate with `slots` concurrent executions, at most `queue_capacity` queued
    /// statements, and `queue_timeout` as the longest any statement waits queued.
    pub fn new(slots: usize, queue_capacity: usize, queue_timeout: Duration) -> FairGate {
        FairGate {
            state: Mutex::new(GateState {
                active: 0,
                queued: 0,
                draining: false,
                next_ticket: 0,
                queues: HashMap::new(),
                rotation: VecDeque::new(),
                granted: HashSet::new(),
                admitted: 0,
                queued_grants: 0,
                rejected_full: 0,
                rejected_draining: 0,
                timed_out: 0,
                peak_active: 0,
                max_queue_depth: 0,
            }),
            turnstile: Condvar::new(),
            slots: slots.max(1),
            queue_capacity,
            queue_timeout,
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Refuse all future admissions (typed [`DfError::Admission`]) and fail every
    /// currently queued waiter the same way. Already-admitted statements keep
    /// their slots and drain normally.
    pub fn begin_drain(&self) {
        self.lock_state().draining = true;
        self.turnstile.notify_all();
    }

    /// True once [`FairGate::begin_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.lock_state().draining
    }

    /// Block until no statement holds a slot or waits queued, or until `grace`
    /// passes. Returns whether the gate is idle.
    pub fn wait_idle(&self, grace: Duration) -> bool {
        let deadline = Instant::now() + grace;
        let mut state = self.lock_state();
        while state.active > 0 || state.queued > 0 {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (next, _timeout) = self
                .turnstile
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
        true
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> AdmissionStats {
        let state = self.lock_state();
        AdmissionStats {
            admitted: state.admitted,
            queued_grants: state.queued_grants,
            rejected_full: state.rejected_full,
            rejected_draining: state.rejected_draining,
            timed_out: state.timed_out,
            peak_active: state.peak_active,
            max_queue_depth: state.max_queue_depth,
            active_now: state.active,
            queued_now: state.queued,
        }
    }
}

impl StatementGate for FairGate {
    fn admit(&self, tenant: Option<&str>) -> DfResult<()> {
        let tenant = tenant.unwrap_or(UNTENANTED).to_string();
        let mut state = self.lock_state();
        if state.draining {
            state.rejected_draining += 1;
            return Err(DfError::Admission(
                "service is draining for shutdown".to_string(),
            ));
        }
        // Fast path only when nobody is queued — queued tickets may not be barged.
        if state.active < self.slots && state.queued == 0 {
            state.take_slot();
            return Ok(());
        }
        if state.queued >= self.queue_capacity {
            state.rejected_full += 1;
            return Err(DfError::Admission(format!(
                "run queue full ({} queued, capacity {})",
                state.queued, self.queue_capacity
            )));
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queued += 1;
        state.max_queue_depth = state.max_queue_depth.max(state.queued);
        if !state.queues.contains_key(&tenant) {
            state.rotation.push_back(tenant.clone());
        }
        state
            .queues
            .entry(tenant.clone())
            .or_default()
            .push_back(ticket);
        state.pump(self.slots);
        let deadline = Instant::now() + self.queue_timeout;
        loop {
            if state.granted.remove(&ticket) {
                // The slot was already taken on our behalf by pump().
                return Ok(());
            }
            if state.draining {
                state.abandon(&tenant, ticket);
                state.rejected_draining += 1;
                drop(state);
                self.turnstile.notify_all();
                return Err(DfError::Admission(
                    "service is draining for shutdown".to_string(),
                ));
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                state.abandon(&tenant, ticket);
                state.timed_out += 1;
                drop(state);
                self.turnstile.notify_all();
                return Err(DfError::Cancelled(format!(
                    "queue wait exceeded {:?} (tenant {tenant:?})",
                    self.queue_timeout
                )));
            };
            let (next, _timeout) = self
                .turnstile
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
    }

    fn release(&self) {
        let mut state = self.lock_state();
        state.active = state.active.saturating_sub(1);
        state.pump(self.slots);
        drop(state);
        self.turnstile.notify_all();
    }
}

impl std::fmt::Debug for FairGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("FairGate")
            .field("slots", &self.slots)
            .field("queue_capacity", &self.queue_capacity)
            .field("active", &stats.active_now)
            .field("queued", &stats.queued_now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn wait_for_queued(gate: &FairGate, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while gate.stats().queued_now < n {
            assert!(Instant::now() < deadline, "queue never reached depth {n}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn fast_path_admits_up_to_slots() {
        let gate = FairGate::new(2, 4, Duration::from_secs(5));
        gate.admit(Some("a")).unwrap();
        gate.admit(Some("b")).unwrap();
        assert_eq!(gate.stats().active_now, 2);
        gate.release();
        gate.release();
        assert_eq!(gate.stats().active_now, 0);
        assert_eq!(gate.stats().admitted, 2);
        assert_eq!(gate.stats().peak_active, 2);
    }

    #[test]
    fn queue_full_refuses_typed_without_queueing() {
        let gate = Arc::new(FairGate::new(1, 1, Duration::from_secs(30)));
        gate.admit(Some("holder")).unwrap();
        let queued = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit(Some("queued")))
        };
        wait_for_queued(&gate, 1);
        // The queue (capacity 1) is now full: the next arrival is turned away.
        let err = gate.admit(Some("late")).unwrap_err();
        assert!(err.is_admission(), "{err}");
        assert!(err.to_string().contains("queue full"), "{err}");
        gate.release();
        queued.join().unwrap().unwrap();
        gate.release();
        assert_eq!(gate.stats().rejected_full, 1);
    }

    #[test]
    fn queue_wait_timeout_surfaces_cancelled() {
        let gate = Arc::new(FairGate::new(1, 4, Duration::from_millis(50)));
        gate.admit(Some("holder")).unwrap();
        let err = gate.admit(Some("impatient")).unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        assert!(err.to_string().contains("queue wait"), "{err}");
        assert_eq!(gate.stats().timed_out, 1);
        gate.release();
        // The gate stays healthy after a timeout.
        gate.admit(Some("next")).unwrap();
        gate.release();
    }

    #[test]
    fn grants_rotate_round_robin_across_tenants_not_fifo() {
        let gate = Arc::new(FairGate::new(1, 16, Duration::from_secs(30)));
        gate.admit(Some("holder")).unwrap();
        let order = Arc::new(Mutex::new(Vec::<String>::new()));
        let mut waiters = Vec::new();
        // Three tickets for tenant "burst" enqueue first, then one for "light":
        // strict FIFO would run light last; round-robin runs it second.
        for (i, tenant) in [(0, "burst"), (1, "burst"), (2, "burst"), (3, "light")] {
            let worker_gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            let name = tenant.to_string();
            waiters.push(std::thread::spawn(move || {
                worker_gate.admit(Some(&name)).unwrap();
                order
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(format!("{name}-{i}"));
                worker_gate.release();
            }));
            wait_for_queued(&gate, i + 1);
        }
        gate.release();
        for waiter in waiters {
            waiter.join().unwrap();
        }
        let order = order.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], "burst-0", "{order:?}");
        assert_eq!(
            order[1], "light-3",
            "round-robin must serve the light tenant before the burst backlog: {order:?}"
        );
        assert!(gate.wait_idle(Duration::from_secs(5)));
    }

    #[test]
    fn draining_refuses_new_and_queued_statements() {
        let gate = Arc::new(FairGate::new(1, 8, Duration::from_secs(30)));
        gate.admit(Some("running")).unwrap();
        let queued = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit(Some("queued")))
        };
        wait_for_queued(&gate, 1);
        gate.begin_drain();
        // The queued waiter fails typed; the running statement keeps its slot.
        let err = queued.join().unwrap().unwrap_err();
        assert!(err.is_admission(), "{err}");
        let err = gate.admit(Some("new")).unwrap_err();
        assert!(err.is_admission(), "{err}");
        assert!(!gate.wait_idle(Duration::from_millis(50)), "still running");
        gate.release();
        assert!(gate.wait_idle(Duration::from_secs(5)));
        assert_eq!(gate.stats().rejected_draining, 2);
    }
}
