//! # df-service — in-process multi-tenant query service
//!
//! The paper's §3.3 architecture separates the dataframe API from the execution
//! engine behind a narrow algebra waist. This crate adds the serving layer that
//! separation enables: **one** shared [`df_engine::engine::ModinEngine`] — one
//! thread pool, one spill-store memory budget — serving **many** concurrent
//! tenant sessions, in the owner/worker style: the [`QueryService`] owns the
//! engine, the cache and the run queue; each [`TenantSession`] is a cheap handle
//! a client thread drives.
//!
//! Three mechanisms make sharing safe:
//!
//! * **Admission control** ([`FairGate`]): at most `max_concurrent` statements
//!   execute at once; excess statements wait in a bounded run queue whose slots
//!   are granted *round-robin across tenants* (FIFO within a tenant), so one
//!   bursty tenant cannot starve the rest. Refusals are typed — queue full or
//!   draining is [`df_types::error::DfError::Admission`], a queue-wait timeout is
//!   [`df_types::error::DfError::Cancelled`].
//! * **A shared, single-flight result cache**
//!   ([`df_engine::cache::ResultCache`]): identical statements — same plan
//!   fingerprint — from *different* tenants execute once; the second tenant
//!   blocks on the first's in-flight production and is served the published
//!   handle as a shared hit. Entries are byte-budgeted with LRU eviction, and
//!   every hit/production is attributed per tenant.
//! * **Per-tenant quotas and graceful shutdown**: a tenant's retained cache
//!   bytes can be capped (violations surface as typed
//!   [`df_types::error::DfError::ResourceExhausted`] errors, contained to that
//!   tenant), and [`QueryService::shutdown`] drains in-flight statements under a
//!   grace period before firing the engine's cancel token at stragglers.
//!
//! ```
//! use df_core::algebra::{Aggregation, AlgebraExpr};
//! use df_core::dataframe::DataFrame;
//! use df_engine::engine::ModinConfig;
//! use df_service::{QueryService, ServiceConfig};
//! use df_types::cell::cell;
//! use std::time::Duration;
//!
//! let service = QueryService::start(
//!     ServiceConfig::default()
//!         .with_engine(ModinConfig::sequential().with_partition_size(16, 2))
//!         .with_max_concurrent(2),
//! )?;
//! let alpha = service.tenant("alpha");
//! let beta = service.tenant("beta");
//!
//! // The same statement (same plan fingerprint) from two tenants…
//! let frame = DataFrame::from_columns(
//!     vec!["k", "v"],
//!     vec![vec![cell(1), cell(1), cell(2)], vec![cell(10), cell(20), cell(30)]],
//! )?;
//! let expr = AlgebraExpr::literal(frame).group_by(
//!     vec![cell("k")],
//!     vec![Aggregation::count_rows()],
//!     false,
//! );
//! let first = alpha.query().collect(&expr)?;
//! let second = beta.query().collect(&expr)?;
//! assert!(first.same_data(&second));
//!
//! // …executed once: beta was served alpha's result as a shared cache hit.
//! let stats = service.stats();
//! let executions: u64 = stats.tenants.iter().map(|(_, s)| s.executions).sum();
//! assert_eq!(executions, 1);
//! assert_eq!(stats.cache.expect("shared cache").shared_hits, 1);
//!
//! // Drain and stop; later statements are refused with a typed error.
//! let report = service.shutdown(Duration::from_secs(5));
//! assert!(report.drained_cleanly);
//! # Ok::<(), df_types::error::DfError>(())
//! ```
//!
//! This is ROADMAP item 1 (multi-tenant serving) built on the PR-7 cancellation
//! and fault-tolerance machinery and the PR-9 shared cache/gate hooks in
//! [`df_engine::session::QuerySession`].

pub mod admission;
pub mod service;
pub mod tenant;

pub use admission::{AdmissionStats, FairGate};
pub use service::{QueryService, ServiceConfig, ServiceStats, ShutdownReport};
pub use tenant::TenantSession;
