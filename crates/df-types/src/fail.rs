//! Deterministic failpoint injection for fault-tolerance testing.
//!
//! Storage faults at scale are routine events to be recovered from, not crashes —
//! but they are rare and non-deterministic in the wild, so the recovery paths they
//! exercise rot unless they can be forced on demand. This module is a process-global
//! registry of *named failpoints*: fixed sites in the spill store, the CSV ingest
//! chunk reader and the shuffle exchange call [`failpoint`] with their site name, and
//! an armed registry answers with the fault to inject ([`FailAction`]) or `None`.
//!
//! Configuration comes from the `DF_FAILPOINTS` environment variable (read once, on
//! first use) or programmatically via [`configure`] (tests):
//!
//! ```text
//! DF_FAILPOINTS="spill.write=io_full@0.05;spill.read=corrupt@3"
//! ```
//!
//! Each clause is `<site>=<kind>@<trigger>`. Kinds: `io_full` (non-transient I/O
//! error), `io` / `io_transient` (transient I/O error — the retry policy's food),
//! `corrupt` (payload corruption, detected by the spill checksum), `missing` (the
//! backing file vanishes), `panic` (the worker panics — exercises panic isolation).
//! Triggers: a probability (`0.05`, drawn from a deterministic SplitMix64 stream
//! seeded by `DF_FAILPOINT_SEED`, default `0`) or a 1-based hit ordinal (`3` fires on
//! exactly the third evaluation of that site, so a retry succeeds).
//!
//! When nothing is configured the registry never arms: [`failpoint`] is a single
//! relaxed atomic load, so production paths pay no measurable cost.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::error::{DfError, DfResult};

/// The fault a tripped failpoint injects at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// A non-transient I/O failure (disk full): retrying does not help.
    IoFull,
    /// A transient I/O failure: eligible for retry with backoff.
    IoTransient,
    /// Payload corruption. Spill sites mangle the actual bytes so the checksum
    /// machinery is exercised end to end; sites without a payload surface
    /// [`DfError::SpillCorruption`] directly.
    Corrupt,
    /// The backing file disappears before the access.
    Missing,
    /// The worker panics (exercises `catch_unwind` isolation).
    Panic,
}

impl FailAction {
    /// Convert the action into the typed error it models at `site` — panicking for
    /// [`FailAction::Panic`], which is the point of that kind.
    pub fn into_error(self, site: &str) -> DfError {
        match self {
            FailAction::IoFull => {
                DfError::spill_io(site, "injected disk-full write failure", false)
            }
            FailAction::IoTransient => {
                DfError::spill_io(site, "injected transient i/o error", true)
            }
            FailAction::Missing => DfError::spill_io(site, "injected missing file", false),
            FailAction::Corrupt => DfError::spill_corruption(site, "injected corruption"),
            FailAction::Panic => panic!("failpoint {site}: injected panic"),
        }
    }
}

/// When a rule fires.
#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Fire with this probability per evaluation (deterministic seeded stream).
    Probability(f64),
    /// Fire on exactly the n-th evaluation of the site (1-based).
    Nth(u64),
}

#[derive(Debug)]
struct SiteRule {
    action: FailAction,
    trigger: Trigger,
    hits: u64,
}

#[derive(Debug, Default)]
struct Registry {
    rules: HashMap<String, SiteRule>,
    rng_state: u64,
}

impl Registry {
    fn evaluate(&mut self, site: &str) -> Option<FailAction> {
        let rule = self.rules.get_mut(site)?;
        rule.hits += 1;
        let fire = match rule.trigger {
            Trigger::Nth(n) => rule.hits == n,
            Trigger::Probability(p) => {
                // SplitMix64: deterministic given the seed and evaluation order.
                self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.rng_state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let unit = ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                unit < p
            }
        };
        fire.then_some(rule.action)
    }
}

/// Fast-path flag: true only while at least one rule is installed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Whether the one-time environment scan has run.
static ENV_SCANNED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn lock_registry() -> std::sync::MutexGuard<'static, Option<Registry>> {
    // The registry holds no invariants a panicked holder could break mid-update
    // that later readers cannot tolerate; recover the guard instead of poisoning
    // every subsequent failpoint evaluation.
    match REGISTRY.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn env_seed() -> u64 {
    std::env::var("DF_FAILPOINT_SEED")
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

fn scan_env() {
    if ENV_SCANNED.swap(true, Ordering::SeqCst) {
        return;
    }
    if let Ok(spec) = std::env::var("DF_FAILPOINTS") {
        if !spec.trim().is_empty() {
            // A malformed env spec is a test-harness bug; surface it loudly rather
            // than silently running without fault injection.
            if let Err(err) = configure_seeded(&spec, env_seed()) {
                panic!("invalid DF_FAILPOINTS: {err}");
            }
        }
    }
}

/// Evaluate the failpoint named `site`. Returns the fault to inject, or `None` —
/// always `None` (one relaxed load) when no registry is configured.
pub fn failpoint(site: &str) -> Option<FailAction> {
    if !ENV_SCANNED.load(Ordering::Relaxed) {
        scan_env();
    }
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    lock_registry().as_mut().and_then(|r| r.evaluate(site))
}

/// Evaluate `site` and convert any injected fault into a typed error (panicking for
/// the `panic` kind). The one-liner for sites without a payload to corrupt:
/// `fail::check("shuffle.exchange")?;`
pub fn check(site: &str) -> DfResult<()> {
    match failpoint(site) {
        Some(action) => Err(action.into_error(site)),
        None => Ok(()),
    }
}

/// Install a failpoint configuration programmatically (replacing any existing one),
/// seeded from `DF_FAILPOINT_SEED`. Spec syntax as in the module docs.
pub fn configure(spec: &str) -> Result<(), String> {
    configure_seeded(spec, env_seed())
}

/// [`configure`] with an explicit probability-stream seed.
pub fn configure_seeded(spec: &str, seed: u64) -> Result<(), String> {
    let mut rules = HashMap::new();
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (site, rest) = clause
            .split_once('=')
            .ok_or_else(|| format!("clause {clause:?}: expected <site>=<kind>@<trigger>"))?;
        let (kind, trigger_raw) = rest
            .split_once('@')
            .ok_or_else(|| format!("clause {clause:?}: expected <kind>@<trigger>"))?;
        let action = match kind.trim() {
            "io_full" => FailAction::IoFull,
            "io" | "io_transient" => FailAction::IoTransient,
            "corrupt" => FailAction::Corrupt,
            "missing" => FailAction::Missing,
            "panic" => FailAction::Panic,
            other => return Err(format!("clause {clause:?}: unknown kind {other:?}")),
        };
        let trigger_raw = trigger_raw.trim();
        let trigger = if trigger_raw.contains('.') {
            let p: f64 = trigger_raw
                .parse()
                .map_err(|_| format!("clause {clause:?}: bad probability {trigger_raw:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("clause {clause:?}: probability out of [0,1]"));
            }
            Trigger::Probability(p)
        } else {
            let n: u64 = trigger_raw
                .parse()
                .map_err(|_| format!("clause {clause:?}: bad trigger {trigger_raw:?}"))?;
            if n == 0 {
                return Err(format!("clause {clause:?}: hit ordinals are 1-based"));
            }
            Trigger::Nth(n)
        };
        rules.insert(
            site.trim().to_string(),
            SiteRule {
                action,
                trigger,
                hits: 0,
            },
        );
    }
    ENV_SCANNED.store(true, Ordering::SeqCst);
    let armed = !rules.is_empty();
    *lock_registry() = armed.then_some(Registry {
        rules,
        // Mix the seed so seed 0 still produces a non-degenerate stream.
        rng_state: seed ^ 0x51ed_5eed_0bad_f00d,
    });
    ARMED.store(armed, Ordering::SeqCst);
    Ok(())
}

/// Disarm every failpoint (tests call this after each chaos scenario).
pub fn clear() {
    ENV_SCANNED.store(true, Ordering::SeqCst);
    *lock_registry() = None;
    ARMED.store(false, Ordering::SeqCst);
}

/// True while any failpoint rule is installed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; these tests serialise on a local lock so they
    // cannot observe each other's configurations.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn unarmed_registry_is_silent() {
        let _g = guard();
        clear();
        assert!(!armed());
        assert_eq!(failpoint("spill.read"), None);
        assert!(check("spill.read").is_ok());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = guard();
        configure("spill.read=corrupt@3").unwrap();
        assert!(armed());
        assert_eq!(failpoint("spill.read"), None);
        assert_eq!(failpoint("spill.read"), None);
        assert_eq!(failpoint("spill.read"), Some(FailAction::Corrupt));
        assert_eq!(failpoint("spill.read"), None);
        // Unregistered sites never fire.
        assert_eq!(failpoint("spill.write"), None);
        clear();
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let _g = guard();
        let sample = |seed: u64| -> Vec<bool> {
            configure_seeded("spill.write=io@0.5", seed).unwrap();
            (0..64)
                .map(|_| failpoint("spill.write").is_some())
                .collect()
        };
        let a = sample(7);
        let b = sample(7);
        let c = sample(8);
        assert_eq!(a, b, "same seed must replay the same fault schedule");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.iter().any(|f| *f) && !a.iter().all(|f| *f));
        clear();
    }

    #[test]
    fn actions_map_to_the_typed_taxonomy() {
        let _g = guard();
        clear();
        assert!(matches!(
            FailAction::IoFull.into_error("s"),
            DfError::SpillIo {
                transient: false,
                ..
            }
        ));
        assert!(matches!(
            FailAction::IoTransient.into_error("s"),
            DfError::SpillIo {
                transient: true,
                ..
            }
        ));
        assert!(matches!(
            FailAction::Missing.into_error("s"),
            DfError::SpillIo { .. }
        ));
        assert!(matches!(
            FailAction::Corrupt.into_error("s"),
            DfError::SpillCorruption { .. }
        ));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = guard();
        for bad in [
            "spill.read",
            "spill.read=corrupt",
            "spill.read=frobnicate@1",
            "spill.read=corrupt@0",
            "spill.read=corrupt@1.5",
            "spill.read=corrupt@x",
        ] {
            assert!(configure(bad).is_err(), "accepted malformed spec {bad:?}");
        }
        // A rejected configure leaves the registry disarmed.
        assert!(!armed());
        // Empty clauses are tolerated (trailing semicolons).
        configure("spill.read=corrupt@1;;").unwrap();
        assert!(armed());
        clear();
    }
}
