//! Executor backend selection.
//!
//! The paper's core architectural claim is that the dataframe algebra decouples the
//! API from execution, so one logical plan can run on progressively more scalable
//! backends (§3.3 runs the Python implementation on Ray or Dask). [`BackendKind`]
//! names the execution backends this workspace ships: the in-process thread pool and
//! the process-parallel worker pool that exchanges bands over the checksummed spill
//! v4 wire format. It lives here — below the engine — so service- and engine-level
//! configuration can both speak it without depending on the execution crate.

use std::fmt;

/// Which execution backend runs per-band tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The in-process scoped thread pool: tasks run on worker threads sharing the
    /// engine's address space. The default.
    #[default]
    Threads,
    /// Process-parallel workers: band tasks are serialised and shipped to spawned
    /// `df-band-worker` processes over a pipe protocol whose payload is the
    /// checksummed spill v4 frame. Worker death surfaces as a typed error and the
    /// pool respawns, never hangs.
    Procs,
}

impl BackendKind {
    /// The canonical lowercase name, matching what `DF_BACKEND` accepts.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Threads => "threads",
            BackendKind::Procs => "procs",
        }
    }

    /// Parse a `DF_BACKEND`-style name (case-insensitive, surrounding whitespace
    /// ignored). Unknown names return `None` so callers can fall back explicitly.
    pub fn parse(raw: &str) -> Option<BackendKind> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "threads" => Some(BackendKind::Threads),
            "procs" => Some(BackendKind::Procs),
            _ => None,
        }
    }

    /// The backend selected by the `DF_BACKEND` environment variable (CI runs the
    /// test suite as a matrix over it), defaulting to [`BackendKind::Threads`] when
    /// unset or unrecognised.
    pub fn from_env() -> BackendKind {
        std::env::var("DF_BACKEND")
            .ok()
            .and_then(|raw| BackendKind::parse(&raw))
            .unwrap_or_default()
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in [BackendKind::Threads, BackendKind::Procs] {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn parse_is_forgiving_about_case_and_whitespace() {
        assert_eq!(BackendKind::parse(" Procs "), Some(BackendKind::Procs));
        assert_eq!(BackendKind::parse("THREADS"), Some(BackendKind::Threads));
        assert_eq!(BackendKind::parse("ray"), None);
        assert_eq!(BackendKind::parse(""), None);
    }

    #[test]
    fn default_is_threads() {
        assert_eq!(BackendKind::default(), BackendKind::Threads);
    }
}
