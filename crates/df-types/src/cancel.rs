//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between a controller (a
//! session timeout watchdog, a user pressing ctrl-C, a failing sibling task) and
//! the workers doing the actual computation. Workers poll [`CancelToken::is_cancelled`]
//! at task boundaries and bail out with [`DfError::Cancelled`]; nothing is ever
//! interrupted mid-write, so no lock is poisoned and no spill file is left half
//! framed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::{DfError, DfResult};

/// Shared cooperative cancellation flag. Clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; workers observe it at their next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Re-arm the token for the next statement (cancellation is per-statement,
    /// not a one-way door for the session).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::SeqCst);
    }

    /// Error out with [`DfError::Cancelled`] if cancellation was requested.
    pub fn check(&self, what: &str) -> DfResult<()> {
        if self.is_cancelled() {
            Err(DfError::Cancelled(what.to_string()))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag_and_reset_rearms() {
        let token = CancelToken::new();
        let observer = token.clone();
        assert!(!observer.is_cancelled());
        assert!(observer.check("band task").is_ok());

        token.cancel();
        assert!(observer.is_cancelled());
        match observer.check("band task") {
            Err(DfError::Cancelled(what)) => assert_eq!(what, "band task"),
            other => panic!("expected Cancelled, got {other:?}"),
        }

        token.reset();
        assert!(!observer.is_cancelled());
    }
}
