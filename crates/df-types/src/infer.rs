//! The schema induction function `S` and lazy-schema bookkeeping.
//!
//! Paper §4.2 defines `S : (Σ*)^m → Dom`, which maps an array of raw strings to a
//! domain, so that an unspecified entry of the schema vector `D_n` can be induced post
//! hoc from the column's contents. Paper §5.1 then argues that running `S` (and the
//! subsequent parsing) is one of the dominant costs in dataframe systems and must be
//! *deferred*, *cached* and *reused* whenever possible.
//!
//! This module provides:
//!
//! * [`induce_from_strings`] — the literal `S` over raw strings, used at CSV ingest.
//! * [`induce_domain`] — induction over already-typed cells (widening via
//!   [`Domain::unify`]), used when a derived column's domain must be recovered.
//! * [`InductionSummary`] — a *composable* form of the string scan: partitioned
//!   readers summarise each band independently, [`InductionSummary::merge`] the
//!   summaries in band order, and [`InductionSummary::finish`] to obtain exactly the
//!   domain a serial [`induce_from_strings`] over the concatenated column would have
//!   produced. This is what makes parallel CSV ingest's per-band schema induction
//!   reconcilable without a second scan over the data.
//! * [`SchemaSlot`] — a per-column slot that distinguishes *declared*, *induced* and
//!   *unknown* domains and counts how many induction scans were performed. Engines use
//!   the counter in the §5.1 ablation benchmark to show how many scans rewrite rules
//!   avoided.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cell::Cell;
use crate::domain::{is_null_token, Domain};

/// Global counter of schema-induction scans, used by the ablation harness to attribute
/// cost to `S` without invasive plumbing. Incremented by [`induce_from_strings`] and
/// [`induce_domain`].
static INDUCTION_SCANS: AtomicU64 = AtomicU64::new(0);

/// Number of induction scans performed by the whole process so far.
pub fn induction_scan_count() -> u64 {
    INDUCTION_SCANS.load(Ordering::Relaxed)
}

/// Reset the global induction scan counter (test / benchmark helper).
pub fn reset_induction_scan_count() {
    INDUCTION_SCANS.store(0, Ordering::Relaxed);
}

/// The schema induction function `S` over raw strings.
///
/// Scans the column once and returns the narrowest domain that every non-null entry
/// parses into, using the widening order bool → int → float → datetime → category/str.
/// A column whose non-null values are all drawn from a small set of repeated strings is
/// classified as `category` (mirroring pandas' heuristic use of categoricals); anything
/// else falls back to `Σ*`.
pub fn induce_from_strings<'a, I>(values: I) -> Domain
where
    I: IntoIterator<Item = &'a str>,
{
    INDUCTION_SCANS.fetch_add(1, Ordering::Relaxed);
    let mut candidate: Option<Domain> = None;
    let mut distinct: HashSet<&str> = HashSet::new();
    let mut non_null = 0usize;
    for raw in values {
        let trimmed = raw.trim();
        if is_null_token(trimmed) {
            continue;
        }
        non_null += 1;
        if distinct.len() < CATEGORY_DISTINCT_CAP {
            distinct.insert(trimmed);
        }
        let this = narrowest_domain_of_str(trimmed);
        candidate = Some(match candidate {
            None => this,
            Some(prev) => prev.unify(this),
        });
    }
    match candidate {
        None => Domain::Str,
        Some(Domain::Str) => {
            if non_null >= CATEGORY_MIN_ROWS
                && distinct.len() < CATEGORY_DISTINCT_CAP
                && distinct.len() * CATEGORY_RATIO < non_null
            {
                Domain::Category
            } else {
                Domain::Str
            }
        }
        Some(domain) => domain,
    }
}

/// Induction over already-typed cells: widen the natural domains of all non-null cells.
pub fn induce_domain<'a, I>(cells: I) -> Domain
where
    I: IntoIterator<Item = &'a Cell>,
{
    INDUCTION_SCANS.fetch_add(1, Ordering::Relaxed);
    let mut candidate: Option<Domain> = None;
    for cell in cells {
        let Some(domain) = cell.natural_domain() else {
            continue;
        };
        candidate = Some(match candidate {
            None => domain,
            Some(prev) => prev.unify(domain),
        });
    }
    candidate.unwrap_or(Domain::Str)
}

/// Maximum number of distinct values a string column may have to be induced as
/// `category` rather than `Σ*`.
const CATEGORY_DISTINCT_CAP: usize = 32;
/// Minimum number of non-null rows before the category heuristic applies.
const CATEGORY_MIN_ROWS: usize = 16;
/// A column is categorical when `distinct * RATIO < non_null`.
const CATEGORY_RATIO: usize = 4;

/// The narrowest domain a single raw string belongs to.
fn narrowest_domain_of_str(trimmed: &str) -> Domain {
    // Only the canonical spellings induce booleans. "Yes"/"No" style columns stay in
    // the string domains (pandas keeps them as Object too); Domain::Bool.parse still
    // accepts them when the user explicitly casts.
    if matches!(trimmed.to_ascii_lowercase().as_str(), "true" | "false") {
        return Domain::Bool;
    }
    if trimmed.parse::<i64>().is_ok() {
        return Domain::Int;
    }
    if trimmed.parse::<f64>().is_ok() {
        return Domain::Float;
    }
    if crate::domain::parse_datetime_seconds(trimmed).is_some() {
        return Domain::DateTime;
    }
    Domain::Str
}

/// Number of fold states an [`InductionSummary`] tracks: "no candidate yet" plus one
/// per domain in [`Domain::ALL`].
const STATE_COUNT: usize = 1 + Domain::ALL.len();

fn encode_state(domain: Option<Domain>) -> u8 {
    match domain {
        None => 0,
        Some(domain) => {
            1 + Domain::ALL
                .iter()
                .position(|d| *d == domain)
                .expect("Domain::ALL is exhaustive") as u8
        }
    }
}

fn decode_state(state: u8) -> Option<Domain> {
    match state {
        0 => None,
        index => Some(Domain::ALL[index as usize - 1]),
    }
}

/// A composable summary of the schema induction scan over one *band* of a column.
///
/// [`induce_from_strings`] is a left fold with [`Domain::unify`] plus a category
/// heuristic over whole-column statistics (distinct count, non-null count). Neither
/// piece can be reconstructed from per-band *domains*: `unify` is not associative
/// (`(bool ⊔ datetime) ⊔ int ≠ bool ⊔ (datetime ⊔ int)`), and a band can fail the
/// category thresholds that the whole column passes. A partitioned reader therefore
/// summarises each band as
///
/// * the fold's **transition map** — for every possible incoming widening state, the
///   state after folding this band's values (left folds compose exactly:
///   `fold(s, A ++ B) = fold(fold(s, A), B)`);
/// * the **distinct-value set**, capped at the category threshold (the cap preserves
///   the only fact the heuristic reads — whether the count stays below it);
/// * the **non-null count** (additive).
///
/// Merging summaries in band order and finishing reproduces the serial scan's answer
/// bit-for-bit, which is what lets parallel CSV ingest keep its promise of being
/// cell-for-cell identical to the serial reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InductionSummary {
    /// `transition[s]` is the fold state after scanning the summarised values starting
    /// from incoming state `s` (see [`encode_state`]).
    transition: [u8; STATE_COUNT],
    /// Distinct trimmed non-null values, capped at the category distinct threshold.
    distinct: HashSet<String>,
    /// Non-null values seen.
    non_null: usize,
}

impl Default for InductionSummary {
    fn default() -> Self {
        InductionSummary::empty()
    }
}

impl InductionSummary {
    /// The identity summary (a band with no values).
    pub fn empty() -> Self {
        let mut transition = [0u8; STATE_COUNT];
        for (index, state) in transition.iter_mut().enumerate() {
            *state = index as u8;
        }
        InductionSummary {
            transition,
            distinct: HashSet::new(),
            non_null: 0,
        }
    }

    /// Summarise one band of raw strings (the per-band half of `S`). Counts as one
    /// induction scan, like the serial [`induce_from_strings`] it stands in for.
    pub fn of_strings<'a, I>(values: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        INDUCTION_SCANS.fetch_add(1, Ordering::Relaxed);
        let mut summary = InductionSummary::empty();
        for raw in values {
            let trimmed = raw.trim();
            if is_null_token(trimmed) {
                continue;
            }
            summary.non_null += 1;
            if summary.distinct.len() < CATEGORY_DISTINCT_CAP {
                summary.distinct.insert(trimmed.to_string());
            }
            let this = narrowest_domain_of_str(trimmed);
            for state in summary.transition.iter_mut() {
                *state = encode_state(Some(match decode_state(*state) {
                    None => this,
                    Some(prev) => prev.unify(this),
                }));
            }
        }
        summary
    }

    /// Append a later band's summary: `self` then `later`, in column order.
    pub fn merge(&mut self, later: &InductionSummary) {
        for state in self.transition.iter_mut() {
            *state = later.transition[*state as usize];
        }
        // The capped union detects "distinct >= cap" exactly: a band that hit the cap
        // contributes cap elements on its own, and uncapped bands carry their exact
        // sets, so the union's size crosses the cap iff the true count does.
        for value in &later.distinct {
            if self.distinct.len() >= CATEGORY_DISTINCT_CAP {
                break;
            }
            self.distinct.insert(value.clone());
        }
        self.non_null += later.non_null;
    }

    /// The domain the serial scan would have induced for the concatenated column.
    pub fn finish(&self) -> Domain {
        match decode_state(self.transition[0]) {
            None => Domain::Str,
            Some(Domain::Str) => {
                if self.non_null >= CATEGORY_MIN_ROWS
                    && self.distinct.len() < CATEGORY_DISTINCT_CAP
                    && self.distinct.len() * CATEGORY_RATIO < self.non_null
                {
                    Domain::Category
                } else {
                    Domain::Str
                }
            }
            Some(domain) => domain,
        }
    }
}

/// Per-column schema slot implementing the paper's "lazily induced schema".
///
/// A slot is in one of three states: *declared* (the user or an upstream operator fixed
/// the domain — no induction needed), *induced* (a previous scan computed and cached the
/// domain), or *unknown* (induction will run on first demand). The slot also records how
/// many times induction ran for it, which the §5.1 ablation reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaSlot {
    declared: Option<Domain>,
    induced: Option<Domain>,
    inductions: u64,
}

impl SchemaSlot {
    /// A slot with no domain information; induction will run on demand.
    pub fn unknown() -> Self {
        SchemaSlot::default()
    }

    /// A slot whose domain was declared a priori (relational-style) or fixed by an
    /// operator with a known output type (e.g. a MAP whose UDF always returns ints).
    pub fn declared(domain: Domain) -> Self {
        SchemaSlot {
            declared: Some(domain),
            induced: None,
            inductions: 0,
        }
    }

    /// The domain if it is already known (declared or previously induced), without
    /// triggering an induction scan.
    pub fn known(&self) -> Option<Domain> {
        self.declared.or(self.induced)
    }

    /// True when resolving the domain would require running `S`.
    pub fn needs_induction(&self) -> bool {
        self.known().is_none()
    }

    /// Resolve the domain, running the provided induction thunk if necessary and
    /// caching its result (paper §5.1.2: reuse of type information).
    pub fn resolve_with(&mut self, induce: impl FnOnce() -> Domain) -> Domain {
        if let Some(domain) = self.known() {
            return domain;
        }
        let domain = induce();
        self.induced = Some(domain);
        self.inductions += 1;
        domain
    }

    /// Forget any induced (but not declared) domain; used after operators that may have
    /// changed the column's contents in a way the rewrite rules could not reason about.
    pub fn invalidate(&mut self) {
        self.induced = None;
    }

    /// Declare the domain, overriding any cached induction.
    pub fn declare(&mut self, domain: Domain) {
        self.declared = Some(domain);
        self.induced = None;
    }

    /// Cache an induction result computed externally — e.g. a partitioned reader's
    /// cross-band reconciliation, where the scan ran over summaries rather than
    /// through [`SchemaSlot::resolve_with`]. The slot ends up exactly as if it had
    /// run `S` itself: the domain is *induced*, not declared, so a later content
    /// mutation invalidates it like any other cached induction. A declared slot is
    /// left untouched.
    pub fn note_induced(&mut self, domain: Domain) {
        if self.declared.is_none() {
            self.induced = Some(domain);
            self.inductions += 1;
        }
    }

    /// Number of induction scans this slot has performed.
    pub fn induction_count(&self) -> u64 {
        self.inductions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::cell;

    #[test]
    fn induces_int_float_bool_columns() {
        assert_eq!(induce_from_strings(["1", "2", "3"]), Domain::Int);
        assert_eq!(induce_from_strings(["1", "2.5"]), Domain::Float);
        assert_eq!(induce_from_strings(["true", "false", "true"]), Domain::Bool);
        assert_eq!(
            induce_from_strings(["2020-01-01", "2020-02-01"]),
            Domain::DateTime
        );
    }

    #[test]
    fn nulls_are_ignored_and_all_null_defaults_to_str() {
        assert_eq!(induce_from_strings(["", "NA", "3"]), Domain::Int);
        assert_eq!(induce_from_strings(["", "NA", "null"]), Domain::Str);
    }

    #[test]
    fn mixed_numeric_and_text_widen_to_str() {
        assert_eq!(induce_from_strings(["1", "abc"]), Domain::Str);
        assert_eq!(induce_from_strings(["2.5", "2020-01-01"]), Domain::Str);
    }

    #[test]
    fn repeated_small_vocabulary_becomes_category() {
        let values: Vec<String> = (0..40)
            .map(|i| if i % 2 == 0 { "SUV" } else { "sedan" }.to_string())
            .collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        assert_eq!(induce_from_strings(refs), Domain::Category);
    }

    #[test]
    fn large_vocabulary_stays_str() {
        let values: Vec<String> = (0..200).map(|i| format!("value-{i}")).collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        assert_eq!(induce_from_strings(refs), Domain::Str);
    }

    #[test]
    fn induce_domain_over_cells_widens() {
        assert_eq!(induce_domain(&[cell(1), cell(2.5)]), Domain::Float);
        assert_eq!(induce_domain(&[cell(true), cell(false)]), Domain::Bool);
        assert_eq!(induce_domain(&[Cell::Null, Cell::Null]), Domain::Str);
        assert_eq!(induce_domain(&[cell(1), cell("x")]), Domain::Str);
    }

    #[test]
    fn schema_slot_declared_skips_induction() {
        let mut slot = SchemaSlot::declared(Domain::Int);
        assert!(!slot.needs_induction());
        let domain = slot.resolve_with(|| panic!("induction must not run"));
        assert_eq!(domain, Domain::Int);
        assert_eq!(slot.induction_count(), 0);
    }

    #[test]
    fn schema_slot_caches_induced_domain() {
        let mut slot = SchemaSlot::unknown();
        assert!(slot.needs_induction());
        assert_eq!(slot.resolve_with(|| Domain::Float), Domain::Float);
        // Second resolve must not run the thunk again.
        assert_eq!(slot.resolve_with(|| panic!("cached")), Domain::Float);
        assert_eq!(slot.induction_count(), 1);
        slot.invalidate();
        assert!(slot.needs_induction());
    }

    #[test]
    fn schema_slot_declare_overrides_cache() {
        let mut slot = SchemaSlot::unknown();
        slot.resolve_with(|| Domain::Str);
        slot.declare(Domain::Int);
        assert_eq!(slot.known(), Some(Domain::Int));
    }

    #[test]
    fn induction_counter_increments() {
        reset_induction_scan_count();
        let before = induction_scan_count();
        induce_from_strings(["1", "2"]);
        induce_domain(&[cell(1)]);
        assert_eq!(induction_scan_count(), before + 2);
    }

    /// Split `values` at every position (and at a few multi-way splits) and check the
    /// merged summaries agree with the serial scan.
    fn assert_summaries_match_serial(values: &[&str]) {
        let serial = induce_from_strings(values.iter().copied());
        for split in 0..=values.len() {
            let mut merged = InductionSummary::of_strings(values[..split].iter().copied());
            merged.merge(&InductionSummary::of_strings(
                values[split..].iter().copied(),
            ));
            assert_eq!(
                merged.finish(),
                serial,
                "two-way split at {split} diverged for {values:?}"
            );
        }
        for chunk in [1usize, 2, 3, 7] {
            let mut merged = InductionSummary::empty();
            for band in values.chunks(chunk.max(1)) {
                merged.merge(&InductionSummary::of_strings(band.iter().copied()));
            }
            assert_eq!(
                merged.finish(),
                serial,
                "{chunk}-chunk split diverged for {values:?}"
            );
        }
    }

    #[test]
    fn summaries_reproduce_the_serial_scan_on_order_sensitive_inputs() {
        // unify is not associative: bool ⊔ datetime = Σ* but (bool ⊔ int) ⊔ datetime
        // = int. A naive per-band-domain join gets these wrong at some split.
        assert_summaries_match_serial(&["true", "2020-01-01", "7"]);
        assert_summaries_match_serial(&["2020-01-01", "true", "7"]);
        assert_summaries_match_serial(&["7", "true", "2020-01-01"]);
        assert_summaries_match_serial(&["true", "7", "2020-01-01", "false"]);
        assert_summaries_match_serial(&["1", "2.5", "x", "3"]);
        assert_summaries_match_serial(&["", "NA", "3", "null", "4"]);
        assert_summaries_match_serial(&[]);
        assert_summaries_match_serial(&["", "NA"]);
    }

    #[test]
    fn summaries_reproduce_the_category_heuristic_across_bands() {
        // 40 rows of a 2-value vocabulary: the whole column is Category, but every
        // band of < CATEGORY_MIN_ROWS rows on its own would induce Σ*.
        let values: Vec<String> = (0..40)
            .map(|i| if i % 2 == 0 { "SUV" } else { "sedan" }.to_string())
            .collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        assert_summaries_match_serial(&refs);
        // A large vocabulary must stay Σ* no matter how the cap interacts with bands.
        let many: Vec<String> = (0..100).map(|i| format!("value-{i}")).collect();
        let refs: Vec<&str> = many.iter().map(String::as_str).collect();
        assert_summaries_match_serial(&refs);
        // Exactly the cap, and one below it.
        for distinct in [CATEGORY_DISTINCT_CAP - 1, CATEGORY_DISTINCT_CAP] {
            let values: Vec<String> = (0..distinct * 5)
                .map(|i| format!("v{}", i % distinct))
                .collect();
            let refs: Vec<&str> = values.iter().map(String::as_str).collect();
            assert_summaries_match_serial(&refs);
        }
    }

    #[test]
    fn summary_randomised_splits_match_serial() {
        // A deterministic pseudo-random sweep over mixed vocabularies: every domain
        // class appears, nulls included, across many band layouts.
        let vocab = [
            "1",
            "-3",
            "2.5",
            "true",
            "false",
            "2020-01-01",
            "x",
            "NA",
            "",
            "0042",
            "1e3",
            "inf",
            "sedan",
            "SUV",
        ];
        let mut state = 0x2545f4914f6cdd1du64;
        for len in [0usize, 1, 2, 5, 16, 33, 64, 200] {
            let values: Vec<&str> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    vocab[(state >> 33) as usize % vocab.len()]
                })
                .collect();
            assert_summaries_match_serial(&values);
        }
    }
}
