//! The schema induction function `S` and lazy-schema bookkeeping.
//!
//! Paper §4.2 defines `S : (Σ*)^m → Dom`, which maps an array of raw strings to a
//! domain, so that an unspecified entry of the schema vector `D_n` can be induced post
//! hoc from the column's contents. Paper §5.1 then argues that running `S` (and the
//! subsequent parsing) is one of the dominant costs in dataframe systems and must be
//! *deferred*, *cached* and *reused* whenever possible.
//!
//! This module provides:
//!
//! * [`induce_from_strings`] — the literal `S` over raw strings, used at CSV ingest.
//! * [`induce_domain`] — induction over already-typed cells (widening via
//!   [`Domain::unify`]), used when a derived column's domain must be recovered.
//! * [`SchemaSlot`] — a per-column slot that distinguishes *declared*, *induced* and
//!   *unknown* domains and counts how many induction scans were performed. Engines use
//!   the counter in the §5.1 ablation benchmark to show how many scans rewrite rules
//!   avoided.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cell::Cell;
use crate::domain::{is_null_token, Domain};

/// Global counter of schema-induction scans, used by the ablation harness to attribute
/// cost to `S` without invasive plumbing. Incremented by [`induce_from_strings`] and
/// [`induce_domain`].
static INDUCTION_SCANS: AtomicU64 = AtomicU64::new(0);

/// Number of induction scans performed by the whole process so far.
pub fn induction_scan_count() -> u64 {
    INDUCTION_SCANS.load(Ordering::Relaxed)
}

/// Reset the global induction scan counter (test / benchmark helper).
pub fn reset_induction_scan_count() {
    INDUCTION_SCANS.store(0, Ordering::Relaxed);
}

/// The schema induction function `S` over raw strings.
///
/// Scans the column once and returns the narrowest domain that every non-null entry
/// parses into, using the widening order bool → int → float → datetime → category/str.
/// A column whose non-null values are all drawn from a small set of repeated strings is
/// classified as `category` (mirroring pandas' heuristic use of categoricals); anything
/// else falls back to `Σ*`.
pub fn induce_from_strings<'a, I>(values: I) -> Domain
where
    I: IntoIterator<Item = &'a str>,
{
    INDUCTION_SCANS.fetch_add(1, Ordering::Relaxed);
    let mut candidate: Option<Domain> = None;
    let mut distinct: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut non_null = 0usize;
    for raw in values {
        let trimmed = raw.trim();
        if is_null_token(trimmed) {
            continue;
        }
        non_null += 1;
        if distinct.len() < CATEGORY_DISTINCT_CAP {
            distinct.insert(trimmed);
        }
        let this = narrowest_domain_of_str(trimmed);
        candidate = Some(match candidate {
            None => this,
            Some(prev) => prev.unify(this),
        });
    }
    match candidate {
        None => Domain::Str,
        Some(Domain::Str) => {
            if non_null >= CATEGORY_MIN_ROWS
                && distinct.len() < CATEGORY_DISTINCT_CAP
                && distinct.len() * CATEGORY_RATIO < non_null
            {
                Domain::Category
            } else {
                Domain::Str
            }
        }
        Some(domain) => domain,
    }
}

/// Induction over already-typed cells: widen the natural domains of all non-null cells.
pub fn induce_domain<'a, I>(cells: I) -> Domain
where
    I: IntoIterator<Item = &'a Cell>,
{
    INDUCTION_SCANS.fetch_add(1, Ordering::Relaxed);
    let mut candidate: Option<Domain> = None;
    for cell in cells {
        let Some(domain) = cell.natural_domain() else {
            continue;
        };
        candidate = Some(match candidate {
            None => domain,
            Some(prev) => prev.unify(domain),
        });
    }
    candidate.unwrap_or(Domain::Str)
}

/// Maximum number of distinct values a string column may have to be induced as
/// `category` rather than `Σ*`.
const CATEGORY_DISTINCT_CAP: usize = 32;
/// Minimum number of non-null rows before the category heuristic applies.
const CATEGORY_MIN_ROWS: usize = 16;
/// A column is categorical when `distinct * RATIO < non_null`.
const CATEGORY_RATIO: usize = 4;

/// The narrowest domain a single raw string belongs to.
fn narrowest_domain_of_str(trimmed: &str) -> Domain {
    // Only the canonical spellings induce booleans. "Yes"/"No" style columns stay in
    // the string domains (pandas keeps them as Object too); Domain::Bool.parse still
    // accepts them when the user explicitly casts.
    if matches!(trimmed.to_ascii_lowercase().as_str(), "true" | "false") {
        return Domain::Bool;
    }
    if trimmed.parse::<i64>().is_ok() {
        return Domain::Int;
    }
    if trimmed.parse::<f64>().is_ok() {
        return Domain::Float;
    }
    if crate::domain::parse_datetime_seconds(trimmed).is_some() {
        return Domain::DateTime;
    }
    Domain::Str
}

/// Per-column schema slot implementing the paper's "lazily induced schema".
///
/// A slot is in one of three states: *declared* (the user or an upstream operator fixed
/// the domain — no induction needed), *induced* (a previous scan computed and cached the
/// domain), or *unknown* (induction will run on first demand). The slot also records how
/// many times induction ran for it, which the §5.1 ablation reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaSlot {
    declared: Option<Domain>,
    induced: Option<Domain>,
    inductions: u64,
}

impl SchemaSlot {
    /// A slot with no domain information; induction will run on demand.
    pub fn unknown() -> Self {
        SchemaSlot::default()
    }

    /// A slot whose domain was declared a priori (relational-style) or fixed by an
    /// operator with a known output type (e.g. a MAP whose UDF always returns ints).
    pub fn declared(domain: Domain) -> Self {
        SchemaSlot {
            declared: Some(domain),
            induced: None,
            inductions: 0,
        }
    }

    /// The domain if it is already known (declared or previously induced), without
    /// triggering an induction scan.
    pub fn known(&self) -> Option<Domain> {
        self.declared.or(self.induced)
    }

    /// True when resolving the domain would require running `S`.
    pub fn needs_induction(&self) -> bool {
        self.known().is_none()
    }

    /// Resolve the domain, running the provided induction thunk if necessary and
    /// caching its result (paper §5.1.2: reuse of type information).
    pub fn resolve_with(&mut self, induce: impl FnOnce() -> Domain) -> Domain {
        if let Some(domain) = self.known() {
            return domain;
        }
        let domain = induce();
        self.induced = Some(domain);
        self.inductions += 1;
        domain
    }

    /// Forget any induced (but not declared) domain; used after operators that may have
    /// changed the column's contents in a way the rewrite rules could not reason about.
    pub fn invalidate(&mut self) {
        self.induced = None;
    }

    /// Declare the domain, overriding any cached induction.
    pub fn declare(&mut self, domain: Domain) {
        self.declared = Some(domain);
        self.induced = None;
    }

    /// Number of induction scans this slot has performed.
    pub fn induction_count(&self) -> u64 {
        self.inductions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::cell;

    #[test]
    fn induces_int_float_bool_columns() {
        assert_eq!(induce_from_strings(["1", "2", "3"]), Domain::Int);
        assert_eq!(induce_from_strings(["1", "2.5"]), Domain::Float);
        assert_eq!(induce_from_strings(["true", "false", "true"]), Domain::Bool);
        assert_eq!(
            induce_from_strings(["2020-01-01", "2020-02-01"]),
            Domain::DateTime
        );
    }

    #[test]
    fn nulls_are_ignored_and_all_null_defaults_to_str() {
        assert_eq!(induce_from_strings(["", "NA", "3"]), Domain::Int);
        assert_eq!(induce_from_strings(["", "NA", "null"]), Domain::Str);
    }

    #[test]
    fn mixed_numeric_and_text_widen_to_str() {
        assert_eq!(induce_from_strings(["1", "abc"]), Domain::Str);
        assert_eq!(induce_from_strings(["2.5", "2020-01-01"]), Domain::Str);
    }

    #[test]
    fn repeated_small_vocabulary_becomes_category() {
        let values: Vec<String> = (0..40)
            .map(|i| if i % 2 == 0 { "SUV" } else { "sedan" }.to_string())
            .collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        assert_eq!(induce_from_strings(refs), Domain::Category);
    }

    #[test]
    fn large_vocabulary_stays_str() {
        let values: Vec<String> = (0..200).map(|i| format!("value-{i}")).collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        assert_eq!(induce_from_strings(refs), Domain::Str);
    }

    #[test]
    fn induce_domain_over_cells_widens() {
        assert_eq!(induce_domain(&[cell(1), cell(2.5)]), Domain::Float);
        assert_eq!(induce_domain(&[cell(true), cell(false)]), Domain::Bool);
        assert_eq!(induce_domain(&[Cell::Null, Cell::Null]), Domain::Str);
        assert_eq!(induce_domain(&[cell(1), cell("x")]), Domain::Str);
    }

    #[test]
    fn schema_slot_declared_skips_induction() {
        let mut slot = SchemaSlot::declared(Domain::Int);
        assert!(!slot.needs_induction());
        let domain = slot.resolve_with(|| panic!("induction must not run"));
        assert_eq!(domain, Domain::Int);
        assert_eq!(slot.induction_count(), 0);
    }

    #[test]
    fn schema_slot_caches_induced_domain() {
        let mut slot = SchemaSlot::unknown();
        assert!(slot.needs_induction());
        assert_eq!(slot.resolve_with(|| Domain::Float), Domain::Float);
        // Second resolve must not run the thunk again.
        assert_eq!(slot.resolve_with(|| panic!("cached")), Domain::Float);
        assert_eq!(slot.induction_count(), 1);
        slot.invalidate();
        assert!(slot.needs_induction());
    }

    #[test]
    fn schema_slot_declare_overrides_cache() {
        let mut slot = SchemaSlot::unknown();
        slot.resolve_with(|| Domain::Str);
        slot.declare(Domain::Int);
        assert_eq!(slot.known(), Some(Domain::Int));
    }

    #[test]
    fn induction_counter_increments() {
        reset_induction_scan_count();
        let before = induction_scan_count();
        induce_from_strings(["1", "2"]);
        induce_domain(&[cell(1)]);
        assert_eq!(induction_scan_count(), before + 2);
    }
}
