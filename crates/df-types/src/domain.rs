//! The domain set `Dom` and per-domain parsing functions.
//!
//! Paper §4.2: *"The elements in the dataframe come from a known set of domains
//! `Dom = {Σ*, int, float, bool, category}` … Each domain contains a distinguished null
//! value … Each domain `dom_i` also includes a parsing function `p_i : Σ* → dom_i`."*
//!
//! [`Domain`] enumerates that set (plus `datetime`, which the paper notes is "common in
//! practice", and `composite` for `collect` results). [`Domain::parse`] is the parsing
//! function `p_i`; [`Domain::validate`] checks whether an already-typed cell belongs to
//! the domain; [`Domain::unify`] computes the least common domain of two candidates,
//! which the schema induction function uses to widen as it scans a column.

use std::fmt;

use crate::cell::Cell;
use crate::error::{DfError, DfResult};

/// One element of the paper's domain set `Dom`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// `bool`: true/false.
    Bool,
    /// `int`: 64-bit signed integers.
    Int,
    /// `float`: 64-bit IEEE floats.
    Float,
    /// `datetime`: seconds since the Unix epoch, parsed from ISO-8601-like strings.
    DateTime,
    /// `category`: a string domain with a (small) finite set of distinct values. Values
    /// are stored as strings; the distinction from `Σ*` matters for induction and for
    /// one-hot encoding (`get_dummies`).
    Category,
    /// `Σ*`: the uninterpreted string domain (pandas `Object`), the default.
    Str,
    /// Composite cells produced by GROUPBY `collect` (§4.3).
    Composite,
}

impl Domain {
    /// All domains, in widening order (narrowest first). `unify` relies on this order.
    pub const ALL: [Domain; 7] = [
        Domain::Bool,
        Domain::Int,
        Domain::Float,
        Domain::DateTime,
        Domain::Category,
        Domain::Str,
        Domain::Composite,
    ];

    /// The canonical lower-case name of the domain, used in error messages and in the
    /// printed schema.
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Bool => "bool",
            Domain::Int => "int",
            Domain::Float => "float",
            Domain::DateTime => "datetime",
            Domain::Category => "category",
            Domain::Str => "str",
            Domain::Composite => "composite",
        }
    }

    /// Parse a domain from its [`Domain::name`] (the inverse of `name`, useful when a
    /// schema is declared externally, e.g. `TRANSPOSE(df, [myschema])` in §5.1.2).
    pub fn from_name(name: &str) -> Option<Domain> {
        match name.trim().to_ascii_lowercase().as_str() {
            "bool" | "boolean" => Some(Domain::Bool),
            "int" | "int64" | "integer" => Some(Domain::Int),
            "float" | "float64" | "double" => Some(Domain::Float),
            "datetime" | "datetime64" | "timestamp" => Some(Domain::DateTime),
            "category" | "categorical" => Some(Domain::Category),
            "str" | "string" | "object" => Some(Domain::Str),
            "composite" | "list" => Some(Domain::Composite),
            _ => None,
        }
    }

    /// True when members of the domain support arithmetic (fields in the matrix sense).
    /// Homogeneous dataframes over a numeric domain are the paper's *matrix dataframes*.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Domain::Bool | Domain::Int | Domain::Float)
    }

    /// The parsing function `p_i : Σ* → dom_i`.
    ///
    /// The empty string and the conventional `NA`/`null`/`NaN` spellings parse to the
    /// distinguished null value in every domain. A string that cannot be interpreted in
    /// the domain yields a [`DfError::ParseError`].
    pub fn parse(&self, raw: &str) -> DfResult<Cell> {
        let trimmed = raw.trim();
        if is_null_token(trimmed) {
            return Ok(Cell::Null);
        }
        match self {
            Domain::Str | Domain::Category => Ok(Cell::Str(trimmed.to_string())),
            Domain::Bool => match trimmed.to_ascii_lowercase().as_str() {
                "true" | "t" | "yes" | "y" | "1" => Ok(Cell::Bool(true)),
                "false" | "f" | "no" | "n" | "0" => Ok(Cell::Bool(false)),
                _ => Err(parse_err(self, raw)),
            },
            Domain::Int => trimmed
                .parse::<i64>()
                .map(Cell::Int)
                .map_err(|_| parse_err(self, raw)),
            Domain::Float => trimmed
                .parse::<f64>()
                .map(Cell::Float)
                .map_err(|_| parse_err(self, raw)),
            Domain::DateTime => parse_datetime_seconds(trimmed)
                .map(Cell::Int)
                .ok_or_else(|| parse_err(self, raw)),
            Domain::Composite => Err(parse_err(self, raw)),
        }
    }

    /// Check whether an already-typed cell is a member of the domain (nulls belong to
    /// every domain). Used when a schema is declared rather than induced.
    pub fn validate(&self, cell: &Cell) -> bool {
        matches!(
            (self, cell),
            (_, Cell::Null)
                | (Domain::Str, Cell::Str(_))
                | (Domain::Category, Cell::Str(_))
                | (Domain::Int, Cell::Int(_))
                | (Domain::DateTime, Cell::Int(_))
                | (Domain::Float, Cell::Float(_) | Cell::Int(_))
                | (Domain::Bool, Cell::Bool(_))
                | (Domain::Composite, Cell::List(_))
        )
    }

    /// Coerce a typed cell into this domain if a lossless (or conventional) conversion
    /// exists; otherwise report a type mismatch. This is what `astype` uses.
    pub fn coerce(&self, cell: &Cell) -> DfResult<Cell> {
        if cell.is_null() {
            return Ok(Cell::Null);
        }
        match self {
            Domain::Str | Domain::Category => Ok(Cell::Str(cell.to_raw_string())),
            Domain::Int | Domain::DateTime => match cell {
                Cell::Int(v) => Ok(Cell::Int(*v)),
                Cell::Bool(b) => Ok(Cell::Int(i64::from(*b))),
                Cell::Float(v) if v.fract() == 0.0 => Ok(Cell::Int(*v as i64)),
                Cell::Str(s) => self.parse(s),
                other => Err(DfError::type_mismatch(self.name(), other)),
            },
            Domain::Float => match cell {
                Cell::Float(v) => Ok(Cell::Float(*v)),
                Cell::Int(v) => Ok(Cell::Float(*v as f64)),
                Cell::Bool(b) => Ok(Cell::Float(if *b { 1.0 } else { 0.0 })),
                Cell::Str(s) => Domain::Float.parse(s),
                other => Err(DfError::type_mismatch(self.name(), other)),
            },
            Domain::Bool => match cell {
                Cell::Bool(b) => Ok(Cell::Bool(*b)),
                Cell::Int(v) => Ok(Cell::Bool(*v != 0)),
                Cell::Str(s) => Domain::Bool.parse(s),
                other => Err(DfError::type_mismatch(self.name(), other)),
            },
            Domain::Composite => match cell {
                Cell::List(_) => Ok(cell.clone()),
                other => Ok(Cell::List(vec![other.clone()])),
            },
        }
    }

    /// The least common domain containing both operands, used by schema induction as it
    /// widens over a column, and by `UNION` when aligning schemas.
    pub fn unify(self, other: Domain) -> Domain {
        use Domain::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (Bool, Int) | (Int, Bool) => Int,
            (Bool, Float) | (Float, Bool) => Float,
            (Int, Float) | (Float, Int) => Float,
            (Category, Str) | (Str, Category) => Str,
            (DateTime, Int) | (Int, DateTime) => Int,
            (Composite, _) | (_, Composite) => Composite,
            _ => Str,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn parse_err(domain: &Domain, value: &str) -> DfError {
    DfError::ParseError {
        domain: domain.name().to_string(),
        value: value.to_string(),
    }
}

/// The spellings of the distinguished null value accepted by every parsing function.
pub fn is_null_token(raw: &str) -> bool {
    matches!(
        raw.trim().to_ascii_lowercase().as_str(),
        "" | "na" | "n/a" | "nan" | "null" | "none"
    )
}

/// Parse an ISO-8601-like date or datetime (`YYYY-MM-DD` or `YYYY-MM-DD HH:MM:SS`,
/// with `T` accepted as the separator) into seconds since the Unix epoch.
///
/// The implementation is a small proleptic-Gregorian converter — the workspace has no
/// external chrono dependency — sufficient for the taxi workload timestamps.
pub fn parse_datetime_seconds(raw: &str) -> Option<i64> {
    let raw = raw.trim();
    let (date_part, time_part) = match raw.split_once(['T', ' ']) {
        Some((d, t)) => (d, Some(t)),
        None => (raw, None),
    };
    let mut date_iter = date_part.split('-');
    let year: i64 = date_iter.next()?.parse().ok()?;
    let month: i64 = date_iter.next()?.parse().ok()?;
    let day: i64 = date_iter.next()?.parse().ok()?;
    if date_iter.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    let days = days_from_civil(year, month, day);
    let mut seconds = days * 86_400;
    if let Some(time) = time_part {
        let mut time_iter = time.trim_end_matches('Z').split(':');
        let hour: i64 = time_iter.next()?.parse().ok()?;
        let minute: i64 = time_iter.next().unwrap_or("0").parse().ok()?;
        let second: f64 = time_iter.next().unwrap_or("0").parse().ok()?;
        if !(0..24).contains(&hour) || !(0..60).contains(&minute) || !(0.0..60.0).contains(&second)
        {
            return None;
        }
        seconds += hour * 3_600 + minute * 60 + second as i64;
    }
    Some(seconds)
}

/// Render seconds-since-epoch back into `YYYY-MM-DD HH:MM:SS` (the inverse of
/// [`parse_datetime_seconds`], used by the CSV writer and by `Display` paths).
pub fn format_datetime_seconds(secs: i64) -> String {
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let (year, month, day) = civil_from_days(days);
    let hour = rem / 3_600;
    let minute = (rem % 3_600) / 60;
    let second = rem % 60;
    format!("{year:04}-{month:02}-{day:02} {hour:02}:{minute:02}:{second:02}")
}

/// Days from civil date (Howard Hinnant's algorithm), proleptic Gregorian calendar.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = (mp + 2) % 12 + 1;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::cell;

    #[test]
    fn names_round_trip() {
        for domain in Domain::ALL {
            assert_eq!(Domain::from_name(domain.name()), Some(domain));
        }
        assert_eq!(Domain::from_name("Object"), Some(Domain::Str));
        assert_eq!(Domain::from_name("int64"), Some(Domain::Int));
        assert_eq!(Domain::from_name("wat"), None);
    }

    #[test]
    fn parse_int_float_bool() {
        assert_eq!(Domain::Int.parse("42").unwrap(), cell(42));
        assert_eq!(Domain::Float.parse("2.5").unwrap(), cell(2.5));
        assert_eq!(Domain::Bool.parse("Yes").unwrap(), cell(true));
        assert_eq!(Domain::Bool.parse("0").unwrap(), cell(false));
        assert!(Domain::Int.parse("2.5").is_err());
        assert!(Domain::Bool.parse("maybe").is_err());
    }

    #[test]
    fn null_tokens_parse_to_null_in_every_domain() {
        for domain in [Domain::Int, Domain::Float, Domain::Bool, Domain::Str] {
            for token in ["", "NA", "NaN", "null", "None", " n/a "] {
                assert_eq!(
                    domain.parse(token).unwrap(),
                    Cell::Null,
                    "{domain} {token:?}"
                );
            }
        }
    }

    #[test]
    fn parse_string_is_identity_on_trimmed_input() {
        assert_eq!(Domain::Str.parse(" 12MP ").unwrap(), cell("12MP"));
        assert_eq!(Domain::Category.parse("Yes").unwrap(), cell("Yes"));
    }

    #[test]
    fn datetime_round_trip() {
        let secs = parse_datetime_seconds("2019-06-15 13:45:30").unwrap();
        assert_eq!(format_datetime_seconds(secs), "2019-06-15 13:45:30");
        assert_eq!(parse_datetime_seconds("1970-01-01").unwrap(), 0);
        assert_eq!(parse_datetime_seconds("1969-12-31"), Some(-86_400));
        assert!(parse_datetime_seconds("not-a-date").is_none());
        assert!(parse_datetime_seconds("2019-13-01").is_none());
    }

    #[test]
    fn datetime_domain_parses_to_epoch_int() {
        assert_eq!(
            Domain::DateTime.parse("1970-01-02").unwrap(),
            Cell::Int(86_400)
        );
    }

    #[test]
    fn validate_accepts_members_and_nulls() {
        assert!(Domain::Int.validate(&cell(3)));
        assert!(Domain::Float.validate(&cell(3)));
        assert!(Domain::Int.validate(&Cell::Null));
        assert!(!Domain::Int.validate(&cell("3")));
        assert!(Domain::Composite.validate(&Cell::List(vec![])));
    }

    #[test]
    fn coerce_widens_and_parses() {
        assert_eq!(Domain::Float.coerce(&cell(3)).unwrap(), cell(3.0));
        assert_eq!(Domain::Int.coerce(&cell(3.0)).unwrap(), cell(3));
        assert_eq!(Domain::Str.coerce(&cell(3)).unwrap(), cell("3"));
        assert_eq!(Domain::Int.coerce(&cell("7")).unwrap(), cell(7));
        assert_eq!(Domain::Bool.coerce(&cell(1)).unwrap(), cell(true));
        assert!(Domain::Int.coerce(&cell(2.5)).is_err());
    }

    #[test]
    fn unify_widens_towards_str() {
        assert_eq!(Domain::Int.unify(Domain::Float), Domain::Float);
        assert_eq!(Domain::Bool.unify(Domain::Int), Domain::Int);
        assert_eq!(Domain::Int.unify(Domain::Str), Domain::Str);
        assert_eq!(Domain::Category.unify(Domain::Str), Domain::Str);
        assert_eq!(Domain::Float.unify(Domain::Float), Domain::Float);
        assert_eq!(Domain::Composite.unify(Domain::Int), Domain::Composite);
    }

    #[test]
    fn numeric_classification() {
        assert!(Domain::Int.is_numeric());
        assert!(Domain::Float.is_numeric());
        assert!(Domain::Bool.is_numeric());
        assert!(!Domain::Str.is_numeric());
        assert!(!Domain::DateTime.is_numeric());
    }
}
