//! Ordered row / column label vectors.
//!
//! Paper §4.2: rows and columns are symmetric; both can be referenced positionally
//! (`iloc`) or by name (`loc`), labels come from the same domain set as the data, may
//! contain duplicates or nulls ("labels are not like primary keys"), and the default
//! label of a row is simply its order rank. [`Labels`] captures all of that: an ordered
//! `Vec<Cell>` plus a lazily built name → positions index for named lookup.

use std::collections::HashMap;
use std::fmt;

use crate::cell::{Cell, CellKey};
use crate::error::{DfError, DfResult};

/// An ordered vector of labels for one axis of a dataframe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Labels {
    values: Vec<Cell>,
}

/// Convenience alias used in operator signatures.
pub type LabelVec = Vec<Cell>;

/// Labels from anything convertible to cells (string names, integers, …).
impl<T: Into<Cell>> FromIterator<T> for Labels {
    fn from_iter<I: IntoIterator<Item = T>>(values: I) -> Self {
        Labels {
            values: values.into_iter().map(Into::into).collect(),
        }
    }
}

impl Labels {
    /// Labels from an explicit vector of cells.
    pub fn new(values: Vec<Cell>) -> Self {
        Labels { values }
    }

    /// The default labels for `len` rows: positional ranks `0..len` (paper §4.3,
    /// FROMLABELS resets row labels to "the order rank of each row").
    pub fn positional(len: usize) -> Self {
        Labels {
            values: (0..len).map(|i| Cell::Int(i as i64)).collect(),
        }
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the axis is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the underlying ordered labels.
    pub fn as_slice(&self) -> &[Cell] {
        &self.values
    }

    /// Approximate heap + inline size of the label vector in bytes. Feeds the same
    /// memory accounting as [`Cell::approx_size_bytes`], so the storage layer's spill
    /// budget sees label weight too (labels share the data's domain set and can be
    /// arbitrarily large strings).
    pub fn approx_size_bytes(&self) -> usize {
        self.values.iter().map(Cell::approx_size_bytes).sum()
    }

    /// Owning iterator over the labels.
    pub fn into_vec(self) -> Vec<Cell> {
        self.values
    }

    /// The label at a position (positional notation).
    pub fn get(&self, index: usize) -> Option<&Cell> {
        self.values.get(index)
    }

    /// All positions whose label equals `name` (named notation). Duplicates are allowed,
    /// so this may return more than one position.
    pub fn positions_of(&self, name: &Cell) -> Vec<usize> {
        let key = name.group_key();
        self.values
            .iter()
            .enumerate()
            .filter(|(_, l)| l.group_key() == key)
            .map(|(i, _)| i)
            .collect()
    }

    /// The first position whose label equals `name`, or an error naming the axis.
    pub fn position_of(&self, name: &Cell, axis: &'static str) -> DfResult<usize> {
        let key = name.group_key();
        self.values
            .iter()
            .position(|l| l.group_key() == key)
            .ok_or_else(|| match axis {
                "row" => DfError::row_not_found(name),
                _ => DfError::column_not_found(name),
            })
    }

    /// Build a lookup index from label key to positions. Engines build this once per
    /// axis when they expect many named lookups (joins on labels, `reindex_like`).
    pub fn index(&self) -> HashMap<CellKey, Vec<usize>> {
        let mut map: HashMap<CellKey, Vec<usize>> = HashMap::with_capacity(self.values.len());
        for (i, label) in self.values.iter().enumerate() {
            map.entry(label.group_key()).or_default().push(i);
        }
        map
    }

    /// True when every label is distinct (R requires unique row names; pandas does not —
    /// paper §7). Exposed so engines can validate R-style restrictions when asked.
    pub fn all_unique(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.values.len());
        self.values.iter().all(|l| seen.insert(l.group_key()))
    }

    /// Append another label vector (UNION keeps the left argument's labels first).
    pub fn concat(&self, other: &Labels) -> Labels {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Labels { values }
    }

    /// Select a subset of labels by position, preserving the given order.
    pub fn select(&self, positions: &[usize]) -> DfResult<Labels> {
        let mut values = Vec::with_capacity(positions.len());
        for &p in positions {
            let cell = self.values.get(p).ok_or(DfError::IndexOutOfBounds {
                axis: "label",
                index: p,
                len: self.values.len(),
            })?;
            values.push(cell.clone());
        }
        Ok(Labels { values })
    }

    /// Replace the label at `index`.
    pub fn set(&mut self, index: usize, label: Cell) -> DfResult<()> {
        let len = self.values.len();
        match self.values.get_mut(index) {
            Some(slot) => {
                *slot = label;
                Ok(())
            }
            None => Err(DfError::IndexOutOfBounds {
                axis: "label",
                index,
                len,
            }),
        }
    }

    /// Push a label at the end of the axis.
    pub fn push(&mut self, label: Cell) {
        self.values.push(label);
    }

    /// Remove and return the label at `index`.
    pub fn remove(&mut self, index: usize) -> DfResult<Cell> {
        if index >= self.values.len() {
            return Err(DfError::IndexOutOfBounds {
                axis: "label",
                index,
                len: self.values.len(),
            });
        }
        Ok(self.values.remove(index))
    }

    /// Render labels as display strings (used by the tabular view).
    pub fn display_strings(&self) -> Vec<String> {
        self.values.iter().map(|c| c.to_string()).collect()
    }
}

impl fmt::Display for Labels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.display_strings().join(", "))
    }
}

impl From<Vec<Cell>> for Labels {
    fn from(values: Vec<Cell>) -> Self {
        Labels::new(values)
    }
}

impl From<Vec<&str>> for Labels {
    fn from(values: Vec<&str>) -> Self {
        Labels::from_iter(values)
    }
}

impl From<Vec<String>> for Labels {
    fn from(values: Vec<String>) -> Self {
        Labels::from_iter(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::cell;

    #[test]
    fn positional_labels_are_order_ranks() {
        let labels = Labels::positional(3);
        assert_eq!(labels.as_slice(), &[cell(0), cell(1), cell(2)]);
        assert_eq!(labels.len(), 3);
        assert!(!labels.is_empty());
    }

    #[test]
    fn named_lookup_finds_positions_and_errors() {
        let labels = Labels::from(vec!["a", "b", "a"]);
        assert_eq!(labels.positions_of(&cell("a")), vec![0, 2]);
        assert_eq!(labels.position_of(&cell("b"), "column").unwrap(), 1);
        let err = labels.position_of(&cell("z"), "column").unwrap_err();
        assert!(matches!(err, DfError::ColumnNotFound(_)));
        let err = labels.position_of(&cell("z"), "row").unwrap_err();
        assert!(matches!(err, DfError::RowNotFound(_)));
    }

    #[test]
    fn duplicates_and_uniqueness() {
        assert!(!Labels::from(vec!["a", "a"]).all_unique());
        assert!(Labels::from(vec!["a", "b"]).all_unique());
    }

    #[test]
    fn index_groups_duplicate_labels() {
        let labels = Labels::from(vec!["x", "y", "x"]);
        let index = labels.index();
        assert_eq!(index[&cell("x").group_key()], vec![0, 2]);
        assert_eq!(index[&cell("y").group_key()], vec![1]);
    }

    #[test]
    fn select_preserves_requested_order_and_bounds_checks() {
        let labels = Labels::from(vec!["a", "b", "c"]);
        let picked = labels.select(&[2, 0]).unwrap();
        assert_eq!(picked.as_slice(), &[cell("c"), cell("a")]);
        assert!(labels.select(&[5]).is_err());
    }

    #[test]
    fn mutation_helpers() {
        let mut labels = Labels::from(vec!["a", "b"]);
        labels.set(0, cell("z")).unwrap();
        labels.push(cell("c"));
        assert_eq!(labels.remove(1).unwrap(), cell("b"));
        assert_eq!(labels.as_slice(), &[cell("z"), cell("c")]);
        assert!(labels.set(9, cell("x")).is_err());
        assert!(labels.remove(9).is_err());
    }

    #[test]
    fn concat_keeps_left_first() {
        let left = Labels::from(vec!["a"]);
        let right = Labels::from(vec!["b", "c"]);
        assert_eq!(
            left.concat(&right).as_slice(),
            &[cell("a"), cell("b"), cell("c")]
        );
    }

    #[test]
    fn labels_may_be_integers_or_nulls() {
        let labels = Labels::new(vec![cell(2017), Cell::Null]);
        assert_eq!(labels.positions_of(&Cell::Null), vec![1]);
        assert_eq!(labels.to_string(), "[2017, NA]");
    }
}
