//! # df-types
//!
//! Foundational value types for the dataframe data model of *Towards Scalable
//! Dataframe Systems* (Petersohn et al., VLDB 2020), §4.2.
//!
//! The paper defines a dataframe as a tuple `(A_mn, R_m, C_n, D_n)` whose entries come
//! from a known set of domains `Dom = {Σ*, int, float, bool, category, …}`, each with a
//! distinguished null value and a parsing function `p_i : Σ* → dom_i`, together with a
//! *schema induction function* `S : (Σ*)^m → Dom` that assigns a domain to a column of
//! raw strings after the fact. This crate provides exactly those building blocks:
//!
//! * [`cell::Cell`] — a single dataframe entry (data *or* label; the paper requires
//!   labels to come from the same domain set as data).
//! * [`domain::Domain`] — the domain set `Dom` and its parsing functions `p_i`.
//! * [`infer`] — the schema induction function `S` and helpers for deferring / caching
//!   induction (paper §5.1).
//! * [`mod@column`] — typed columnar storage (flat `i64`/`f64`/`bool`/string buffers
//!   with validity bitmaps, dictionary-encoded categoricals) used by the engine's
//!   column blocks, spill format v3 and the vectorized kernels.
//! * [`labels`] — ordered label vectors with positional and named lookup.
//! * [`error`] — the shared error type used across the workspace, including the
//!   fault taxonomy (`SpillIo` / `SpillCorruption` / `WorkerPanic` / `Cancelled`).
//! * [`fail`], [`retry`], [`cancel`] — the fault-tolerance toolkit: deterministic
//!   failpoint injection (`DF_FAILPOINTS`), capped-exponential retry for transient
//!   storage faults, and cooperative cancellation tokens.
//!
//! Everything here is engine-agnostic: the reference executor (`df-core`), the
//! pandas-like baseline (`df-baseline`) and the scalable engine (`df-engine`) all share
//! these definitions, which is what lets the benchmark harness compare them fairly.

pub mod backend;
pub mod cancel;
pub mod cell;
pub mod column;
pub mod domain;
pub mod error;
pub mod fail;
pub mod infer;
pub mod labels;
pub mod retry;
pub mod striped;

pub use cancel::CancelToken;
pub use cell::{cell, Cell};
pub use column::{columnar_enabled, set_columnar_enabled, ColumnData, Validity};
pub use domain::Domain;
pub use error::{DfError, DfResult};
pub use fail::FailAction;
pub use infer::{induce_domain, induce_from_strings, SchemaSlot};
pub use labels::{LabelVec, Labels};
pub use retry::RetryPolicy;
pub use striped::StripedU64;
