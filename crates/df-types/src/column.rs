//! Typed columnar storage: the physical layer behind the engine's column blocks.
//!
//! The paper's data model (§4.2) stores the array `A_mn` logically; *how* a block of
//! it is laid out in memory is an engine concern. The original representation kept
//! every block as row-addressable `Vec<Cell>` columns — one tagged enum per entry, so
//! every kernel paid an enum-discriminant branch (and often a heap chase) per cell.
//! [`ColumnData`] is the typed alternative: a column whose domain is known (or
//! uniformly inducible) is stored as a flat `Vec<i64>` / `Vec<f64>` / `Vec<bool>` /
//! `Vec<String>` buffer plus a [`Validity`] bitmap for nulls, and `category` columns
//! are dictionary-encoded (the dictionary is exactly the distinct set the schema
//! induction summary already discovered). Columns that are still mixed — raw `Σ*`
//! data mid-parse, composite `collect` results — fall back to the tagged-cell form,
//! so the conversion is always *lossless*: `from_cells` → [`ColumnData::to_cells`]
//! round-trips cell-for-cell.
//!
//! The typed kernels (predicate masks, groupby accumulators, sort comparators, hash
//! streams) live next to their row-oriented counterparts in `df-core::ops`; this
//! module provides the storage plus the hash/equality primitives that must stay
//! byte-identical to [`Cell::hash_key`](crate::cell::Cell::hash_key) so bucket
//! assignment is the same on both paths.
//!
//! The columnar path is on by default and can be disabled globally — per process via
//! the `DF_COLUMNAR` environment variable (`0`/`false`/`off`), or programmatically
//! via [`set_columnar_enabled`] (used by the differential tests and benches to run
//! both paths in one process).

use std::hash::Hasher;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::cell::Cell;
use crate::domain::Domain;

// ---------------------------------------------------------------- global switch

/// 0 = not overridden (use the environment default), 1 = forced off, 2 = forced on.
static COLUMNAR_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("DF_COLUMNAR").as_deref(),
            Ok("0") | Ok("false") | Ok("off") | Ok("no")
        )
    })
}

/// True when the typed columnar storage + kernels are enabled (the default). The
/// row-oriented tagged-cell path is kept as the reference both for fallback cases
/// and for differential testing.
pub fn columnar_enabled() -> bool {
    match COLUMNAR_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_default(),
    }
}

/// Force the columnar path on or off for this process, overriding `DF_COLUMNAR`.
/// The differential suite and the columnar-vs-row bench arms call this to exercise
/// both paths in one process; results must be cell-for-cell identical either way.
pub fn set_columnar_enabled(enabled: bool) {
    COLUMNAR_OVERRIDE.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------- validity bitmap

/// A null bitmap: bit `i` is set when row `i` holds a value (Arrow's convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validity {
    words: Vec<u64>,
    len: usize,
}

impl Validity {
    /// A bitmap of `len` rows, all valid.
    pub fn new_all_valid(len: usize) -> Validity {
        let full_words = len / 64;
        let mut words = vec![u64::MAX; full_words];
        let rem = len % 64;
        if rem > 0 {
            words.push((1u64 << rem) - 1);
        }
        Validity { words, len }
    }

    /// Rebuild a bitmap from its raw words (the spill read path).
    pub fn from_words(words: Vec<u64>, len: usize) -> Validity {
        Validity { words, len }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether row `i` holds a value.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Mark row `i` valid or null.
    #[inline]
    pub fn set(&mut self, i: usize, valid: bool) {
        if valid {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of valid (non-null) rows.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every covered row is valid.
    pub fn all_valid(&self) -> bool {
        self.count_valid() == self.len
    }

    /// The raw bitmap words (the spill write path).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Bytes the bitmap occupies — what honest memory accounting charges.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

// ---------------------------------------------------------------- column data

/// One column of a block in its physical layout.
///
/// Typed variants hold a flat value buffer (null slots hold an arbitrary default)
/// plus a [`Validity`] bitmap; `Dict` is a dictionary-encoded string column; `Cells`
/// is the lossless tagged-cell fallback for columns no typed layout can represent
/// exactly (mixed domains, composite `collect` values, `Int`/`Float` mixtures).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Tagged-cell fallback: exactly the row-oriented representation.
    Cells(Vec<Cell>),
    /// 64-bit integers (also `datetime`, which parses to epoch seconds).
    Int {
        /// Value buffer; null slots hold 0.
        values: Vec<i64>,
        /// Null bitmap.
        validity: Validity,
    },
    /// 64-bit floats, bit-exact (`-0.0` and NaN payloads survive the round trip).
    Float {
        /// Value buffer; null slots hold 0.0.
        values: Vec<f64>,
        /// Null bitmap.
        validity: Validity,
    },
    /// Booleans.
    Bool {
        /// Value buffer; null slots hold `false`.
        values: Vec<bool>,
        /// Null bitmap.
        validity: Validity,
    },
    /// Strings (`Σ*` raw data or parsed `str` columns).
    Str {
        /// Value buffer; null slots hold the empty string.
        values: Vec<String>,
        /// Null bitmap.
        validity: Validity,
    },
    /// Dictionary-encoded categoricals: `codes[i]` indexes into `dict`. The
    /// dictionary is the induction summary's distinct set in first-occurrence order.
    Dict {
        /// Per-row dictionary codes; null slots hold 0.
        codes: Vec<u32>,
        /// The distinct values, in first-occurrence order.
        dict: Vec<String>,
        /// Null bitmap.
        validity: Validity,
    },
}

impl ColumnData {
    /// Encode a slice of tagged cells into the tightest lossless layout, using the
    /// column's (known) domain as a hint — `category` selects dictionary encoding.
    pub fn from_cells(cells: &[Cell], domain: Option<&Domain>) -> ColumnData {
        ColumnData::from_cells_typed(cells, domain)
            .unwrap_or_else(|| ColumnData::Cells(cells.to_vec()))
    }

    /// Like [`ColumnData::from_cells`] but returns `None` instead of falling back to
    /// the tagged-cell clone when no typed layout is lossless. The kernels use this
    /// as a cheap probe: a failed probe costs one counting pass and zero copies, so a
    /// mixed column just stays on the row-oriented reference path.
    pub fn from_cells_typed(cells: &[Cell], domain: Option<&Domain>) -> Option<ColumnData> {
        let n = cells.len();
        let (mut ints, mut floats, mut bools, mut strs, mut others, mut nulls) = (0, 0, 0, 0, 0, 0);
        for cell in cells {
            match cell {
                Cell::Null => nulls += 1,
                Cell::Int(_) => ints += 1,
                Cell::Float(_) => floats += 1,
                Cell::Bool(_) => bools += 1,
                Cell::Str(_) => strs += 1,
                Cell::List(_) => others += 1,
            }
        }
        let valued = n - nulls;
        if others > 0 || valued == 0 && n > 0 && domain.is_none() {
            return None;
        }
        let uniform = |count: usize| count == valued;
        let hinted = |d: Domain| valued == 0 && domain == Some(&d);
        if uniform(ints) && ints > 0 || hinted(Domain::Int) || hinted(Domain::DateTime) {
            let mut values = vec![0i64; n];
            let mut validity = Validity::new_all_valid(n);
            for (i, cell) in cells.iter().enumerate() {
                match cell {
                    Cell::Int(v) => values[i] = *v,
                    _ => validity.set(i, false),
                }
            }
            return Some(ColumnData::Int { values, validity });
        }
        if uniform(floats) && floats > 0 || hinted(Domain::Float) {
            let mut values = vec![0f64; n];
            let mut validity = Validity::new_all_valid(n);
            for (i, cell) in cells.iter().enumerate() {
                match cell {
                    Cell::Float(v) => values[i] = *v,
                    _ => validity.set(i, false),
                }
            }
            return Some(ColumnData::Float { values, validity });
        }
        if uniform(bools) && bools > 0 || hinted(Domain::Bool) {
            let mut values = vec![false; n];
            let mut validity = Validity::new_all_valid(n);
            for (i, cell) in cells.iter().enumerate() {
                match cell {
                    Cell::Bool(b) => values[i] = *b,
                    _ => validity.set(i, false),
                }
            }
            return Some(ColumnData::Bool { values, validity });
        }
        if uniform(strs) {
            if domain == Some(&Domain::Category) {
                let mut dict: Vec<String> = Vec::new();
                let mut lookup: std::collections::HashMap<&str, u32> =
                    std::collections::HashMap::new();
                let mut codes = vec![0u32; n];
                let mut validity = Validity::new_all_valid(n);
                for (i, cell) in cells.iter().enumerate() {
                    match cell {
                        Cell::Str(s) => {
                            codes[i] = *lookup.entry(s.as_str()).or_insert_with(|| {
                                dict.push(s.clone());
                                (dict.len() - 1) as u32
                            });
                        }
                        _ => validity.set(i, false),
                    }
                }
                drop(lookup);
                return Some(ColumnData::Dict {
                    codes,
                    dict,
                    validity,
                });
            }
            let mut values = vec![String::new(); n];
            let mut validity = Validity::new_all_valid(n);
            for (i, cell) in cells.iter().enumerate() {
                match cell {
                    Cell::Str(s) => values[i] = s.clone(),
                    _ => validity.set(i, false),
                }
            }
            return Some(ColumnData::Str { values, validity });
        }
        None
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Cells(cells) => cells.len(),
            ColumnData::Int { validity, .. }
            | ColumnData::Float { validity, .. }
            | ColumnData::Bool { validity, .. }
            | ColumnData::Str { validity, .. }
            | ColumnData::Dict { validity, .. } => validity.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the column uses a typed buffer (not the tagged-cell fallback).
    pub fn is_typed(&self) -> bool {
        !matches!(self, ColumnData::Cells(_))
    }

    /// The domain the physical layout pins down, if any.
    pub fn natural_domain(&self) -> Option<Domain> {
        match self {
            ColumnData::Cells(_) => None,
            ColumnData::Int { .. } => Some(Domain::Int),
            ColumnData::Float { .. } => Some(Domain::Float),
            ColumnData::Bool { .. } => Some(Domain::Bool),
            ColumnData::Str { .. } => Some(Domain::Str),
            ColumnData::Dict { .. } => Some(Domain::Category),
        }
    }

    /// Materialise row `i` back into a tagged cell.
    pub fn get(&self, i: usize) -> Cell {
        match self {
            ColumnData::Cells(cells) => cells[i].clone(),
            ColumnData::Int { values, validity } => {
                if validity.get(i) {
                    Cell::Int(values[i])
                } else {
                    Cell::Null
                }
            }
            ColumnData::Float { values, validity } => {
                if validity.get(i) {
                    Cell::Float(values[i])
                } else {
                    Cell::Null
                }
            }
            ColumnData::Bool { values, validity } => {
                if validity.get(i) {
                    Cell::Bool(values[i])
                } else {
                    Cell::Null
                }
            }
            ColumnData::Str { values, validity } => {
                if validity.get(i) {
                    Cell::Str(values[i].clone())
                } else {
                    Cell::Null
                }
            }
            ColumnData::Dict {
                codes,
                dict,
                validity,
            } => {
                if validity.get(i) {
                    Cell::Str(dict[codes[i] as usize].clone())
                } else {
                    Cell::Null
                }
            }
        }
    }

    /// Whether row `i` is null.
    #[inline]
    pub fn is_null_at(&self, i: usize) -> bool {
        match self {
            ColumnData::Cells(cells) => cells[i].is_null(),
            ColumnData::Int { validity, .. }
            | ColumnData::Float { validity, .. }
            | ColumnData::Bool { validity, .. }
            | ColumnData::Str { validity, .. }
            | ColumnData::Dict { validity, .. } => !validity.get(i),
        }
    }

    /// Row `i` widened to a float, matching [`Cell::as_f64`] exactly (ints and
    /// booleans widen; nulls and strings do not). This is the accumulator feed for
    /// the vectorized SUM / MEAN / STD kernels.
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        match self {
            ColumnData::Cells(cells) => cells[i].as_f64(),
            ColumnData::Int { values, validity } => validity.get(i).then(|| values[i] as f64),
            ColumnData::Float { values, validity } => validity.get(i).then(|| values[i]),
            ColumnData::Bool { values, validity } => {
                validity.get(i).then(|| if values[i] { 1.0 } else { 0.0 })
            }
            ColumnData::Str { .. } | ColumnData::Dict { .. } => None,
        }
    }

    /// Ordering of rows `i` and `j` under [`Cell::total_cmp`], evaluated straight off
    /// the typed buffers (the vectorized SORT comparator). Matches the reference
    /// ordering exactly, including its quirks: numeric comparisons go through `f64`
    /// (`partial_cmp` falling back to `Equal` for NaN) and nulls sort last.
    #[inline]
    pub fn cmp_rows(&self, i: usize, j: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn numeric(a: Option<f64>, b: Option<f64>) -> Ordering {
            match (a, b) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => Ordering::Equal,
            }
        }
        match self {
            ColumnData::Cells(cells) => cells[i].total_cmp(&cells[j]),
            ColumnData::Int { values, validity } => numeric(
                validity.get(i).then(|| values[i] as f64),
                validity.get(j).then(|| values[j] as f64),
            ),
            ColumnData::Float { values, validity } => numeric(
                validity.get(i).then(|| values[i]),
                validity.get(j).then(|| values[j]),
            ),
            ColumnData::Bool { values, validity } => match (validity.get(i), validity.get(j)) {
                (true, true) => values[i].cmp(&values[j]),
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => Ordering::Equal,
            },
            ColumnData::Str { values, validity } => match (validity.get(i), validity.get(j)) {
                (true, true) => values[i].cmp(&values[j]),
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => Ordering::Equal,
            },
            ColumnData::Dict {
                codes,
                dict,
                validity,
            } => match (validity.get(i), validity.get(j)) {
                (true, true) => dict[codes[i] as usize].cmp(&dict[codes[j] as usize]),
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => Ordering::Equal,
            },
        }
    }

    /// Decode the whole column back into tagged cells (the lossless inverse of
    /// [`ColumnData::from_cells`]).
    pub fn to_cells(&self) -> Vec<Cell> {
        match self {
            ColumnData::Cells(cells) => cells.clone(),
            _ => (0..self.len()).map(|i| self.get(i)).collect(),
        }
    }

    /// Feed row `i`'s group-key form into a hasher, byte-identical to
    /// [`Cell::hash_key`] — bucket assignment must not depend on the layout.
    pub fn hash_value_into<H: Hasher>(&self, i: usize, state: &mut H) {
        match self {
            ColumnData::Cells(cells) => cells[i].hash_key(state),
            ColumnData::Int { values, validity } => {
                if validity.get(i) {
                    state.write_u8(2);
                    state.write_i64(values[i]);
                } else {
                    state.write_u8(0);
                }
            }
            ColumnData::Float { values, validity } => {
                if validity.get(i) {
                    let v = values[i];
                    let normalised = if v.is_nan() {
                        f64::NAN.to_bits()
                    } else if v == 0.0 {
                        0.0_f64.to_bits()
                    } else {
                        v.to_bits()
                    };
                    state.write_u8(3);
                    state.write_u64(normalised);
                } else {
                    state.write_u8(0);
                }
            }
            ColumnData::Bool { values, validity } => {
                if validity.get(i) {
                    state.write_u8(4);
                    state.write_u8(u8::from(values[i]));
                } else {
                    state.write_u8(0);
                }
            }
            ColumnData::Str { values, validity } => {
                if validity.get(i) {
                    hash_str(&values[i], state);
                } else {
                    state.write_u8(0);
                }
            }
            ColumnData::Dict {
                codes,
                dict,
                validity,
            } => {
                if validity.get(i) {
                    hash_str(&dict[codes[i] as usize], state);
                } else {
                    state.write_u8(0);
                }
            }
        }
    }

    /// Group-key equality of rows `i` and `j` of this column, matching
    /// [`Cell::key_eq`] (all NaNs equal, `-0.0 == 0.0`).
    pub fn key_eq_rows(&self, i: usize, j: usize) -> bool {
        match self {
            ColumnData::Cells(cells) => cells[i].key_eq(&cells[j]),
            ColumnData::Int { values, validity } => match (validity.get(i), validity.get(j)) {
                (true, true) => values[i] == values[j],
                (a, b) => a == b,
            },
            ColumnData::Float { values, validity } => match (validity.get(i), validity.get(j)) {
                (true, true) => {
                    let (a, b) = (values[i], values[j]);
                    (a.is_nan() && b.is_nan()) || a == b
                }
                (a, b) => a == b,
            },
            ColumnData::Bool { values, validity } => match (validity.get(i), validity.get(j)) {
                (true, true) => values[i] == values[j],
                (a, b) => a == b,
            },
            ColumnData::Str { values, validity } => match (validity.get(i), validity.get(j)) {
                (true, true) => values[i] == values[j],
                (a, b) => a == b,
            },
            ColumnData::Dict {
                codes, validity, ..
            } => match (validity.get(i), validity.get(j)) {
                // Codes are deduplicated, so code equality is value equality.
                (true, true) => codes[i] == codes[j],
                (a, b) => a == b,
            },
        }
    }

    /// Honest memory accounting: value buffer + validity bitmap + dictionary heap.
    pub fn approx_size_bytes(&self) -> usize {
        match self {
            ColumnData::Cells(cells) => cells.iter().map(Cell::approx_size_bytes).sum(),
            ColumnData::Int { values, validity } => {
                values.len() * std::mem::size_of::<i64>() + validity.size_bytes()
            }
            ColumnData::Float { values, validity } => {
                values.len() * std::mem::size_of::<f64>() + validity.size_bytes()
            }
            ColumnData::Bool { values, validity } => values.len() + validity.size_bytes(),
            ColumnData::Str { values, validity } => {
                values.len() * std::mem::size_of::<String>()
                    + values.iter().map(String::len).sum::<usize>()
                    + validity.size_bytes()
            }
            ColumnData::Dict {
                codes,
                dict,
                validity,
            } => {
                codes.len() * std::mem::size_of::<u32>()
                    + dict.len() * std::mem::size_of::<String>()
                    + dict.iter().map(String::len).sum::<usize>()
                    + validity.size_bytes()
            }
        }
    }
}

#[inline]
fn hash_str<H: Hasher>(s: &str, state: &mut H) {
    state.write_u8(1);
    state.write(s.as_bytes());
    state.write_u8(0xff);
    state.write_usize(s.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{cell, StableHasher};

    fn probe_columns() -> Vec<(Vec<Cell>, Option<Domain>)> {
        vec![
            (vec![cell(1), cell(2), Cell::Null, cell(-7)], None),
            (vec![cell(1.5), Cell::Null, cell(-0.0), cell(0.0)], None),
            (vec![cell(true), cell(false), Cell::Null], None),
            (vec![cell("a"), Cell::Null, cell("bc")], None),
            (
                vec![cell("x"), cell("y"), cell("x"), Cell::Null],
                Some(Domain::Category),
            ),
            (vec![cell(1), cell(2.5)], None), // mixed → Cells fallback
            (vec![Cell::List(vec![cell(1)]), Cell::Null], None),
            (vec![], None),
        ]
    }

    #[test]
    fn round_trips_cell_for_cell() {
        for (cells, domain) in probe_columns() {
            let encoded = ColumnData::from_cells(&cells, domain.as_ref());
            assert_eq!(encoded.to_cells(), cells, "round trip failed for {cells:?}");
            assert_eq!(encoded.len(), cells.len());
        }
    }

    #[test]
    fn chooses_typed_layouts() {
        assert!(matches!(
            ColumnData::from_cells(&[cell(1), Cell::Null], None),
            ColumnData::Int { .. }
        ));
        assert!(matches!(
            ColumnData::from_cells(&[cell("x")], Some(&Domain::Category)),
            ColumnData::Dict { .. }
        ));
        assert!(matches!(
            ColumnData::from_cells(&[cell(1), cell(2.5)], None),
            ColumnData::Cells(_)
        ));
    }

    #[test]
    fn float_encoding_is_bit_exact() {
        let cells = vec![cell(-0.0), Cell::Float(f64::NAN), cell(1.5)];
        let encoded = ColumnData::from_cells(&cells, None);
        let decoded = encoded.to_cells();
        assert_eq!(decoded[0], Cell::Float(-0.0));
        assert!(decoded[0].as_f64().unwrap().is_sign_negative());
        assert!(decoded[1].as_f64().unwrap().is_nan());
    }

    #[test]
    fn hash_matches_cell_hash_key() {
        for (cells, domain) in probe_columns() {
            let encoded = ColumnData::from_cells(&cells, domain.as_ref());
            for (i, cell) in cells.iter().enumerate() {
                let mut a = StableHasher::default();
                cell.hash_key(&mut a);
                let mut b = StableHasher::default();
                encoded.hash_value_into(i, &mut b);
                assert_eq!(a.finish(), b.finish(), "hash diverged on {cell:?}");
            }
        }
    }

    #[test]
    fn key_eq_rows_matches_cell_key_eq() {
        for (cells, domain) in probe_columns() {
            let encoded = ColumnData::from_cells(&cells, domain.as_ref());
            for i in 0..cells.len() {
                for j in 0..cells.len() {
                    assert_eq!(
                        encoded.key_eq_rows(i, j),
                        cells[i].key_eq(&cells[j]),
                        "key_eq diverged on rows {i},{j} of {cells:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cmp_rows_matches_cell_total_cmp() {
        for (cells, domain) in probe_columns() {
            let encoded = ColumnData::from_cells(&cells, domain.as_ref());
            for i in 0..cells.len() {
                for j in 0..cells.len() {
                    assert_eq!(
                        encoded.cmp_rows(i, j),
                        cells[i].total_cmp(&cells[j]),
                        "cmp diverged on rows {i},{j} of {cells:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_accessors_match_cell_semantics() {
        for (cells, domain) in probe_columns() {
            let encoded = ColumnData::from_cells(&cells, domain.as_ref());
            for (i, cell) in cells.iter().enumerate() {
                assert_eq!(encoded.is_null_at(i), cell.is_null());
                assert_eq!(encoded.f64_at(i), cell.as_f64());
            }
        }
    }

    #[test]
    fn typed_probe_refuses_mixed_columns_without_copying() {
        assert!(ColumnData::from_cells_typed(&[cell(1), cell(2.5)], None).is_none());
        assert!(ColumnData::from_cells_typed(&[Cell::List(vec![])], None).is_none());
        assert!(ColumnData::from_cells_typed(&[Cell::Null], None).is_none());
        assert!(matches!(
            ColumnData::from_cells_typed(&[Cell::Null], Some(&Domain::Float)),
            Some(ColumnData::Float { .. })
        ));
    }

    #[test]
    fn size_accounting_charges_buffers_bitmap_and_dictionary() {
        let ints = ColumnData::from_cells(&[cell(1), cell(2), cell(3)], None);
        assert_eq!(ints.approx_size_bytes(), 3 * 8 + 8);
        let cats = ColumnData::from_cells(
            &[cell("aa"), cell("bb"), cell("aa")],
            Some(&Domain::Category),
        );
        // 3 u32 codes + 2 dictionary strings (struct + 2 bytes heap each) + 1 word.
        assert_eq!(
            cats.approx_size_bytes(),
            3 * 4 + 2 * std::mem::size_of::<String>() + 4 + 8
        );
    }

    #[test]
    fn columnar_switch_toggles() {
        set_columnar_enabled(false);
        assert!(!columnar_enabled());
        set_columnar_enabled(true);
        assert!(columnar_enabled());
    }
}
