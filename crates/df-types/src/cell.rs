//! A single dataframe entry.
//!
//! The paper's data model stores the array `A_mn` over the uninterpreted domain `Σ*`
//! and interprets cells through per-column parsing functions. In this implementation a
//! [`Cell`] can either still be *raw* (a string, as ingested from CSV/HTML) or already
//! parsed into one of the typed domains. Keeping both in one enum lets the engines
//! defer parsing — and therefore schema induction — exactly as §5.1 of the paper
//! recommends, while still giving typed fast paths once a column has been parsed.
//!
//! Cells are also used for row and column *labels*: the paper points out that, unlike
//! the relational model where attribute names come from a separate domain `att`, data
//! frame labels come from the same domain set as the data, which is what makes
//! `TOLABELS` / `FROMLABELS` possible.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::domain::Domain;

/// A single value in a dataframe: one entry of `A_mn`, or one row/column label.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// The distinguished null value present in every domain (`NA` in the paper).
    Null,
    /// A value of the uninterpreted string domain `Σ*` (pandas' `Object`).
    Str(String),
    /// A 64-bit integer (`int`).
    Int(i64),
    /// A 64-bit float (`float`).
    Float(f64),
    /// A boolean (`bool`).
    Bool(bool),
    /// A composite value: the paper's GROUPBY `collect` aggregation produces composite
    /// cells holding the grouped values (§4.3, "dataframes can support composite values
    /// within a cell").
    List(Vec<Cell>),
}

impl Cell {
    /// True when the cell is the distinguished null value.
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// The domain this concrete cell naturally belongs to, or `None` for null (null is
    /// a member of every domain and does not pin one down).
    pub fn natural_domain(&self) -> Option<Domain> {
        match self {
            Cell::Null => None,
            Cell::Str(_) => Some(Domain::Str),
            Cell::Int(_) => Some(Domain::Int),
            Cell::Float(_) => Some(Domain::Float),
            Cell::Bool(_) => Some(Domain::Bool),
            Cell::List(_) => Some(Domain::Composite),
        }
    }

    /// Interpret the cell as a float if its domain permits it. Integers and booleans
    /// widen; nulls and strings do not.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(v) => Some(*v as f64),
            Cell::Float(v) => Some(*v),
            Cell::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interpret the cell as an integer if it is an integer or boolean.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Cell::Int(v) => Some(*v),
            Cell::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Interpret the cell as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Cell::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow the cell as a string slice when it is in the raw `Σ*` domain.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Cell::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the composite payload when the cell is a `collect` result.
    pub fn as_list(&self) -> Option<&[Cell]> {
        match self {
            Cell::List(items) => Some(items),
            _ => None,
        }
    }

    /// Render the cell the way the raw data array `A_mn` would store it: a string.
    /// Null renders as the empty string, matching CSV conventions.
    pub fn to_raw_string(&self) -> String {
        match self {
            Cell::Null => String::new(),
            Cell::Str(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    v.to_string()
                }
            }
            Cell::Bool(b) => if *b { "true" } else { "false" }.to_string(),
            Cell::List(items) => {
                let parts: Vec<String> = items.iter().map(Cell::to_raw_string).collect();
                format!("[{}]", parts.join(", "))
            }
        }
    }

    /// A canonical, hashable key for grouping, duplicate elimination and joins.
    ///
    /// Floats are keyed by their bit pattern (with `-0.0` normalised to `0.0` and all
    /// NaNs collapsed to one key) so that `GROUPBY` and `DROP DUPLICATES` have
    /// deterministic semantics even on float columns.
    pub fn group_key(&self) -> CellKey {
        match self {
            Cell::Null => CellKey::Null,
            Cell::Str(s) => CellKey::Str(s.clone()),
            Cell::Int(v) => CellKey::Int(*v),
            Cell::Float(v) => {
                let normalised = if v.is_nan() {
                    f64::NAN.to_bits()
                } else if *v == 0.0 {
                    0.0_f64.to_bits()
                } else {
                    v.to_bits()
                };
                CellKey::Float(normalised)
            }
            Cell::Bool(b) => CellKey::Bool(*b),
            Cell::List(items) => CellKey::List(items.iter().map(Cell::group_key).collect()),
        }
    }

    /// Feed the cell's canonical group-key form into a hasher without materialising a
    /// [`CellKey`]. This is the allocation-free path the shuffle subsystem and the
    /// single-pass GROUPBY kernel hash millions of cells through: floats are normalised
    /// exactly like [`Cell::group_key`] (`-0.0` folds into `0.0`, all NaNs collapse),
    /// and strings are hashed in place instead of being cloned into a key.
    pub fn hash_key<H: Hasher>(&self, state: &mut H) {
        match self {
            Cell::Null => state.write_u8(0),
            Cell::Str(s) => {
                state.write_u8(1);
                state.write(s.as_bytes());
                // Length terminator so ("ab","c") and ("a","bc") hash differently when
                // several cells stream into one hasher.
                state.write_u8(0xff);
                state.write_usize(s.len());
            }
            Cell::Int(v) => {
                state.write_u8(2);
                state.write_i64(*v);
            }
            Cell::Float(v) => {
                let normalised = if v.is_nan() {
                    f64::NAN.to_bits()
                } else if *v == 0.0 {
                    0.0_f64.to_bits()
                } else {
                    v.to_bits()
                };
                state.write_u8(3);
                state.write_u64(normalised);
            }
            Cell::Bool(b) => {
                state.write_u8(4);
                state.write_u8(u8::from(*b));
            }
            Cell::List(items) => {
                state.write_u8(5);
                state.write_usize(items.len());
                for item in items {
                    item.hash_key(state);
                }
            }
        }
    }

    /// Equality under group-key semantics: agrees with comparing [`Cell::group_key`]
    /// values (all NaNs equal, `-0.0 == 0.0`, no cross-domain numeric widening) but
    /// allocates nothing.
    pub fn key_eq(&self, other: &Cell) -> bool {
        match (self, other) {
            (Cell::Float(a), Cell::Float(b)) => (a.is_nan() && b.is_nan()) || a == b,
            (Cell::List(a), Cell::List(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.key_eq(y))
            }
            _ => self == other,
        }
    }

    /// A deterministic 64-bit hash of the cell's group key, stable across threads and
    /// runs (FNV-1a based). Used for bucket assignment during shuffles.
    pub fn bucket_hash(&self) -> u64 {
        let mut hasher = StableHasher::default();
        self.hash_key(&mut hasher);
        hasher.finish()
    }

    /// Total ordering used by `SORT` and by ordered set operations. Nulls sort last;
    /// values of different domains sort by a fixed domain precedence (bool < numeric <
    /// string < composite), mirroring the permissive ordering pandas applies to
    /// `Object` columns.
    pub fn total_cmp(&self, other: &Cell) -> Ordering {
        fn rank(c: &Cell) -> u8 {
            match c {
                Cell::Bool(_) => 0,
                Cell::Int(_) | Cell::Float(_) => 1,
                Cell::Str(_) => 2,
                Cell::List(_) => 3,
                Cell::Null => 4,
            }
        }
        match (self, other) {
            (Cell::Null, Cell::Null) => Ordering::Equal,
            (Cell::Bool(a), Cell::Bool(b)) => a.cmp(b),
            (Cell::Str(a), Cell::Str(b)) => a.cmp(b),
            (Cell::List(a), Cell::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                _ => rank(a).cmp(&rank(b)),
            },
        }
    }

    /// Approximate heap + inline size of the cell in bytes. Used by the engines for
    /// memory accounting and by the storage layer's spill policy.
    pub fn approx_size_bytes(&self) -> usize {
        let inline = std::mem::size_of::<Cell>();
        match self {
            Cell::Str(s) => inline + s.len(),
            Cell::List(items) => inline + items.iter().map(Cell::approx_size_bytes).sum::<usize>(),
            _ => inline,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Null => write!(f, "NA"),
            other => write!(f, "{}", other.to_raw_string()),
        }
    }
}

impl Eq for Cell {}

impl Hash for Cell {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Consistent with `PartialEq`: equal cells (including 0.0 / -0.0) feed the
        // hasher identically, without the `group_key` allocation the old path paid.
        self.hash_key(state);
    }
}

/// A deterministic, dependency-free FNV-1a hasher. The shuffle subsystem keys its
/// bucket assignment on this so that partition placement is reproducible across
/// thread counts, runs and platforms (`std`'s `DefaultHasher` makes no such promise).
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for StableHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Canonical hashable form of a [`Cell`]; see [`Cell::group_key`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKey {
    /// Key for [`Cell::Null`].
    Null,
    /// Key for [`Cell::Str`].
    Str(String),
    /// Key for [`Cell::Int`].
    Int(i64),
    /// Key for [`Cell::Float`], as normalised bits.
    Float(u64),
    /// Key for [`Cell::Bool`].
    Bool(bool),
    /// Key for [`Cell::List`].
    List(Vec<CellKey>),
}

/// Ergonomic constructor: `cell(3)`, `cell("abc")`, `cell(1.5)`, `cell(true)`.
pub fn cell(value: impl Into<Cell>) -> Cell {
    value.into()
}

impl From<&str> for Cell {
    fn from(value: &str) -> Self {
        Cell::Str(value.to_string())
    }
}

impl From<String> for Cell {
    fn from(value: String) -> Self {
        Cell::Str(value)
    }
}

impl From<i64> for Cell {
    fn from(value: i64) -> Self {
        Cell::Int(value)
    }
}

impl From<i32> for Cell {
    fn from(value: i32) -> Self {
        Cell::Int(i64::from(value))
    }
}

impl From<usize> for Cell {
    fn from(value: usize) -> Self {
        Cell::Int(value as i64)
    }
}

impl From<f64> for Cell {
    fn from(value: f64) -> Self {
        Cell::Float(value)
    }
}

impl From<f32> for Cell {
    fn from(value: f32) -> Self {
        Cell::Float(f64::from(value))
    }
}

impl From<bool> for Cell {
    fn from(value: bool) -> Self {
        Cell::Bool(value)
    }
}

impl<T: Into<Cell>> From<Option<T>> for Cell {
    fn from(value: Option<T>) -> Self {
        match value {
            Some(v) => v.into(),
            None => Cell::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn constructors_produce_expected_variants() {
        assert_eq!(cell(3), Cell::Int(3));
        assert_eq!(cell(3i64), Cell::Int(3));
        assert_eq!(cell(2.5), Cell::Float(2.5));
        assert_eq!(cell("hi"), Cell::Str("hi".into()));
        assert_eq!(cell(true), Cell::Bool(true));
        assert_eq!(Cell::from(None::<i64>), Cell::Null);
        assert_eq!(Cell::from(Some(7)), Cell::Int(7));
    }

    #[test]
    fn null_checks_and_domains() {
        assert!(Cell::Null.is_null());
        assert!(!cell(1).is_null());
        assert_eq!(cell(1).natural_domain(), Some(Domain::Int));
        assert_eq!(cell("x").natural_domain(), Some(Domain::Str));
        assert_eq!(Cell::Null.natural_domain(), None);
        assert_eq!(
            Cell::List(vec![cell(1)]).natural_domain(),
            Some(Domain::Composite)
        );
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(cell(3).as_f64(), Some(3.0));
        assert_eq!(cell(true).as_f64(), Some(1.0));
        assert_eq!(cell("3").as_f64(), None);
        assert_eq!(cell(false).as_i64(), Some(0));
        assert_eq!(cell(2.5).as_i64(), None);
    }

    #[test]
    fn raw_string_round_trips_common_values() {
        assert_eq!(cell(42).to_raw_string(), "42");
        assert_eq!(cell(2.5).to_raw_string(), "2.5");
        assert_eq!(cell(2.0).to_raw_string(), "2.0");
        assert_eq!(cell(true).to_raw_string(), "true");
        assert_eq!(Cell::Null.to_raw_string(), "");
        assert_eq!(
            Cell::List(vec![cell(1), cell("a")]).to_raw_string(),
            "[1, a]"
        );
    }

    #[test]
    fn display_uses_na_for_null() {
        assert_eq!(Cell::Null.to_string(), "NA");
        assert_eq!(cell("x").to_string(), "x");
    }

    #[test]
    fn group_key_collapses_float_zero_and_nan() {
        assert_eq!(cell(0.0).group_key(), cell(-0.0).group_key());
        assert_eq!(
            Cell::Float(f64::NAN).group_key(),
            Cell::Float(f64::NAN).group_key()
        );
        let mut set = HashSet::new();
        set.insert(cell(1.0));
        set.insert(cell(1.0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn total_ordering_sorts_nulls_last_and_mixes_domains() {
        let mut cells = vec![
            Cell::Null,
            cell("b"),
            cell(2),
            cell(1.5),
            cell(true),
            cell("a"),
        ];
        cells.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            cells,
            vec![
                cell(true),
                cell(1.5),
                cell(2),
                cell("a"),
                cell("b"),
                Cell::Null
            ]
        );
    }

    #[test]
    fn numeric_cross_type_comparison_is_by_value() {
        assert_eq!(cell(2).total_cmp(&cell(2.0)), Ordering::Equal);
        assert_eq!(cell(1).total_cmp(&cell(1.5)), Ordering::Less);
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Cell::List(vec![cell(1), cell(2)]);
        let b = Cell::List(vec![cell(1), cell(3)]);
        let c = Cell::List(vec![cell(1)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
    }

    #[test]
    fn key_eq_matches_group_key_equality() {
        let probes = vec![
            Cell::Null,
            cell(0.0),
            cell(-0.0),
            Cell::Float(f64::NAN),
            Cell::Float(-f64::NAN),
            cell(1),
            cell(1.0),
            cell("a"),
            cell(true),
            Cell::List(vec![cell(1), Cell::Float(f64::NAN)]),
            Cell::List(vec![cell(1)]),
        ];
        for a in &probes {
            for b in &probes {
                assert_eq!(
                    a.key_eq(b),
                    a.group_key() == b.group_key(),
                    "key_eq disagrees with group_key for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn bucket_hash_is_stable_and_respects_key_eq() {
        assert_eq!(cell(0.0).bucket_hash(), cell(-0.0).bucket_hash());
        assert_eq!(
            Cell::Float(f64::NAN).bucket_hash(),
            Cell::Float(-f64::NAN).bucket_hash()
        );
        assert_ne!(cell(1).bucket_hash(), cell(2).bucket_hash());
        // Str hashing embeds a terminator: shifting bytes between adjacent cells in a
        // multi-cell stream must change the combined hash.
        use std::hash::{Hash, Hasher};
        let combined = |cells: &[Cell]| {
            let mut h = StableHasher::default();
            for c in cells {
                c.hash(&mut h);
            }
            h.finish()
        };
        assert_ne!(
            combined(&[cell("ab"), cell("c")]),
            combined(&[cell("a"), cell("bc")])
        );
    }

    #[test]
    fn approx_size_accounts_for_heap_payloads() {
        assert!(cell("hello world").approx_size_bytes() > cell(1).approx_size_bytes());
        let list = Cell::List(vec![cell("abc"), cell("def")]);
        assert!(list.approx_size_bytes() > cell("abc").approx_size_bytes());
    }
}
