//! Shared error type for the workspace.
//!
//! Every fallible operation in the data model, the algebra, the engines and the pandas
//! API layer returns [`DfResult`]. The variants follow the failure modes the paper calls
//! out: missing labels, shape mismatches, type mismatches discovered after schema
//! induction, unsupported operations (the Table 3 capability matrix), and resource
//! exhaustion (used by the baseline to model pandas failing to transpose frames beyond
//! ~6 GB, paper §3.2).

use std::fmt;

/// Convenience alias used across all crates in the workspace.
pub type DfResult<T> = Result<T, DfError>;

/// Error raised by dataframe operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfError {
    /// A referenced column label does not exist.
    ColumnNotFound(String),
    /// A referenced row label does not exist.
    RowNotFound(String),
    /// A positional reference is out of bounds: `(axis, index, len)`.
    IndexOutOfBounds {
        /// `"row"` or `"column"`.
        axis: &'static str,
        /// The requested position.
        index: usize,
        /// The axis length.
        len: usize,
    },
    /// Two dataframes (or a dataframe and a value vector) have incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// A value could not be interpreted in the required domain.
    TypeMismatch {
        /// The domain the operation required.
        expected: String,
        /// The offending value, rendered as a string.
        found: String,
    },
    /// A raw string could not be parsed by the domain's parsing function `p_i`.
    ParseError {
        /// Target domain name.
        domain: String,
        /// The raw input.
        value: String,
    },
    /// The operation is valid in the dataframe algebra but not supported by this engine
    /// (the dataframe-like systems of Table 3 reject several operators).
    Unsupported(String),
    /// The engine ran out of its configured resources. The baseline uses this to model
    /// pandas crashing / not completing (paper §3.2: "pandas is unable to run transpose
    /// beyond 6 GB").
    ResourceExhausted(String),
    /// An aggregation or window function was applied to an empty group or frame where
    /// it has no defined result.
    EmptyInput(String),
    /// Duplicate labels were found where unique labels are required.
    DuplicateLabel(String),
    /// An I/O failure from the storage layer (CSV ingest, spill files).
    Io(String),
    /// An I/O failure at a named spill/ingest site. `transient` marks faults worth
    /// retrying (interrupted reads, injected `io_transient` failpoints); permanent
    /// faults (disk full, missing file) surface after the first attempt.
    SpillIo {
        /// The failpoint-style site name, e.g. `"spill.read"`.
        site: String,
        /// Human-readable description of the underlying fault.
        detail: String,
        /// Whether the retry policy should re-attempt the operation.
        transient: bool,
    },
    /// A spill block failed its integrity check on load-back: bad magic, truncated
    /// payload, or an FNV-1a checksum mismatch (format v4). The block is quarantined
    /// and, when lineage allows, recomputed from the logical plan.
    SpillCorruption {
        /// The failpoint-style site name, e.g. `"spill.read"`.
        site: String,
        /// What exactly failed to verify.
        detail: String,
    },
    /// A worker thread panicked inside the parallel executor. The panic was caught
    /// at the task boundary — sibling tasks are cancelled cooperatively and no lock
    /// is poisoned — and its payload is carried here.
    WorkerPanic(String),
    /// A worker *process* died or its pipe closed mid-exchange (the process-parallel
    /// backend's analogue of [`DfError::WorkerPanic`]). The pool kills and respawns
    /// the worker; tasks are pure, so the exchange is retried once before this
    /// surfaces — lost workers never hang a statement.
    WorkerLost {
        /// The worker's pool slot.
        worker: usize,
        /// What the parent observed (EOF, broken pipe, unexpected exit status).
        detail: String,
    },
    /// The statement was cancelled cooperatively (session timeout/cancel, or
    /// fail-fast after a sibling task error).
    Cancelled(String),
    /// The multi-tenant service refused to admit the statement: the bounded run
    /// queue was full, or the service is draining for shutdown. Distinct from
    /// [`DfError::Cancelled`] (which a queued statement gets when its queue wait
    /// times out) so clients can tell "retry later / back off" from "your
    /// statement was started and then stopped".
    Admission(String),
    /// Internal invariant violation; indicates a bug rather than user error.
    Internal(String),
}

impl DfError {
    /// Shorthand constructor for [`DfError::ColumnNotFound`].
    pub fn column_not_found(label: impl fmt::Display) -> Self {
        DfError::ColumnNotFound(label.to_string())
    }

    /// Shorthand constructor for [`DfError::RowNotFound`].
    pub fn row_not_found(label: impl fmt::Display) -> Self {
        DfError::RowNotFound(label.to_string())
    }

    /// Shorthand constructor for [`DfError::Unsupported`].
    pub fn unsupported(msg: impl Into<String>) -> Self {
        DfError::Unsupported(msg.into())
    }

    /// Shorthand constructor for [`DfError::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        DfError::Internal(msg.into())
    }

    /// Shorthand constructor for [`DfError::ShapeMismatch`].
    pub fn shape(expected: impl Into<String>, found: impl Into<String>) -> Self {
        DfError::ShapeMismatch {
            expected: expected.into(),
            found: found.into(),
        }
    }

    /// Shorthand constructor for [`DfError::TypeMismatch`].
    pub fn type_mismatch(expected: impl Into<String>, found: impl fmt::Display) -> Self {
        DfError::TypeMismatch {
            expected: expected.into(),
            found: found.to_string(),
        }
    }

    /// Shorthand constructor for [`DfError::SpillIo`].
    pub fn spill_io(site: impl Into<String>, detail: impl Into<String>, transient: bool) -> Self {
        DfError::SpillIo {
            site: site.into(),
            detail: detail.into(),
            transient,
        }
    }

    /// Shorthand constructor for [`DfError::SpillCorruption`].
    pub fn spill_corruption(site: impl Into<String>, detail: impl Into<String>) -> Self {
        DfError::SpillCorruption {
            site: site.into(),
            detail: detail.into(),
        }
    }

    /// True when the error models a capacity failure rather than a semantic one. The
    /// figure-2 harness uses this to record "did not finish" points for the baseline.
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(self, DfError::ResourceExhausted(_))
    }

    /// True for faults the retry policy should re-attempt (transient I/O only —
    /// corruption and permanent I/O failures are never retried in place).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DfError::SpillIo {
                transient: true,
                ..
            }
        )
    }

    /// True when a spill block failed its integrity check — the trigger for
    /// quarantine-and-recompute-from-lineage recovery.
    pub fn is_spill_corruption(&self) -> bool {
        matches!(self, DfError::SpillCorruption { .. })
    }

    /// Shorthand constructor for [`DfError::WorkerLost`].
    pub fn worker_lost(worker: usize, detail: impl Into<String>) -> Self {
        DfError::WorkerLost {
            worker,
            detail: detail.into(),
        }
    }

    /// True when a worker process died mid-exchange — the trigger for the process
    /// backend's respawn-and-retry recovery.
    pub fn is_worker_lost(&self) -> bool {
        matches!(self, DfError::WorkerLost { .. })
    }

    /// True when the error is a cooperative cancellation, not a real failure.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, DfError::Cancelled(_))
    }

    /// True when the service turned the statement away at the door (queue full
    /// or draining) — nothing executed, so retrying after backoff is safe.
    pub fn is_admission(&self) -> bool {
        matches!(self, DfError::Admission(_))
    }
}

impl fmt::Display for DfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfError::ColumnNotFound(l) => write!(f, "column label not found: {l:?}"),
            DfError::RowNotFound(l) => write!(f, "row label not found: {l:?}"),
            DfError::IndexOutOfBounds { axis, index, len } => {
                write!(f, "{axis} index {index} out of bounds for length {len}")
            }
            DfError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            DfError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DfError::ParseError { domain, value } => {
                write!(f, "cannot parse {value:?} as {domain}")
            }
            DfError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            DfError::ResourceExhausted(msg) => write!(f, "resource exhausted: {msg}"),
            DfError::EmptyInput(msg) => write!(f, "empty input: {msg}"),
            DfError::DuplicateLabel(l) => write!(f, "duplicate label: {l}"),
            DfError::Io(msg) => write!(f, "i/o error: {msg}"),
            DfError::SpillIo {
                site,
                detail,
                transient,
            } => {
                let kind = if *transient { "transient" } else { "permanent" };
                write!(f, "spill i/o error ({kind}) at {site}: {detail}")
            }
            DfError::SpillCorruption { site, detail } => {
                write!(f, "spill corruption detected at {site}: {detail}")
            }
            DfError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            DfError::WorkerLost { worker, detail } => {
                write!(f, "worker {worker} lost: {detail}")
            }
            DfError::Cancelled(what) => write!(f, "cancelled: {what}"),
            DfError::Admission(why) => write!(f, "admission refused: {why}"),
            DfError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for DfError {}

impl From<std::io::Error> for DfError {
    fn from(err: std::io::Error) -> Self {
        DfError::Io(err.to_string())
    }
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------
//
// The process-parallel executor backend ships a failed task's error back to the
// driver over its pipe protocol. The encoding is a flat record: a stable tag
// followed by the variant's fields, joined by the unit separator, with embedded
// separators and backslashes escaped. Every variant round-trips; decoding never
// fails — an unrecognised or malformed record folds into [`DfError::Internal`]
// carrying the raw text, so a protocol-version skew degrades the message, not
// the typed-error contract.

/// Joins the fields of a wire-encoded error.
const WIRE_SEP: char = '\u{1f}';

fn wire_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            WIRE_SEP => out.push_str("\\u"),
            c => out.push(c),
        }
    }
    out
}

fn wire_unescape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('u') => out.push(WIRE_SEP),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

impl DfError {
    /// Encode this error as a single wire record (see the module-level wire-codec
    /// notes). The inverse of [`DfError::decode_wire`].
    pub fn encode_wire(&self) -> String {
        let record = |tag: &str, fields: &[&str]| {
            let mut out = String::from(tag);
            for field in fields {
                out.push(WIRE_SEP);
                out.push_str(&wire_escape(field));
            }
            out
        };
        match self {
            DfError::ColumnNotFound(l) => record("column-not-found", &[l]),
            DfError::RowNotFound(l) => record("row-not-found", &[l]),
            DfError::IndexOutOfBounds { axis, index, len } => record(
                "index-out-of-bounds",
                &[axis, &index.to_string(), &len.to_string()],
            ),
            DfError::ShapeMismatch { expected, found } => {
                record("shape-mismatch", &[expected, found])
            }
            DfError::TypeMismatch { expected, found } => {
                record("type-mismatch", &[expected, found])
            }
            DfError::ParseError { domain, value } => record("parse-error", &[domain, value]),
            DfError::Unsupported(m) => record("unsupported", &[m]),
            DfError::ResourceExhausted(m) => record("resource-exhausted", &[m]),
            DfError::EmptyInput(m) => record("empty-input", &[m]),
            DfError::DuplicateLabel(m) => record("duplicate-label", &[m]),
            DfError::Io(m) => record("io", &[m]),
            DfError::SpillIo {
                site,
                detail,
                transient,
            } => record(
                "spill-io",
                &[site, detail, if *transient { "1" } else { "0" }],
            ),
            DfError::SpillCorruption { site, detail } => {
                record("spill-corruption", &[site, detail])
            }
            DfError::WorkerPanic(m) => record("worker-panic", &[m]),
            DfError::WorkerLost { worker, detail } => {
                record("worker-lost", &[&worker.to_string(), detail])
            }
            DfError::Cancelled(m) => record("cancelled", &[m]),
            DfError::Admission(m) => record("admission", &[m]),
            DfError::Internal(m) => record("internal", &[m]),
        }
    }

    /// Decode a wire record produced by [`DfError::encode_wire`]. Never fails: an
    /// unrecognised tag or a malformed record becomes [`DfError::Internal`] with the
    /// raw text, so the receiver always gets *an* error, worst case a less specific
    /// one.
    pub fn decode_wire(raw: &str) -> DfError {
        let mut parts = raw.split(WIRE_SEP);
        let tag = parts.next().unwrap_or("");
        let fields: Vec<String> = parts.map(wire_unescape).collect();
        let field = |i: usize| fields.get(i).cloned().unwrap_or_default();
        let garbled = || DfError::Internal(format!("unrecognised wire error: {raw:?}"));
        match tag {
            "column-not-found" => DfError::ColumnNotFound(field(0)),
            "row-not-found" => DfError::RowNotFound(field(0)),
            "index-out-of-bounds" => {
                // The axis is a static str in the in-memory form; map the known axis
                // names back and fold anything else into the generic "axis".
                let axis = match field(0).as_str() {
                    "row" => "row",
                    "column" => "column",
                    "row band" => "row band",
                    _ => "axis",
                };
                match (field(1).parse(), field(2).parse()) {
                    (Ok(index), Ok(len)) => DfError::IndexOutOfBounds { axis, index, len },
                    _ => garbled(),
                }
            }
            "shape-mismatch" => DfError::ShapeMismatch {
                expected: field(0),
                found: field(1),
            },
            "type-mismatch" => DfError::TypeMismatch {
                expected: field(0),
                found: field(1),
            },
            "parse-error" => DfError::ParseError {
                domain: field(0),
                value: field(1),
            },
            "unsupported" => DfError::Unsupported(field(0)),
            "resource-exhausted" => DfError::ResourceExhausted(field(0)),
            "empty-input" => DfError::EmptyInput(field(0)),
            "duplicate-label" => DfError::DuplicateLabel(field(0)),
            "io" => DfError::Io(field(0)),
            "spill-io" => DfError::SpillIo {
                site: field(0),
                detail: field(1),
                transient: field(2) == "1",
            },
            "spill-corruption" => DfError::SpillCorruption {
                site: field(0),
                detail: field(1),
            },
            "worker-panic" => DfError::WorkerPanic(field(0)),
            "worker-lost" => match field(0).parse() {
                Ok(worker) => DfError::WorkerLost {
                    worker,
                    detail: field(1),
                },
                Err(_) => garbled(),
            },
            "cancelled" => DfError::Cancelled(field(0)),
            "admission" => DfError::Admission(field(0)),
            "internal" => DfError::Internal(field(0)),
            _ => garbled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codec_round_trips_every_variant() {
        let errors = vec![
            DfError::ColumnNotFound("price".into()),
            DfError::RowNotFound("r9".into()),
            DfError::IndexOutOfBounds {
                axis: "row",
                index: 7,
                len: 3,
            },
            DfError::ShapeMismatch {
                expected: "3x2".into(),
                found: "2x3".into(),
            },
            DfError::TypeMismatch {
                expected: "int".into(),
                found: "str".into(),
            },
            DfError::ParseError {
                domain: "float".into(),
                value: "abc".into(),
            },
            DfError::Unsupported("no such op".into()),
            DfError::ResourceExhausted("budget".into()),
            DfError::EmptyInput("no frames".into()),
            DfError::DuplicateLabel("x".into()),
            DfError::Io("pipe closed".into()),
            DfError::SpillIo {
                site: "spill.write".into(),
                detail: "disk full".into(),
                transient: true,
            },
            DfError::SpillIo {
                site: "spill.read".into(),
                detail: "missing".into(),
                transient: false,
            },
            DfError::SpillCorruption {
                site: "backend.exchange".into(),
                detail: "checksum mismatch".into(),
            },
            DfError::WorkerPanic("index out of range".into()),
            DfError::WorkerLost {
                worker: 2,
                detail: "pipe closed mid-frame".into(),
            },
            DfError::Cancelled("user abort".into()),
            DfError::Admission("queue full".into()),
            DfError::Internal("invariant broken".into()),
        ];
        for err in errors {
            let decoded = DfError::decode_wire(&err.encode_wire());
            assert_eq!(decoded, err, "round trip changed {err:?}");
        }
    }

    #[test]
    fn wire_codec_escapes_separators_and_backslashes() {
        let err = DfError::Internal(format!("weird\\payload{}with unit sep", '\u{1f}'));
        assert_eq!(DfError::decode_wire(&err.encode_wire()), err);
        // Multi-field variants keep field boundaries straight even when the
        // fields themselves contain the separator.
        let err = DfError::SpillCorruption {
            site: format!("a{}b", '\u{1f}'),
            detail: "c\\d".into(),
        };
        assert_eq!(DfError::decode_wire(&err.encode_wire()), err);
    }

    #[test]
    fn wire_codec_folds_garbage_into_internal() {
        for raw in [
            "",
            "no-such-tag\u{1f}x",
            "worker-lost\u{1f}not-a-number\u{1f}d",
        ] {
            match DfError::decode_wire(raw) {
                DfError::Internal(msg) => {
                    assert!(msg.contains("unrecognised wire error"), "msg: {msg}")
                }
                other => panic!("expected Internal, got {other:?}"),
            }
        }
    }

    #[test]
    fn worker_lost_helpers_and_display() {
        let err = DfError::worker_lost(3, "exit status 9");
        assert!(err.is_worker_lost());
        assert!(!DfError::Internal("x".into()).is_worker_lost());
        assert_eq!(err.to_string(), "worker 3 lost: exit status 9");
    }

    #[test]
    fn display_column_not_found() {
        let err = DfError::column_not_found("price");
        assert_eq!(err.to_string(), "column label not found: \"price\"");
    }

    #[test]
    fn display_index_out_of_bounds() {
        let err = DfError::IndexOutOfBounds {
            axis: "row",
            index: 9,
            len: 3,
        };
        assert_eq!(err.to_string(), "row index 9 out of bounds for length 3");
    }

    #[test]
    fn resource_exhausted_is_flagged() {
        assert!(DfError::ResourceExhausted("cap".into()).is_resource_exhausted());
        assert!(!DfError::Unsupported("x".into()).is_resource_exhausted());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: DfError = io.into();
        assert!(matches!(err, DfError::Io(_)));
    }

    #[test]
    fn fault_taxonomy_classifies_and_formats() {
        let transient = DfError::spill_io("spill.read", "interrupted", true);
        assert!(transient.is_transient());
        assert!(!transient.is_spill_corruption());
        assert!(transient.to_string().contains("transient"));
        assert!(transient.to_string().contains("spill.read"));

        let full = DfError::spill_io("spill.write", "disk full", false);
        assert!(!full.is_transient());
        assert!(full.to_string().contains("permanent"));

        let corrupt = DfError::spill_corruption("spill.read", "checksum mismatch");
        assert!(corrupt.is_spill_corruption());
        assert!(!corrupt.is_transient());
        assert!(corrupt.to_string().contains("corruption"));

        let panic = DfError::WorkerPanic("boom".into());
        assert!(panic.to_string().contains("panicked"));

        let cancelled = DfError::Cancelled("statement timed out".into());
        assert!(cancelled.is_cancelled());
        assert!(cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn admission_refusal_is_typed_and_distinct_from_cancellation() {
        let refused = DfError::Admission("run queue full (8 queued)".into());
        assert!(refused.is_admission());
        assert!(!refused.is_cancelled());
        assert!(refused.to_string().contains("admission refused"));
        assert!(!DfError::Cancelled("queue wait timed out".into()).is_admission());
    }

    #[test]
    fn shape_and_type_helpers_format() {
        let s = DfError::shape("3 columns", "2 columns").to_string();
        assert!(s.contains("expected 3 columns"));
        let t = DfError::type_mismatch("int", "abc").to_string();
        assert!(t.contains("expected int"));
    }
}
