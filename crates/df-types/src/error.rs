//! Shared error type for the workspace.
//!
//! Every fallible operation in the data model, the algebra, the engines and the pandas
//! API layer returns [`DfResult`]. The variants follow the failure modes the paper calls
//! out: missing labels, shape mismatches, type mismatches discovered after schema
//! induction, unsupported operations (the Table 3 capability matrix), and resource
//! exhaustion (used by the baseline to model pandas failing to transpose frames beyond
//! ~6 GB, paper §3.2).

use std::fmt;

/// Convenience alias used across all crates in the workspace.
pub type DfResult<T> = Result<T, DfError>;

/// Error raised by dataframe operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfError {
    /// A referenced column label does not exist.
    ColumnNotFound(String),
    /// A referenced row label does not exist.
    RowNotFound(String),
    /// A positional reference is out of bounds: `(axis, index, len)`.
    IndexOutOfBounds {
        /// `"row"` or `"column"`.
        axis: &'static str,
        /// The requested position.
        index: usize,
        /// The axis length.
        len: usize,
    },
    /// Two dataframes (or a dataframe and a value vector) have incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// A value could not be interpreted in the required domain.
    TypeMismatch {
        /// The domain the operation required.
        expected: String,
        /// The offending value, rendered as a string.
        found: String,
    },
    /// A raw string could not be parsed by the domain's parsing function `p_i`.
    ParseError {
        /// Target domain name.
        domain: String,
        /// The raw input.
        value: String,
    },
    /// The operation is valid in the dataframe algebra but not supported by this engine
    /// (the dataframe-like systems of Table 3 reject several operators).
    Unsupported(String),
    /// The engine ran out of its configured resources. The baseline uses this to model
    /// pandas crashing / not completing (paper §3.2: "pandas is unable to run transpose
    /// beyond 6 GB").
    ResourceExhausted(String),
    /// An aggregation or window function was applied to an empty group or frame where
    /// it has no defined result.
    EmptyInput(String),
    /// Duplicate labels were found where unique labels are required.
    DuplicateLabel(String),
    /// An I/O failure from the storage layer (CSV ingest, spill files).
    Io(String),
    /// Internal invariant violation; indicates a bug rather than user error.
    Internal(String),
}

impl DfError {
    /// Shorthand constructor for [`DfError::ColumnNotFound`].
    pub fn column_not_found(label: impl fmt::Display) -> Self {
        DfError::ColumnNotFound(label.to_string())
    }

    /// Shorthand constructor for [`DfError::RowNotFound`].
    pub fn row_not_found(label: impl fmt::Display) -> Self {
        DfError::RowNotFound(label.to_string())
    }

    /// Shorthand constructor for [`DfError::Unsupported`].
    pub fn unsupported(msg: impl Into<String>) -> Self {
        DfError::Unsupported(msg.into())
    }

    /// Shorthand constructor for [`DfError::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        DfError::Internal(msg.into())
    }

    /// Shorthand constructor for [`DfError::ShapeMismatch`].
    pub fn shape(expected: impl Into<String>, found: impl Into<String>) -> Self {
        DfError::ShapeMismatch {
            expected: expected.into(),
            found: found.into(),
        }
    }

    /// Shorthand constructor for [`DfError::TypeMismatch`].
    pub fn type_mismatch(expected: impl Into<String>, found: impl fmt::Display) -> Self {
        DfError::TypeMismatch {
            expected: expected.into(),
            found: found.to_string(),
        }
    }

    /// True when the error models a capacity failure rather than a semantic one. The
    /// figure-2 harness uses this to record "did not finish" points for the baseline.
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(self, DfError::ResourceExhausted(_))
    }
}

impl fmt::Display for DfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfError::ColumnNotFound(l) => write!(f, "column label not found: {l:?}"),
            DfError::RowNotFound(l) => write!(f, "row label not found: {l:?}"),
            DfError::IndexOutOfBounds { axis, index, len } => {
                write!(f, "{axis} index {index} out of bounds for length {len}")
            }
            DfError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            DfError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DfError::ParseError { domain, value } => {
                write!(f, "cannot parse {value:?} as {domain}")
            }
            DfError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            DfError::ResourceExhausted(msg) => write!(f, "resource exhausted: {msg}"),
            DfError::EmptyInput(msg) => write!(f, "empty input: {msg}"),
            DfError::DuplicateLabel(l) => write!(f, "duplicate label: {l}"),
            DfError::Io(msg) => write!(f, "i/o error: {msg}"),
            DfError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for DfError {}

impl From<std::io::Error> for DfError {
    fn from(err: std::io::Error) -> Self {
        DfError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let err = DfError::column_not_found("price");
        assert_eq!(err.to_string(), "column label not found: \"price\"");
    }

    #[test]
    fn display_index_out_of_bounds() {
        let err = DfError::IndexOutOfBounds {
            axis: "row",
            index: 9,
            len: 3,
        };
        assert_eq!(err.to_string(), "row index 9 out of bounds for length 3");
    }

    #[test]
    fn resource_exhausted_is_flagged() {
        assert!(DfError::ResourceExhausted("cap".into()).is_resource_exhausted());
        assert!(!DfError::Unsupported("x".into()).is_resource_exhausted());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: DfError = io.into();
        assert!(matches!(err, DfError::Io(_)));
    }

    #[test]
    fn shape_and_type_helpers_format() {
        let s = DfError::shape("3 columns", "2 columns").to_string();
        assert!(s.contains("expected 3 columns"));
        let t = DfError::type_mismatch("int", "abc").to_string();
        assert!(t.contains("expected int"));
    }
}
