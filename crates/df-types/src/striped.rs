//! MRV-style striped counters for multi-tenant hot paths.
//!
//! A shared query service bumps the same session counters (`statements`,
//! `cache_hits`, …) from every tenant thread on every statement. A single
//! `Mutex<SessionStats>` turns those bumps into a serialization point — exactly
//! the "hotspot record" problem MRVs (*Enforcing Numeric Invariants in Parallel
//! Updates to Hotspots with Randomized Splitting*, SIGMOD 2023) solve for
//! database counters by partitioning one logical value over multiple physical
//! records. [`StripedU64`] is the in-process analogue: one logical monotonic
//! counter split over a fixed set of cache-line-padded atomic cells. Writers
//! pick a stripe once per thread (randomized by the thread's hashed identity,
//! the MRV "randomized splitting" step, so unrelated threads spread out instead
//! of piling onto stripe 0) and increment it with a relaxed `fetch_add`; readers
//! merge all stripes with a fold. Increments commute, so the merged read is
//! exact — the same reasoning MRVs use to keep add/sub serializable without
//! ordering them.

use std::collections::hash_map::RandomState;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of physical cells one logical counter is split over. Sized to cover
/// more worker threads than the test/CI matrix uses (1–16) while keeping a
/// snapshot read cheap (a 16-element fold).
const STRIPES: usize = 16;

/// One cache-line-padded atomic cell, so two stripes never share a line and a
/// stripe bump never invalidates its neighbours.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

thread_local! {
    /// The stripe this thread was randomly assigned on first contact with any
    /// striped counter. Per-thread (not per-counter): what matters is that
    /// *different* threads usually land on *different* stripes.
    static THREAD_STRIPE: usize = {
        let hashed = RandomState::new().hash_one(std::thread::current().id());
        (hashed as usize) % STRIPES
    };
}

/// A monotonic `u64` counter split MRV-style over padded atomic stripes.
///
/// Concurrent writers on different threads usually touch different cache lines,
/// so tenant threads do not serialize on stats bumps; a read merges the stripes
/// and is exact (increments commute).
///
/// ```
/// use df_types::striped::StripedU64;
///
/// let hits = StripedU64::new();
/// std::thread::scope(|scope| {
///     for _ in 0..8 {
///         scope.spawn(|| {
///             for _ in 0..1000 {
///                 hits.add(1);
///             }
///         });
///     }
/// });
/// assert_eq!(hits.get(), 8000);
/// ```
#[derive(Default)]
pub struct StripedU64 {
    stripes: [PaddedCell; STRIPES],
}

impl StripedU64 {
    /// A zeroed counter.
    pub fn new() -> Self {
        StripedU64::default()
    }

    /// Add `n` to this thread's stripe (relaxed; never blocks, never spins
    /// against other threads' stripes).
    pub fn add(&self, n: u64) {
        let stripe = THREAD_STRIPE.with(|s| *s);
        self.stripes[stripe].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Shorthand for `add(1)`.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Merge all stripes into the logical value. Exact for the commutative
    /// increments this counter supports; concurrent with writers it reports
    /// some valid point in the add history (like any atomic counter read).
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|cell| cell.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for StripedU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedU64")
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_merge_exactly() {
        let counter = StripedU64::new();
        assert_eq!(counter.get(), 0);
        counter.add(3);
        counter.incr();
        assert_eq!(counter.get(), 4);
    }

    #[test]
    fn concurrent_adds_from_many_threads_never_lose_updates() {
        let counter = StripedU64::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(counter.get(), threads * per_thread);
    }

    #[test]
    fn distinct_threads_usually_use_distinct_stripes() {
        // Not a strict guarantee (assignments are randomized), but with 16
        // stripes and 8 threads at least two distinct stripes should be hit —
        // the property that makes the counter contention-free in practice.
        let counter = StripedU64::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| counter.add(1));
            }
        });
        let non_zero = counter
            .stripes
            .iter()
            .filter(|cell| cell.0.load(Ordering::Relaxed) > 0)
            .count();
        assert!(non_zero >= 1);
        assert_eq!(counter.get(), 8);
    }
}
