//! Capped exponential backoff for transient storage faults.
//!
//! The recovery policy distinguishes *transient* faults (a read interrupted by a
//! signal, an injected `io_transient` failpoint) from *permanent* ones (disk full,
//! checksum mismatch). Only the former are worth retrying; [`RetryPolicy::run`]
//! encodes that: it re-invokes the operation while [`crate::error::DfError::is_transient`]
//! holds,
//! sleeping `base * 2^attempt` capped at `max` between attempts. The backoff
//! schedule is fully deterministic (no jitter) and the sleeper is injectable, so
//! tests assert the exact schedule against a recording clock instead of wall time.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::error::DfResult;

type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// Retry policy for transient I/O faults: bounded attempts, deterministic capped
/// exponential backoff, injectable sleep.
#[derive(Clone)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_delay: Duration,
    max_delay: Duration,
    sleeper: Sleeper,
}

impl fmt::Debug for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetryPolicy")
            .field("max_attempts", &self.max_attempts)
            .field("base_delay", &self.base_delay)
            .field("max_delay", &self.max_delay)
            .finish_non_exhaustive()
    }
}

impl Default for RetryPolicy {
    /// Three attempts, 2ms base delay, 50ms cap, real sleep.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            sleeper: Arc::new(std::thread::sleep),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every error surfaces on the first attempt.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Override the attempt budget (clamped to at least one attempt).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Override the backoff window.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_delay = base;
        self.max_delay = max;
        self
    }

    /// Replace the sleeper — tests pass a recording closure to assert the
    /// deterministic schedule without waiting on a wall clock.
    pub fn with_sleeper(mut self, sleeper: impl Fn(Duration) + Send + Sync + 'static) -> Self {
        self.sleeper = Arc::new(sleeper);
        self
    }

    /// The backoff delay applied after attempt `attempt` (0-based) fails.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_delay
            .checked_mul(factor)
            .map_or(self.max_delay, |d| d.min(self.max_delay))
    }

    /// Run `op` until it succeeds, fails permanently, or exhausts the attempt
    /// budget. `op` receives the 0-based attempt number.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> DfResult<T>) -> DfResult<T> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Err(err) if err.is_transient() && attempt + 1 < self.max_attempts => {
                    (self.sleeper)(self.delay_for(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DfError;
    use std::sync::Mutex;

    fn transient() -> DfError {
        DfError::spill_io("spill.read", "flaky", true)
    }

    #[test]
    fn retries_transient_until_success_with_deterministic_backoff() {
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let record = Arc::clone(&slept);
        let policy = RetryPolicy::default()
            .with_max_attempts(4)
            .with_backoff(Duration::from_millis(10), Duration::from_millis(25))
            .with_sleeper(move |d| record.lock().unwrap().push(d));

        let result = policy.run(|attempt| {
            if attempt < 3 {
                Err(transient())
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result, Ok(3));
        // 10ms, 20ms, then capped at 25ms — exact and repeatable.
        assert_eq!(
            *slept.lock().unwrap(),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(25)
            ]
        );
    }

    #[test]
    fn permanent_errors_and_exhaustion_surface_immediately() {
        let policy = RetryPolicy::default()
            .with_max_attempts(3)
            .with_sleeper(|_| {});

        let mut calls = 0;
        let corrupt: DfResult<()> = policy.run(|_| {
            calls += 1;
            Err(DfError::spill_corruption("spill.read", "bad checksum"))
        });
        assert!(matches!(corrupt, Err(DfError::SpillCorruption { .. })));
        assert_eq!(calls, 1, "corruption is never retried");

        let mut calls = 0;
        let exhausted: DfResult<()> = policy.run(|_| {
            calls += 1;
            Err(transient())
        });
        assert!(matches!(
            exhausted,
            Err(DfError::SpillIo {
                transient: true,
                ..
            })
        ));
        assert_eq!(calls, 3, "attempt budget is honoured");

        let none = RetryPolicy::none().with_sleeper(|_| {});
        let mut calls = 0;
        let _ = none.run(|_| -> DfResult<()> {
            calls += 1;
            Err(transient())
        });
        assert_eq!(calls, 1);
    }
}
