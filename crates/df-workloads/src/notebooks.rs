//! A synthetic Jupyter-notebook corpus and the call-extraction analysis of paper §4.6.
//!
//! The paper analyses ~1M GitHub notebooks (Rule et al.) to ask which pandas functions
//! dominate interactive workloads (Figure 7). That corpus is not available here, so
//! this module generates a synthetic corpus whose per-function popularity follows the
//! ranking the paper reports (inspection functions such as `head`/`shape`/`plot`,
//! aggregation such as `mean`/`sum`, point access via `loc`/`iloc`, relational
//! `groupby`/`merge`, with long-tail functions like `kurtosis` appearing rarely), and
//! an extractor that recomputes the Figure 7 statistics from the generated scripts.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use df_types::cell::{cell, Cell};
use df_types::error::DfResult;

use df_core::dataframe::DataFrame;

/// Relative popularity weights of pandas functions, following the qualitative ranking
/// of paper §4.6 / Figure 7 (most popular on the left, long tail on the right).
pub const FUNCTION_WEIGHTS: [(&str, u32); 24] = [
    ("read_csv", 90),
    ("head", 85),
    ("plot", 70),
    ("shape", 60),
    ("loc", 55),
    ("mean", 50),
    ("sum", 48),
    ("groupby", 45),
    ("drop", 40),
    ("apply", 38),
    ("iloc", 35),
    ("append", 32),
    ("merge", 30),
    ("max", 28),
    ("astype", 25),
    ("values", 24),
    ("index", 22),
    ("columns", 20),
    ("describe", 16),
    ("fillna", 14),
    ("pivot", 8),
    ("transpose", 5),
    ("cov", 3),
    ("kurtosis", 1),
];

/// Configuration for corpus generation.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of notebook scripts to generate.
    pub notebooks: usize,
    /// Average number of pandas calls per notebook.
    pub mean_calls_per_notebook: usize,
    /// Fraction of notebooks that use pandas at all (the paper found ~40%).
    pub pandas_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            notebooks: 1_000,
            mean_calls_per_notebook: 12,
            pandas_fraction: 0.4,
            seed: 23,
        }
    }
}

/// A generated notebook: an ordered list of statements ("cells").
#[derive(Debug, Clone)]
pub struct Notebook {
    /// Script lines, e.g. `df = pd.read_csv("data.csv")` or `df.head()`.
    pub statements: Vec<String>,
    /// Whether the notebook imports pandas at all.
    pub uses_pandas: bool,
}

/// Generate a synthetic corpus.
pub fn generate_corpus(config: &CorpusConfig) -> Vec<Notebook> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total_weight: u32 = FUNCTION_WEIGHTS.iter().map(|(_, w)| *w).sum();
    (0..config.notebooks)
        .map(|_| {
            let uses_pandas = rng.gen_bool(config.pandas_fraction);
            if !uses_pandas {
                return Notebook {
                    statements: vec![
                        "import numpy as np".to_string(),
                        "x = np.arange(10)".to_string(),
                    ],
                    uses_pandas: false,
                };
            }
            let calls = rng.gen_range(1..=config.mean_calls_per_notebook * 2);
            let mut statements = vec!["import pandas as pd".to_string()];
            for _ in 0..calls {
                let mut pick = rng.gen_range(0..total_weight);
                let mut chosen = FUNCTION_WEIGHTS[0].0;
                for (name, weight) in FUNCTION_WEIGHTS {
                    if pick < weight {
                        chosen = name;
                        break;
                    }
                    pick -= weight;
                }
                let statement = match chosen {
                    "read_csv" => "df = pd.read_csv(\"data.csv\")".to_string(),
                    "loc" | "iloc" => format!("df.{chosen}[0]"),
                    "shape" | "values" | "index" | "columns" => format!("df.{chosen}"),
                    other => format!("df.{other}()"),
                };
                statements.push(statement);
            }
            Notebook {
                statements,
                uses_pandas: true,
            }
        })
        .collect()
}

/// Per-function usage statistics extracted from a corpus (the Figure 7 quantities).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UsageStats {
    /// Total occurrences of each function across all statements.
    pub total_occurrences: HashMap<String, u64>,
    /// Number of notebooks each function occurs in at least once.
    pub notebooks_containing: HashMap<String, u64>,
    /// Number of notebooks that use pandas.
    pub pandas_notebooks: u64,
    /// Total notebooks analysed.
    pub total_notebooks: u64,
}

/// Extract pandas method invocations from a corpus, mirroring the paper's
/// `ast`-based extraction (here a lexical scan over `df.<name>` / `pd.<name>` calls).
pub fn analyze_corpus(corpus: &[Notebook]) -> UsageStats {
    let mut stats = UsageStats {
        total_notebooks: corpus.len() as u64,
        ..UsageStats::default()
    };
    for notebook in corpus {
        if notebook.uses_pandas {
            stats.pandas_notebooks += 1;
        }
        let mut seen_in_notebook: HashMap<String, bool> = HashMap::new();
        for statement in &notebook.statements {
            for (name, _) in FUNCTION_WEIGHTS {
                let as_method = format!(".{name}");
                let mut count = 0usize;
                let mut start = 0usize;
                while let Some(pos) = statement[start..].find(&as_method) {
                    count += 1;
                    start += pos + as_method.len();
                }
                if count > 0 {
                    *stats.total_occurrences.entry(name.to_string()).or_insert(0) += count as u64;
                    seen_in_notebook.insert(name.to_string(), true);
                }
            }
        }
        for name in seen_in_notebook.keys() {
            *stats.notebooks_containing.entry(name.clone()).or_insert(0) += 1;
        }
    }
    stats
}

/// Render the usage statistics as a dataframe sorted by total occurrences (the Figure 7
/// histogram), so it can be manipulated with the library itself.
pub fn usage_dataframe(stats: &UsageStats) -> DfResult<DataFrame> {
    let mut rows: Vec<(String, u64, u64)> = stats
        .total_occurrences
        .iter()
        .map(|(name, &total)| {
            let files = stats.notebooks_containing.get(name).copied().unwrap_or(0);
            (name.clone(), total, files)
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let data: Vec<Vec<Cell>> = rows
        .into_iter()
        .map(|(name, total, files)| vec![cell(name), cell(total as i64), cell(files as i64)])
        .collect();
    DataFrame::from_rows(vec!["function", "occurrences", "notebooks"], data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Vec<Notebook> {
        generate_corpus(&CorpusConfig {
            notebooks: 400,
            mean_calls_per_notebook: 10,
            pandas_fraction: 0.4,
            seed: 5,
        })
    }

    #[test]
    fn corpus_respects_pandas_fraction() {
        let corpus = small_corpus();
        let stats = analyze_corpus(&corpus);
        assert_eq!(stats.total_notebooks, 400);
        let fraction = stats.pandas_notebooks as f64 / stats.total_notebooks as f64;
        assert!((0.3..0.5).contains(&fraction), "fraction = {fraction}");
    }

    #[test]
    fn popular_functions_dominate_the_long_tail() {
        let stats = analyze_corpus(&small_corpus());
        let head = stats.total_occurrences.get("head").copied().unwrap_or(0);
        let kurtosis = stats
            .total_occurrences
            .get("kurtosis")
            .copied()
            .unwrap_or(0);
        assert!(head > kurtosis * 5, "head={head} kurtosis={kurtosis}");
        let read_csv = stats
            .total_occurrences
            .get("read_csv")
            .copied()
            .unwrap_or(0);
        assert!(read_csv > 0);
    }

    #[test]
    fn usage_dataframe_is_sorted_by_occurrences() {
        let stats = analyze_corpus(&small_corpus());
        let df = usage_dataframe(&stats).unwrap();
        assert_eq!(df.n_cols(), 3);
        let first = df.cell(0, 1).unwrap().as_i64().unwrap();
        let last = df.cell(df.n_rows() - 1, 1).unwrap().as_i64().unwrap();
        assert!(first >= last);
        // notebooks containing a function can never exceed its total occurrences.
        for i in 0..df.n_rows() {
            let occurrences = df.cell(i, 1).unwrap().as_i64().unwrap();
            let notebooks = df.cell(i, 2).unwrap().as_i64().unwrap();
            assert!(notebooks <= occurrences);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_corpus(&CorpusConfig::default());
        let b = generate_corpus(&CorpusConfig::default());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].statements, b[0].statements);
    }
}
