//! The sales pivot example of Figure 5, plus a scalable generator used by the
//! Figure 8 pivot-plan benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use df_types::cell::{cell, Cell};
use df_types::error::DfResult;

use df_core::dataframe::DataFrame;

/// Month labels used by the example and the generator.
pub const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// The exact narrow table of Figure 5: `(Year, Month, Sales)` with eight rows (2003 has
/// no March entry).
pub fn figure5_narrow_table() -> DataFrame {
    DataFrame::from_rows(
        vec!["Year", "Month", "Sales"],
        vec![
            vec![cell(2001), cell("Jan"), cell(100)],
            vec![cell(2001), cell("Feb"), cell(110)],
            vec![cell(2001), cell("Mar"), cell(120)],
            vec![cell(2002), cell("Jan"), cell(150)],
            vec![cell(2002), cell("Feb"), cell(200)],
            vec![cell(2002), cell("Mar"), cell(250)],
            vec![cell(2003), cell("Jan"), cell(300)],
            vec![cell(2003), cell("Feb"), cell(310)],
        ],
    )
    .expect("static figure 5 table is well formed")
}

/// The "Wide Table of YEARs" of Figure 5 (years as rows, months as columns), used to
/// check pivot output.
pub fn figure5_wide_by_year() -> DataFrame {
    DataFrame::from_rows(
        vec!["Jan", "Feb", "Mar"],
        vec![
            vec![cell(100), cell(110), cell(120)],
            vec![cell(150), cell(200), cell(250)],
            vec![cell(300), cell(310), Cell::Null],
        ],
    )
    .expect("static figure 5 table is well formed")
    .with_row_labels(vec![cell(2001), cell(2002), cell(2003)])
    .expect("three row labels for three rows")
}

/// Configuration for the scalable sales generator.
#[derive(Debug, Clone, Copy)]
pub struct SalesConfig {
    /// Number of distinct years (one wide column per year when pivoting by year).
    pub years: usize,
    /// Number of distinct months used (≤ 12).
    pub months: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            years: 50,
            months: 12,
            seed: 11,
        }
    }
}

/// Generate a narrow `(Year, Month, Sales)` table with one row per (year, month) pair,
/// in year-major order (so the Year column is sorted, which is what the Figure 8
/// optimized plan exploits).
pub fn generate_sales(config: &SalesConfig) -> DfResult<DataFrame> {
    let months = config.months.min(MONTHS.len()).max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows = Vec::with_capacity(config.years * months);
    for year in 0..config.years {
        for month in MONTHS.iter().take(months) {
            rows.push(vec![
                cell(2000 + year as i64),
                cell(*month),
                cell(rng.gen_range(50..500) as i64),
            ]);
        }
    }
    DataFrame::from_rows(vec!["Year", "Month", "Sales"], rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_tables_have_paper_shapes() {
        let narrow = figure5_narrow_table();
        assert_eq!(narrow.shape(), (8, 3));
        let wide = figure5_wide_by_year();
        assert_eq!(wide.shape(), (3, 3));
        assert_eq!(wide.cell(2, 2).unwrap(), &Cell::Null);
        assert_eq!(wide.row_labels().as_slice()[0], cell(2001));
    }

    #[test]
    fn generator_produces_year_major_sorted_rows() {
        let df = generate_sales(&SalesConfig {
            years: 3,
            months: 2,
            seed: 1,
        })
        .unwrap();
        assert_eq!(df.shape(), (6, 3));
        assert_eq!(df.cell(0, 0).unwrap(), &cell(2000));
        assert_eq!(df.cell(5, 0).unwrap(), &cell(2002));
        assert_eq!(df.cell(1, 1).unwrap(), &cell("Feb"));
    }

    #[test]
    fn generator_clamps_month_count() {
        let df = generate_sales(&SalesConfig {
            years: 1,
            months: 99,
            seed: 1,
        })
        .unwrap();
        assert_eq!(df.shape(), (12, 3));
    }
}
