//! # df-workloads
//!
//! Synthetic substitutes for the datasets used in the paper's evaluation, plus random
//! frame generation for property tests:
//!
//! * [`taxi`] — the NYC taxicab trace of §3.2 / Figure 2 (synthetic, with the paper's
//!   replication-factor knob).
//! * [`sales`] — the Figure 5 sales pivot table and a scalable generator for Figure 8.
//! * [`notebooks`] — the §4.6 / Figure 7 notebook corpus and its usage analysis.
//! * [`random`] — random mixed-type frames for property-based and differential tests.
//!
//! Each substitution is documented in `DESIGN.md` (what the paper used → what is built
//! here → why the substitution preserves the behaviour the experiments measure).

pub mod notebooks;
pub mod random;
pub mod sales;
pub mod taxi;

pub use notebooks::{analyze_corpus, generate_corpus, usage_dataframe, CorpusConfig};
pub use random::{random_frame, RandomFrameConfig};
pub use sales::{figure5_narrow_table, figure5_wide_by_year, generate_sales, SalesConfig};
pub use taxi::{generate_raw, generate_typed, TaxiConfig, TAXI_COLUMNS};
