//! Random dataframe generation for property-based and differential tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use df_types::cell::{cell, Cell};
use df_types::error::DfResult;

use df_core::dataframe::DataFrame;

/// Shape and content knobs for random frame generation.
#[derive(Debug, Clone, Copy)]
pub struct RandomFrameConfig {
    /// Number of rows.
    pub rows: usize,
    /// Number of integer columns.
    pub int_cols: usize,
    /// Number of float columns.
    pub float_cols: usize,
    /// Number of low-cardinality string columns (groupby keys).
    pub category_cols: usize,
    /// Probability that any cell is null.
    pub null_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomFrameConfig {
    fn default() -> Self {
        RandomFrameConfig {
            rows: 100,
            int_cols: 2,
            float_cols: 2,
            category_cols: 1,
            null_fraction: 0.1,
            seed: 42,
        }
    }
}

/// Generate a random mixed-type dataframe.
pub fn random_frame(config: &RandomFrameConfig) -> DfResult<DataFrame> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut labels: Vec<String> = Vec::new();
    let mut columns: Vec<Vec<Cell>> = Vec::new();
    let categories = ["alpha", "beta", "gamma", "delta"];
    for c in 0..config.int_cols {
        labels.push(format!("int_{c}"));
        columns.push(
            (0..config.rows)
                .map(|_| {
                    if rng.gen_bool(config.null_fraction) {
                        Cell::Null
                    } else {
                        cell(rng.gen_range(-100..100) as i64)
                    }
                })
                .collect(),
        );
    }
    for c in 0..config.float_cols {
        labels.push(format!("float_{c}"));
        columns.push(
            (0..config.rows)
                .map(|_| {
                    if rng.gen_bool(config.null_fraction) {
                        Cell::Null
                    } else {
                        cell(rng.gen_range(-100.0..100.0))
                    }
                })
                .collect(),
        );
    }
    for c in 0..config.category_cols {
        labels.push(format!("cat_{c}"));
        columns.push(
            (0..config.rows)
                .map(|_| {
                    if rng.gen_bool(config.null_fraction) {
                        Cell::Null
                    } else {
                        cell(categories[rng.gen_range(0..categories.len())])
                    }
                })
                .collect(),
        );
    }
    DataFrame::from_columns(labels, columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_frame_has_requested_shape() {
        let df = random_frame(&RandomFrameConfig {
            rows: 25,
            int_cols: 3,
            float_cols: 1,
            category_cols: 2,
            ..RandomFrameConfig::default()
        })
        .unwrap();
        assert_eq!(df.shape(), (25, 6));
        assert_eq!(df.col_labels().as_slice()[0], cell("int_0"));
    }

    #[test]
    fn random_frame_is_deterministic_per_seed() {
        let a = random_frame(&RandomFrameConfig::default()).unwrap();
        let b = random_frame(&RandomFrameConfig::default()).unwrap();
        assert!(a.same_data(&b));
    }

    #[test]
    fn null_fraction_zero_means_no_nulls() {
        let df = random_frame(&RandomFrameConfig {
            null_fraction: 0.0,
            rows: 50,
            ..RandomFrameConfig::default()
        })
        .unwrap();
        let nulls: usize = df
            .columns()
            .iter()
            .map(|c| c.len() - c.count_non_null())
            .sum();
        assert_eq!(nulls, 0);
    }
}
