//! Synthetic NYC-taxi-like trip data.
//!
//! The paper's case study (§3.2) benchmarks MODIN against pandas on the New York City
//! taxicab dataset, "replicated 1 to 11 times to yield a dataset size between 20 to
//! 250 GB". That trace is not available here, so this module generates a synthetic
//! substitute with the same column mix and the statistical features the queries
//! depend on: a `passenger_count` column with a small number of distinct values plus
//! nulls (the groupby key), wide numeric fare/geo columns (the map target), string
//! vendor/payment columns, and timestamps. A `replication` knob mirrors the paper's
//! scale factor.
//!
//! Two variants are provided: [`generate_typed`] (already-parsed cells, as if the data
//! had been loaded by a typed reader) and [`generate_raw`] (every cell a raw string, as
//! if freshly read from CSV) — the latter is what the schema-induction experiments use.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use df_types::cell::Cell;
use df_types::domain::format_datetime_seconds;
use df_types::error::DfResult;

use df_core::dataframe::DataFrame;

/// Configuration for the synthetic taxi workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxiConfig {
    /// Rows generated at replication factor 1.
    pub base_rows: usize,
    /// Replication factor (the paper uses 1–11).
    pub replication: usize,
    /// Fraction of `passenger_count` entries that are null.
    pub null_fraction: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        TaxiConfig {
            base_rows: 10_000,
            replication: 1,
            null_fraction: 0.05,
            seed: 7,
        }
    }
}

impl TaxiConfig {
    /// Total number of rows this configuration generates.
    pub fn total_rows(&self) -> usize {
        self.base_rows * self.replication.max(1)
    }
}

/// The column labels of the synthetic trace (a subset of the real TLC schema, wide
/// enough to exercise the same code paths).
pub const TAXI_COLUMNS: [&str; 14] = [
    "vendor_id",
    "pickup_datetime",
    "dropoff_datetime",
    "passenger_count",
    "trip_distance",
    "pickup_longitude",
    "pickup_latitude",
    "dropoff_longitude",
    "dropoff_latitude",
    "payment_type",
    "fare_amount",
    "tip_amount",
    "tolls_amount",
    "total_amount",
];

/// Generate the trace with already-typed cells.
pub fn generate_typed(config: &TaxiConfig) -> DfResult<DataFrame> {
    build(config, false)
}

/// Generate the trace with raw (string) cells, as if read from an untyped CSV file.
pub fn generate_raw(config: &TaxiConfig) -> DfResult<DataFrame> {
    build(config, true)
}

fn build(config: &TaxiConfig, raw: bool) -> DfResult<DataFrame> {
    let rows = config.total_rows();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(rows); TAXI_COLUMNS.len()];
    let vendors = ["CMT", "VTS", "DDS"];
    let payments = ["CASH", "CREDIT", "DISPUTE", "NO CHARGE"];
    for _ in 0..rows {
        let vendor = vendors[rng.gen_range(0..vendors.len())];
        let pickup_secs: i64 = 1_560_000_000 + rng.gen_range(0..30 * 86_400);
        let duration: i64 = rng.gen_range(120..7_200);
        let passenger: Option<i64> = if rng.gen_bool(config.null_fraction) {
            None
        } else {
            Some(rng.gen_range(1..=6))
        };
        let distance: f64 = rng.gen_range(0.3..30.0);
        let fare: f64 = 2.5 + distance * 2.3 + rng.gen_range(0.0..5.0);
        let tip: f64 = if rng.gen_bool(0.6) {
            fare * rng.gen_range(0.05..0.3)
        } else {
            0.0
        };
        let tolls: f64 = if rng.gen_bool(0.1) { 6.12 } else { 0.0 };
        let payment = payments[rng.gen_range(0..payments.len())];
        let lon = -74.0 + rng.gen_range(-0.2..0.2);
        let lat = 40.75 + rng.gen_range(-0.2..0.2);
        let lon2 = -74.0 + rng.gen_range(-0.2..0.2);
        let lat2 = 40.75 + rng.gen_range(-0.2..0.2);
        let total = fare + tip + tolls;
        let values: [Cell; 14] = [
            Cell::Str(vendor.to_string()),
            Cell::Str(format_datetime_seconds(pickup_secs)),
            Cell::Str(format_datetime_seconds(pickup_secs + duration)),
            passenger.map(Cell::Int).unwrap_or(Cell::Null),
            Cell::Float(distance),
            Cell::Float(lon),
            Cell::Float(lat),
            Cell::Float(lon2),
            Cell::Float(lat2),
            Cell::Str(payment.to_string()),
            Cell::Float(fare),
            Cell::Float(tip),
            Cell::Float(tolls),
            Cell::Float(total),
        ];
        for (slot, value) in columns.iter_mut().zip(values) {
            let value = if raw {
                match value {
                    Cell::Null => Cell::Null,
                    other => Cell::Str(other.to_raw_string()),
                }
            } else {
                value
            };
            slot.push(value);
        }
    }
    DataFrame::from_columns(TAXI_COLUMNS.to_vec(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::domain::Domain;

    #[test]
    fn typed_generation_has_expected_shape_and_schema() {
        let config = TaxiConfig {
            base_rows: 200,
            replication: 2,
            ..TaxiConfig::default()
        };
        assert_eq!(config.total_rows(), 400);
        let mut df = generate_typed(&config).unwrap();
        assert_eq!(df.shape(), (400, 14));
        let schema = df.resolve_schema();
        assert_eq!(schema[3], Domain::Int); // passenger_count
        assert_eq!(schema[10], Domain::Float); // fare_amount
        assert_eq!(schema[0], Domain::Category); // vendor_id: 3 distinct strings
    }

    #[test]
    fn raw_generation_is_untyped_strings() {
        let df = generate_raw(&TaxiConfig {
            base_rows: 50,
            ..TaxiConfig::default()
        })
        .unwrap();
        assert_eq!(df.schema(), vec![None; 14]);
        // Every non-null cell is a string in the raw variant.
        assert!(df
            .columns()
            .iter()
            .flat_map(|c| c.cells())
            .all(|c| matches!(c, Cell::Str(_) | Cell::Null)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = TaxiConfig {
            base_rows: 30,
            ..TaxiConfig::default()
        };
        let a = generate_typed(&config).unwrap();
        let b = generate_typed(&config).unwrap();
        assert!(a.same_data(&b));
        let c = generate_typed(&TaxiConfig { seed: 99, ..config }).unwrap();
        assert!(!a.same_data(&c));
    }

    #[test]
    fn null_fraction_controls_passenger_nulls() {
        let none = generate_typed(&TaxiConfig {
            base_rows: 300,
            null_fraction: 0.0,
            ..TaxiConfig::default()
        })
        .unwrap();
        assert_eq!(none.columns()[3].count_non_null(), 300);
        let half = generate_typed(&TaxiConfig {
            base_rows: 300,
            null_fraction: 0.5,
            ..TaxiConfig::default()
        })
        .unwrap();
        let non_null = half.columns()[3].count_non_null();
        assert!(non_null > 100 && non_null < 200, "non_null = {non_null}");
    }
}
