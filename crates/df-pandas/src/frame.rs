//! The pandas-style user API.
//!
//! Paper §3.1/§3.3: MODIN keeps the pandas surface ("users can simply invoke `import
//! modin.pandas`") but *rewrites every API call into a sequence of operators in the
//! compact dataframe algebra*, so that only the small operator kernel needs to be
//! optimised. [`PandasFrame`] does exactly that: each method builds an
//! [`AlgebraExpr`]; the session's engine (scalable, baseline or reference) executes it.
//!
//! The frame is *genuinely lazy* (§6.1): methods only build the expression DAG and
//! (depending on the session's evaluation mode) schedule it. Real dataframes exist
//! only at the materialisation points — [`PandasFrame::collect`],
//! [`PandasFrame::head`] / [`PandasFrame::tail`], and the CSV writes — where the
//! optimizer pass runs once over the whole pipeline. When the session has already
//! executed a frame's statement, derived statements *rebase* their execution plan
//! onto the cached [`FrameHandle`] (an `AlgebraExpr::Handle` leaf), so a chain of
//! statements crosses each boundary as an engine-owned partitioned handle — no
//! assembly, no re-partitioning, no re-execution of the prefix. Each frame memoises
//! its expression fingerprint, so a statement's plan is serialised once, not once
//! per submit/collect/inspect call.
//!
//! Methods deliberately mirror familiar pandas names (`fillna`, `isna`, `get_dummies`,
//! `merge`, `groupby`, `pivot`, `set_index`, `reset_index`, `sort_values`, `cov`, …)
//! and the Table 2 / §4.4 rewrites are encoded in their bodies; `crate::rewrite`
//! documents the mapping in data form for the Table 2 experiment.

use std::sync::{Arc, OnceLock};

use df_types::cell::{Cell, CellKey};
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};

use df_core::algebra::{
    AggFunc, Aggregation, AlgebraExpr, CmpOp, ColumnSelector, JoinOn, JoinType, MapFunc, Predicate,
    RowView, SortSpec, WindowFunc,
};
use df_core::dataframe::DataFrame;
use df_core::handle::FrameHandle;
use df_core::linalg;
use df_storage::csv::{read_csv_path, read_csv_str, write_csv_path, write_csv_string, CsvOptions};

use df_engine::optimizer::PivotPlan;
use df_engine::session::EvalMode;

use crate::session::Session;

/// How a derived frame was built: the parent statements and the operator to
/// re-apply to fresh base plans. Kept so *materialisation points* can rebase onto
/// whatever handles the session has cached by then — not only the ones that existed
/// when the statement was typed (a lazy chain whose intermediate was later collected
/// must resume from that intermediate's handle instead of re-executing its subtree).
struct Lineage {
    parents: Vec<PandasFrame>,
    rebuild: Box<dyn Fn(Vec<AlgebraExpr>) -> AlgebraExpr + Send + Sync>,
}

/// A lazily described dataframe bound to a [`Session`].
#[derive(Clone)]
pub struct PandasFrame {
    session: Arc<Session>,
    expr: AlgebraExpr,
    /// Memoised fingerprint of `expr` — the statement's cache key. Shared across
    /// clones so the (potentially deep) plan is serialised at most once per
    /// statement, no matter how many times it is submitted, collected or inspected.
    fingerprint: Arc<OnceLock<String>>,
    /// Derivation record (absent for ingest literals).
    lineage: Option<Arc<Lineage>>,
}

impl PandasFrame {
    // ------------------------------------------------------------------ construction

    fn from_expr(session: Arc<Session>, expr: AlgebraExpr) -> PandasFrame {
        PandasFrame {
            session,
            expr,
            fingerprint: Arc::new(OnceLock::new()),
            lineage: None,
        }
    }

    /// Wrap an existing dataframe value. A submit-time failure (e.g. spill-store
    /// I/O under an eager out-of-core session) is *recorded* on the session
    /// ([`SessionStats::submit_errors`](df_engine::session::SessionStats), \
    /// [`df_engine::session::QuerySession::take_last_submit_error`]) and surfaces
    /// again at the frame's next materialisation point; use
    /// [`PandasFrame::try_from_dataframe`] to propagate it immediately.
    pub fn from_dataframe(session: &Arc<Session>, df: DataFrame) -> PandasFrame {
        let frame = PandasFrame::from_expr(Arc::clone(session), AlgebraExpr::literal(df));
        frame.submit_plan(&frame.expr);
        frame
    }

    /// Wrap an existing dataframe value, propagating any submit-time error.
    pub fn try_from_dataframe(session: &Arc<Session>, df: DataFrame) -> DfResult<PandasFrame> {
        let frame = PandasFrame::from_expr(Arc::clone(session), AlgebraExpr::literal(df));
        frame
            .session
            .query()
            .submit_keyed(&frame.expr, frame.fingerprint(), None)?;
        Ok(frame)
    }

    /// Build a frame from column labels and row-major data (like `pd.DataFrame(...)`).
    pub fn from_rows(
        session: &Arc<Session>,
        columns: Vec<&str>,
        rows: Vec<Vec<Cell>>,
    ) -> DfResult<PandasFrame> {
        PandasFrame::try_from_dataframe(session, DataFrame::from_rows(columns, rows)?)
    }

    /// Build a frame from column labels and per-column cell vectors.
    pub fn from_columns(
        session: &Arc<Session>,
        columns: Vec<&str>,
        data: Vec<Vec<Cell>>,
    ) -> DfResult<PandasFrame> {
        PandasFrame::try_from_dataframe(session, DataFrame::from_columns(columns, data)?)
    }

    /// `pd.read_csv` over an in-memory document. The result is untyped (raw `Σ*`)
    /// unless `options.infer_schema` is set; the engine induces domains on demand.
    pub fn read_csv_str(
        session: &Arc<Session>,
        content: &str,
        options: &CsvOptions,
    ) -> DfResult<PandasFrame> {
        PandasFrame::try_from_dataframe(session, read_csv_str(content, options)?)
    }

    /// `pd.read_csv` over a file on disk.
    ///
    /// On a MODIN-backed session this is the paper's parallel-I/O headline: the file
    /// is parsed chunk-by-chunk on the engine's worker pool straight into a
    /// partitioned [`FrameHandle`] — under a memory budget each finished band goes
    /// through the session's spill store, so a file larger than the budget ingests
    /// with peak residency within *budget + one band per worker*. The returned frame
    /// is lazy: its statement is the handle itself, and the session caches it keyed
    /// by `path + options + file identity (mtime, length, inode/ctime on Unix)`, so
    /// re-reading an unchanged file is a cache hit, derived statements rebase onto
    /// the scan result without re-reading, and a regenerated file both invalidates
    /// the key and evicts the superseded version's entry. Non-MODIN sessions fall
    /// back to the serial reader (the results are cell-for-cell identical either
    /// way).
    ///
    /// ```
    /// use df_pandas::{PandasFrame, Session};
    /// use df_storage::csv::CsvOptions;
    ///
    /// let dir = std::env::temp_dir().join(format!("df_pandas_doc_{}", std::process::id()));
    /// std::fs::create_dir_all(&dir)?;
    /// let path = dir.join("sales.csv");
    /// std::fs::write(&path, "region,amount\nnorth,12\nsouth,30\nnorth,5\n")?;
    ///
    /// let session = Session::modin();
    /// let sales = PandasFrame::read_csv_path(&session, &path, &CsvOptions::default())?;
    /// assert_eq!(sales.shape()?, (3, 2));
    /// // Re-reading the unchanged file is served from the session cache.
    /// let again = PandasFrame::read_csv_path(&session, &path, &CsvOptions::default())?;
    /// assert_eq!(again.collect()?.n_rows(), 3);
    /// assert!(session.stats().cache_hits >= 1);
    /// std::fs::remove_file(&path)?;
    /// # Ok::<(), df_types::error::DfError>(())
    /// ```
    pub fn read_csv_path(
        session: &Arc<Session>,
        path: impl AsRef<std::path::Path>,
        options: &CsvOptions,
    ) -> DfResult<PandasFrame> {
        let path = path.as_ref();
        if let Some(engine) = session.modin_engine() {
            let (prefix, key) = csv_statement_key(path, options)?;
            if session.mode() == EvalMode::Lazy {
                // A lazy MODIN session keeps the read *symbolic*: the statement is a
                // SCAN_CSV algebra leaf, so by the time a materialisation point runs
                // the whole pipeline, the optimizer can fold later SELECTIONs and
                // PROJECTIONs into the scan — skipping chunks via min/max statistics
                // and parsing only the referenced columns. The cache key still
                // carries the file identity, so an unchanged file re-read serves the
                // cached partitioned result.
                return Ok(PandasFrame::from_scan(session, path, options, key));
            }
            let engine = Arc::clone(engine);
            let handle = session.query().ingest_keyed(&key, Some(&prefix), || {
                engine.read_csv_handle(path, options)
            })?;
            return Ok(PandasFrame::from_ingest(session, handle, key));
        }
        PandasFrame::try_from_dataframe(session, read_csv_path(path, options)?)
    }

    /// A frame whose statement is a deferred [`df_core::scan::ScanCsv`] leaf (lazy
    /// MODIN sessions): nothing is read until a materialisation point, and the
    /// optimizer may push predicates/projections into the leaf first.
    fn from_scan(
        session: &Arc<Session>,
        path: &std::path::Path,
        options: &CsvOptions,
        key: String,
    ) -> PandasFrame {
        let scan = df_core::scan::ScanCsv::new(
            path,
            df_core::scan::ScanOptions {
                delimiter: options.delimiter,
                has_header: options.has_header,
                infer_schema: options.infer_schema,
            },
            key.clone(),
        );
        let fingerprint = OnceLock::new();
        fingerprint
            .set(key)
            .expect("fresh OnceLock cannot be initialised");
        let frame = PandasFrame {
            session: Arc::clone(session),
            expr: AlgebraExpr::scan_csv(scan),
            fingerprint: Arc::new(fingerprint),
            lineage: None,
        };
        frame.session.query().note_statement();
        frame
    }

    /// A frame whose statement *is* an engine-owned ingest handle, keyed in the
    /// session cache by file identity rather than by a plan fingerprint.
    fn from_ingest(session: &Arc<Session>, handle: FrameHandle, key: String) -> PandasFrame {
        let fingerprint = OnceLock::new();
        fingerprint
            .set(key)
            .expect("fresh OnceLock cannot be initialised");
        PandasFrame {
            session: Arc::clone(session),
            expr: AlgebraExpr::handle(handle),
            fingerprint: Arc::new(fingerprint),
            lineage: None,
        }
    }

    /// The best execution plan for this statement *right now*: its own cached
    /// [`FrameHandle`] when the statement already executed, otherwise the operator
    /// re-applied to each parent's best plan (recursively — so any ancestor that has
    /// been materialised since this frame was typed contributes its handle instead
    /// of its subtree). With no handles anywhere this reconstructs the full logical
    /// pipeline, so lazy chains stay one single plan.
    fn exec_plan(&self) -> AlgebraExpr {
        if let Some(handle) = self.session.query().handle_for(self.fingerprint()) {
            return AlgebraExpr::handle(handle);
        }
        match &self.lineage {
            Some(lineage) => {
                let bases = lineage.parents.iter().map(PandasFrame::exec_plan).collect();
                (lineage.rebuild)(bases)
            }
            None => self.expr.clone(),
        }
    }

    /// Derive a new statement by applying `build` to this frame. The *logical*
    /// expression always extends this frame's full DAG (so `expr()` shows the whole
    /// pipeline and re-derivations fingerprint identically); execution rebases onto
    /// cached handles via [`PandasFrame::exec_plan`]. Submit-time errors are
    /// recorded on the session and resurface at the next materialisation point.
    fn derive(&self, build: impl Fn(AlgebraExpr) -> AlgebraExpr + Send + Sync + 'static) -> Self {
        let mut frame = PandasFrame::from_expr(Arc::clone(&self.session), build(self.expr.clone()));
        frame.lineage = Some(Arc::new(Lineage {
            parents: vec![self.clone()],
            rebuild: Box::new(move |mut bases| build(bases.pop().expect("unary lineage"))),
        }));
        frame.submit_current_plan();
        frame
    }

    /// Binary-operator variant of [`PandasFrame::derive`]: each side rebases onto its
    /// own best plan independently.
    fn derive2(
        &self,
        other: &PandasFrame,
        build: impl Fn(AlgebraExpr, AlgebraExpr) -> AlgebraExpr + Send + Sync + 'static,
    ) -> PandasFrame {
        let mut frame = PandasFrame::from_expr(
            Arc::clone(&self.session),
            build(self.expr.clone(), other.expr.clone()),
        );
        frame.lineage = Some(Arc::new(Lineage {
            parents: vec![self.clone(), other.clone()],
            rebuild: Box::new(move |mut bases| {
                let right = bases.pop().expect("binary lineage");
                let left = bases.pop().expect("binary lineage");
                build(left, right)
            }),
        }));
        frame.submit_current_plan();
        frame
    }

    fn submit_current_plan(&self) {
        if self.session.mode() == EvalMode::Lazy {
            // A lazy submit records nothing but the statement itself — skip building
            // (and fingerprinting) an execution plan the scheduler would discard.
            self.session.query().note_statement();
            return;
        }
        let plan = self.exec_plan();
        self.submit_plan(&plan);
    }

    fn submit_plan(&self, plan: &AlgebraExpr) {
        if let Err(err) =
            self.session
                .query()
                .submit_keyed(plan, self.fingerprint(), Some(&self.expr))
        {
            self.session.query().record_submit_error(err);
        }
    }

    // ------------------------------------------------------------------ inspection

    /// The algebra expression this frame denotes (exposed for tests and plan display).
    /// Always the full logical pipeline, even when execution rebased onto handles.
    pub fn expr(&self) -> &AlgebraExpr {
        &self.expr
    }

    /// The memoised fingerprint of this frame's expression (its cache key).
    pub fn fingerprint(&self) -> &str {
        self.fingerprint.get_or_init(|| self.expr.fingerprint())
    }

    /// The session this frame is bound to.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Quarantine this statement's cached handle *and every ancestor's*, so the
    /// next [`PandasFrame::exec_plan`] reconstructs the full logical pipeline
    /// instead of rebasing onto a possibly-poisoned handle somewhere up the chain.
    fn evict_lineage(&self) {
        self.session.query().evict(self.fingerprint());
        if let Some(lineage) = &self.lineage {
            for parent in &lineage.parents {
                parent.evict_lineage();
            }
        }
    }

    /// One-shot corruption recovery around a materialisation call. The session
    /// layer already retries corruption local to *this* statement's result; what
    /// it cannot see is a poisoned handle the execution plan was *rebased onto*
    /// (an ancestor's cached result) — re-executing the rebased plan rereads the
    /// same bad spill file. On [`DfError::SpillCorruption`] this evicts the whole
    /// lineage and retries once from the reconstructed logical plan — the
    /// dataframe-algebra pipeline is the lineage record, so the result is
    /// recomputed from clean inputs. Ingest-rooted frames (the handle *is* the
    /// root; there is no plan to replay) re-fail with the same typed error.
    fn with_lineage_recovery<T>(&self, op: impl Fn(&AlgebraExpr) -> DfResult<T>) -> DfResult<T> {
        match op(&self.exec_plan()) {
            Err(err) if err.is_spill_corruption() => {
                self.evict_lineage();
                let retried = op(&self.exec_plan());
                if retried.is_ok() {
                    self.session.query().note_recovery();
                }
                retried
            }
            other => other,
        }
    }

    /// The engine-owned result handle for this frame — executing it now if the
    /// session has not already. The handle stays partitioned (and spill-backed under
    /// a memory budget) until a materialisation point consumes it.
    pub fn handle(&self) -> DfResult<FrameHandle> {
        self.with_lineage_recovery(|plan| {
            self.session
                .query()
                .handle_keyed(plan, self.fingerprint(), Some(&self.expr))
        })
    }

    /// Materialisation point: the full result as a dataframe.
    pub fn collect(&self) -> DfResult<DataFrame> {
        self.with_lineage_recovery(|plan| {
            self.session
                .query()
                .collect_keyed(plan, self.fingerprint(), Some(&self.expr))
        })
    }

    /// `(rows, columns)` of the result — from handle metadata when the statement
    /// already executed (no assembly), otherwise via the engine.
    pub fn shape(&self) -> DfResult<(usize, usize)> {
        Ok(self.handle()?.shape())
    }

    /// The first `k` rows, using the engine's prefix-prioritised path (§6.1.2).
    pub fn head(&self, k: usize) -> DfResult<DataFrame> {
        self.with_lineage_recovery(|plan| {
            self.session
                .query()
                .head_keyed(plan, self.fingerprint(), Some(&self.expr), k)
        })
    }

    /// The last `k` rows.
    pub fn tail(&self, k: usize) -> DfResult<DataFrame> {
        self.with_lineage_recovery(|plan| {
            self.session
                .query()
                .tail_keyed(plan, self.fingerprint(), Some(&self.expr), k)
        })
    }

    /// The tabular view (prefix and suffix) the paper's Figure 1 shows after each step.
    pub fn display(&self, peek: usize) -> DfResult<String> {
        Ok(self.collect()?.display_with(peek))
    }

    /// The engine's optimizer report for this statement: the logical and optimized
    /// plans annotated with estimated rows/bytes per node, which pushdowns fired
    /// (predicates/projections into scans, fused selections, eliminated transpose
    /// pairs, pushed limits), the planned join strategies, and whether the result is
    /// already cached. Purely observational — nothing executes and no counters move.
    ///
    /// ```
    /// use df_pandas::{PandasFrame, Session};
    /// use df_engine::engine::ModinConfig;
    /// use df_engine::session::EvalMode;
    /// use df_storage::csv::CsvOptions;
    ///
    /// let dir = std::env::temp_dir().join(format!("df_explain_doc_{}", std::process::id()));
    /// std::fs::create_dir_all(&dir)?;
    /// let path = dir.join("trips.csv");
    /// let mut content = String::from("trip_id,fare,vendor,tip\n");
    /// for i in 0..64 {
    ///     content.push_str(&format!("{i},{}.5,v{},{}\n", i % 20, i % 3, i % 4));
    /// }
    /// std::fs::write(&path, content)?;
    ///
    /// // Lazy MODIN session: the read stays a SCAN_CSV leaf the optimizer can fold
    /// // later operators into.
    /// let session = Session::modin_with(
    ///     ModinConfig::default().with_partition_size(16, 8),
    ///     EvalMode::Lazy,
    /// );
    /// let options = CsvOptions { infer_schema: true, ..CsvOptions::default() };
    /// let trips = PandasFrame::read_csv_path(&session, &path, &options)?;
    /// let narrow = trips.filter_gt("trip_id", 55)?.select(&["fare", "trip_id"]);
    ///
    /// let report = narrow.explain();
    /// assert!(report.contains("== logical plan =="));
    /// assert!(report.contains("== optimized plan =="));
    /// assert!(report.contains("SCAN_CSV"));
    /// assert!(report.contains("predicates pushed into scans: 1"));
    /// assert!(report.contains("projections pushed into scans: 1"));
    /// assert!(report.contains("result not cached"));
    /// // explain() executed nothing…
    /// assert_eq!(session.stats().executions, 0);
    /// // …and the pushed plan really skips chunks and prunes columns when it runs.
    /// assert_eq!(narrow.collect()?.shape(), (8, 2));
    /// let stats = session.stats();
    /// assert!(stats.chunks_skipped > 0);
    /// assert!(stats.columns_pruned > 0);
    /// assert!(narrow.explain().contains("result cached"));
    /// std::fs::remove_file(&path)?;
    /// # Ok::<(), df_types::error::DfError>(())
    /// ```
    pub fn explain(&self) -> String {
        self.session
            .query()
            .explain_keyed(&self.expr, self.fingerprint())
    }

    /// Column label → known domain for every column, from handle metadata only —
    /// like [`PandasFrame::shape`], nothing is loaded or assembled, even when the
    /// result is a fully spilled partition grid. `None` per slot for a column whose
    /// schema induction is still deferred, or `None` overall when the handle's
    /// metadata cannot answer (a deferred transpose); use [`PandasFrame::dtypes`]
    /// when every domain must be resolved.
    pub fn schema(&self) -> DfResult<Option<df_core::FrameSchema>> {
        Ok(self.handle()?.schema())
    }

    /// Column label → domain for every column whose domain is known or inducible
    /// (pandas `dtypes`). Answered from handle metadata when every column's domain
    /// is already known — a spill-backed ingest reports its dtypes without loading
    /// a single band back — and by inducing on the materialised frame otherwise.
    pub fn dtypes(&self) -> DfResult<Vec<(Cell, Domain)>> {
        if let Some(schema) = self.handle()?.schema() {
            if schema.iter().all(|(_, domain)| domain.is_some()) {
                return Ok(schema
                    .into_iter()
                    .map(|(label, domain)| (label, domain.expect("checked above")))
                    .collect());
            }
        }
        // Some column's domain is still unknown (raw Σ* data, or a handle without
        // schema metadata): induce on the materialised frame.
        let mut df = self.collect()?;
        let domains = df.resolve_schema();
        Ok(df
            .col_labels()
            .as_slice()
            .iter()
            .cloned()
            .zip(domains)
            .collect())
    }

    /// Positional single-cell read (`df.iloc[i, j]`).
    pub fn iloc(&self, row: usize, col: usize) -> DfResult<Cell> {
        Ok(self.collect()?.cell(row, col)?.clone())
    }

    /// Positional point update (`df.iloc[i, j] = value`) — workflow step C1. Eager by
    /// necessity: the frame is materialised, patched, and becomes a new literal.
    pub fn iloc_set(
        &self,
        row: usize,
        col: usize,
        value: impl Into<Cell>,
    ) -> DfResult<PandasFrame> {
        let mut df = self.collect()?;
        df.set_cell(row, col, value.into())?;
        PandasFrame::try_from_dataframe(&self.session, df)
    }

    /// Materialisation point: serialise the frame as CSV.
    pub fn to_csv_string(&self) -> DfResult<String> {
        write_csv_string(&self.collect()?, &CsvOptions::default())
    }

    /// Materialisation point: write the frame to a CSV file on disk.
    ///
    /// A partitioned result (a MODIN session's handle) is streamed *band by band* —
    /// each band is materialised, written, and dropped before the next is touched —
    /// so a larger-than-memory result is written without ever being assembled.
    /// Materialised handles fall back to a plain whole-frame write.
    pub fn write_csv_path(&self, path: impl AsRef<std::path::Path>) -> DfResult<()> {
        let options = CsvOptions::default();
        let handle = self.handle()?;
        if let FrameHandle::Partitioned(result) = &handle {
            if let Some(grid_result) = result.as_any().downcast_ref::<df_engine::GridResult>() {
                return write_grid_csv(grid_result.grid(), path.as_ref(), &options);
            }
        }
        write_csv_path(&handle.into_dataframe()?, path, &options)
    }

    // ------------------------------------------------------------------ selection

    /// SELECTION with an arbitrary predicate.
    pub fn filter(&self, predicate: Predicate) -> PandasFrame {
        self.derive(move |base| base.select(predicate.clone()))
    }

    /// Keep rows where `column > value`.
    pub fn filter_gt(&self, column: &str, value: impl Into<Cell>) -> DfResult<PandasFrame> {
        Ok(self.filter(Predicate::ColCmp {
            column: Cell::Str(column.into()),
            op: CmpOp::Gt,
            value: value.into(),
        }))
    }

    /// Keep rows where `column == value`.
    pub fn filter_eq(&self, column: &str, value: impl Into<Cell>) -> DfResult<PandasFrame> {
        Ok(self.filter(Predicate::ColCmp {
            column: Cell::Str(column.into()),
            op: CmpOp::Eq,
            value: value.into(),
        }))
    }

    /// Drop rows with a null in any of the given columns (pandas `dropna(subset=...)`),
    /// or in any column at all when `subset` is empty.
    pub fn dropna(&self, subset: &[&str]) -> DfResult<PandasFrame> {
        let columns: Vec<Cell> = if subset.is_empty() {
            self.collect()?.col_labels().as_slice().to_vec()
        } else {
            subset.iter().map(|s| Cell::Str((*s).into())).collect()
        };
        let mut predicate = Predicate::True;
        for column in columns {
            predicate =
                Predicate::And(Box::new(predicate), Box::new(Predicate::NotNull { column }));
        }
        Ok(self.filter(predicate))
    }

    /// Rows `start..end` by position.
    pub fn slice(&self, start: usize, end: usize) -> PandasFrame {
        self.filter(Predicate::PositionRange { start, end })
    }

    /// PROJECTION onto the named columns (`df[["a", "b"]]`).
    pub fn select(&self, columns: &[&str]) -> PandasFrame {
        let labels: Vec<Cell> = columns.iter().map(|c| Cell::Str((*c).into())).collect();
        self.derive(move |base| base.project(ColumnSelector::ByLabels(labels.clone())))
    }

    /// A single column as a one-column frame (`df["a"]`).
    pub fn column(&self, column: &str) -> PandasFrame {
        self.select(&[column])
    }

    /// Drop the named columns (pandas `drop(columns=...)`).
    pub fn drop_columns(&self, columns: &[&str]) -> PandasFrame {
        let labels: Vec<Cell> = columns.iter().map(|c| Cell::Str((*c).into())).collect();
        self.derive(move |base| base.project(ColumnSelector::Excluding(labels.clone())))
    }

    /// Keep only numeric columns (what `cov`, `corr` and `describe` operate on).
    pub fn select_numeric(&self) -> PandasFrame {
        self.derive(|base| base.project(ColumnSelector::Numeric))
    }

    // ------------------------------------------------------------------ transformation

    /// Replace nulls (pandas `fillna`) — Table 2: a MAP.
    pub fn fillna(&self, value: impl Into<Cell>) -> PandasFrame {
        let value = value.into();
        self.derive(move |base| base.map(MapFunc::FillNull(value.clone())))
    }

    /// Null-indicator mask (pandas `isna`) — Table 2: a MAP.
    pub fn isna(&self) -> PandasFrame {
        self.derive(|base| base.map(MapFunc::IsNullMask))
    }

    /// Alias of [`PandasFrame::isna`] (pandas `isnull`).
    pub fn isnull(&self) -> PandasFrame {
        self.isna()
    }

    /// Upper-case every string cell (pandas `str.upper` applied frame-wide).
    pub fn str_upper(&self) -> PandasFrame {
        self.derive(|base| base.map(MapFunc::StrUpper))
    }

    /// Cast a column to a domain (pandas `astype`).
    pub fn astype(&self, column: &str, domain: Domain) -> PandasFrame {
        let cast = MapFunc::Cast(vec![(Cell::Str(column.into()), domain)]);
        self.derive(move |base| base.map(cast.clone()))
    }

    /// Parse raw string columns into their induced domains (explicit schema induction).
    pub fn infer_types(&self) -> PandasFrame {
        self.derive(|base| base.map(MapFunc::ParseRaw))
    }

    /// Apply a per-cell function to one column, leaving the others untouched — the
    /// workflow step C3 `map` (e.g. Yes/No → 1/0).
    pub fn map_column(
        &self,
        column: &str,
        name: &str,
        f: impl Fn(&Cell) -> Cell + Send + Sync + 'static,
    ) -> DfResult<PandasFrame> {
        let labels = self.collect()?.col_labels().as_slice().to_vec();
        let target = Cell::Str(column.into());
        let target_key = target.group_key();
        if !labels.iter().any(|l| l.group_key() == target_key) {
            return Err(DfError::column_not_found(column));
        }
        let output_labels = labels.clone();
        let func = MapFunc::Custom {
            name: format!("map_column({column}, {name})"),
            output_labels: output_labels.clone(),
            output_domains: None,
            func: Arc::new(move |row: RowView<'_>| {
                row.col_labels
                    .iter()
                    .zip(row.cells.iter())
                    .map(|(label, value)| {
                        if label.group_key() == target_key {
                            f(value)
                        } else {
                            (*value).clone()
                        }
                    })
                    .collect()
            }),
        };
        Ok(self.derive(move |base| base.map(func.clone())))
    }

    /// Apply an arbitrary row function producing named output columns (pandas `apply`).
    pub fn apply_rows(
        &self,
        name: &str,
        output_columns: Vec<&str>,
        f: impl Fn(RowView<'_>) -> Vec<Cell> + Send + Sync + 'static,
    ) -> PandasFrame {
        let output_labels: Vec<Cell> = output_columns
            .into_iter()
            .map(|c| Cell::Str(c.into()))
            .collect();
        let func = MapFunc::Custom {
            name: name.to_string(),
            output_labels,
            output_domains: None,
            func: Arc::new(f),
        };
        self.derive(move |base| base.map(func.clone()))
    }

    /// Apply a per-cell function to every cell (pandas `applymap` / `transform`).
    pub fn transform_cells(
        &self,
        name: &str,
        f: impl Fn(&Cell) -> Cell + Send + Sync + 'static,
    ) -> PandasFrame {
        let func = MapFunc::PerCell {
            name: name.to_string(),
            func: Arc::new(f),
        };
        self.derive(move |base| base.map(func.clone()))
    }

    /// Rename columns (pandas `rename(columns=...)`).
    pub fn rename(&self, mapping: &[(&str, &str)]) -> PandasFrame {
        let mapping: Vec<(Cell, Cell)> = mapping
            .iter()
            .map(|(old, new)| (Cell::Str((*old).into()), Cell::Str((*new).into())))
            .collect();
        self.derive(move |base| base.rename(mapping.clone()))
    }

    /// One-hot encode the given columns (pandas `get_dummies`); with an empty list,
    /// every non-numeric column is encoded. §5.2.3 notes the output arity is
    /// data-dependent: the categories are discovered with a DISTINCT sub-query first.
    pub fn get_dummies(&self, columns: &[&str]) -> DfResult<PandasFrame> {
        let materialised = self.collect()?;
        let targets: Vec<Cell> = if columns.is_empty() {
            materialised
                .col_labels()
                .as_slice()
                .iter()
                .enumerate()
                .filter(|(j, _)| !materialised.columns()[*j].peek_domain().is_numeric())
                .map(|(_, l)| l.clone())
                .collect()
        } else {
            columns.iter().map(|c| Cell::Str((*c).into())).collect()
        };
        let mut encodings: Vec<MapFunc> = Vec::with_capacity(targets.len());
        for target in targets {
            let categories = self.distinct_values_of(&target)?;
            encodings.push(MapFunc::OneHot {
                column: target,
                categories,
            });
        }
        Ok(self.derive(move |base| {
            encodings
                .iter()
                .fold(base, |expr, encoding| expr.map(encoding.clone()))
        }))
    }

    // ------------------------------------------------------------------ reshaping

    /// TRANSPOSE (pandas `.T`) — workflow step C2.
    pub fn transpose(&self) -> PandasFrame {
        self.derive(|base| base.transpose())
    }

    /// Alias of [`PandasFrame::transpose`] matching pandas' `.T` property.
    pub fn t(&self) -> PandasFrame {
        self.transpose()
    }

    /// Promote a column to the row labels (pandas `set_index`) — Table 2: TOLABELS.
    pub fn set_index(&self, column: &str) -> PandasFrame {
        let column = Cell::Str(column.into());
        self.derive(move |base| base.to_labels(column.clone()))
    }

    /// Demote the row labels to a data column (pandas `reset_index`) — Table 2:
    /// FROMLABELS.
    pub fn reset_index(&self, name: &str) -> PandasFrame {
        let name = Cell::Str(name.into());
        self.derive(move |base| base.from_labels(name.clone()))
    }

    /// Stable sort by columns (pandas `sort_values`).
    pub fn sort_values(&self, by: &[&str], ascending: bool) -> PandasFrame {
        let spec = SortSpec {
            by: by.iter().map(|c| Cell::Str((*c).into())).collect(),
            ascending: vec![ascending],
            stable: true,
        };
        self.derive(move |base| base.sort(spec.clone()))
    }

    /// Remove duplicate rows (pandas `drop_duplicates`).
    pub fn drop_duplicates(&self) -> PandasFrame {
        self.derive(|base| base.drop_duplicates())
    }

    /// The pivot of §4.4 / Figure 6: rows labelled by `index` values, one column per
    /// distinct `columns` value, cells from `values`.
    pub fn pivot(&self, index: &str, columns: &str, values: &str) -> DfResult<PandasFrame> {
        self.pivot_with_plan(index, columns, values, PivotPlan::Direct)
    }

    /// Pivot with an explicit Figure 8 plan choice: either group directly by `index`,
    /// or group by `columns` (the other axis) and TRANSPOSE the result.
    pub fn pivot_with_plan(
        &self,
        index: &str,
        columns: &str,
        values: &str,
        plan: PivotPlan,
    ) -> DfResult<PandasFrame> {
        let index_cell = Cell::Str(index.into());
        let columns_cell = Cell::Str(columns.into());
        let values_cell = Cell::Str(values.into());
        match plan {
            PivotPlan::Direct => {
                let output_labels = self.distinct_values_of(&columns_cell)?;
                Ok(self.derive(move |base| {
                    base.group_by(
                        vec![index_cell.clone()],
                        vec![
                            Aggregation::of(columns_cell.clone(), AggFunc::Collect),
                            Aggregation::of(values_cell.clone(), AggFunc::Collect),
                        ],
                        true,
                    )
                    .map(MapFunc::PivotFlatten {
                        label_source: columns_cell.clone(),
                        value_source: values_cell.clone(),
                        output_labels: output_labels.clone(),
                    })
                }))
            }
            PivotPlan::PivotOtherAxisThenTranspose => {
                let output_labels = self.distinct_values_of(&index_cell)?;
                // After the final TRANSPOSE the column labels are the `columns` values
                // in group (sorted) order; re-project them into the same
                // first-occurrence order the direct plan produces so both plans are
                // interchangeable.
                let column_order = self.distinct_values_of(&columns_cell)?;
                Ok(self.derive(move |base| {
                    base.group_by(
                        vec![columns_cell.clone()],
                        vec![
                            Aggregation::of(index_cell.clone(), AggFunc::Collect),
                            Aggregation::of(values_cell.clone(), AggFunc::Collect),
                        ],
                        true,
                    )
                    .map(MapFunc::PivotFlatten {
                        label_source: index_cell.clone(),
                        value_source: values_cell.clone(),
                        output_labels: output_labels.clone(),
                    })
                    .transpose()
                    .project(ColumnSelector::ByLabels(column_order.clone()))
                }))
            }
        }
    }

    // ------------------------------------------------------------------ combining

    /// Ordered concatenation (pandas `append` / `pd.concat`).
    pub fn append(&self, other: &PandasFrame) -> PandasFrame {
        self.derive2(other, |left, right| left.union(right))
    }

    /// Equi-join on shared columns (pandas `merge(on=...)`).
    pub fn merge_on(&self, other: &PandasFrame, on: &[&str], how: JoinType) -> PandasFrame {
        let keys: Vec<Cell> = on.iter().map(|c| Cell::Str((*c).into())).collect();
        self.derive2(other, move |left, right| {
            left.join(right, JoinOn::Columns(keys.clone()), how)
        })
    }

    /// Join on row labels (pandas `merge(left_index=True, right_index=True)`) —
    /// workflow step A2.
    pub fn merge_index(&self, other: &PandasFrame, how: JoinType) -> PandasFrame {
        self.derive2(other, move |left, right| {
            left.join(right, JoinOn::RowLabels, how)
        })
    }

    // ------------------------------------------------------------------ group & aggregate

    /// GROUPBY with explicit aggregations.
    pub fn groupby_agg(
        &self,
        keys: &[&str],
        aggs: Vec<Aggregation>,
        keys_as_labels: bool,
    ) -> PandasFrame {
        let keys: Vec<Cell> = keys.iter().map(|c| Cell::Str((*c).into())).collect();
        self.derive(move |base| base.group_by(keys.clone(), aggs.clone(), keys_as_labels))
    }

    /// Count rows per group — the Figure 2 "groupby (n)" query.
    pub fn groupby_count(&self, keys: &[&str]) -> PandasFrame {
        self.groupby_agg(keys, vec![Aggregation::count_rows()], false)
    }

    /// Number of non-null values per column of interest, as a single-row frame — the
    /// Figure 2 "groupby (1)" query.
    pub fn count_non_null(&self, column: &str) -> PandasFrame {
        self.groupby_agg(
            &[],
            vec![Aggregation::of(column, AggFunc::CountNonNull)
                .with_alias(format!("{column}_non_null"))],
            false,
        )
    }

    /// Frequency of each distinct value of a column, most frequent first (pandas
    /// `value_counts`).
    pub fn value_counts(&self, column: &str) -> PandasFrame {
        let counted = self.groupby_agg(&[column], vec![Aggregation::count_rows()], false);
        counted.sort_values(&["count"], false)
    }

    /// Global numeric aggregate over one column.
    fn global_agg(&self, column: &str, func: AggFunc, alias: &str) -> DfResult<Cell> {
        let frame = self
            .groupby_agg(
                &[],
                vec![Aggregation::of(column, func).with_alias(alias)],
                false,
            )
            .collect()?;
        Ok(frame.cell(0, 0)?.clone())
    }

    /// Sum of a column (pandas `df["c"].sum()`).
    pub fn sum(&self, column: &str) -> DfResult<Cell> {
        self.global_agg(column, AggFunc::Sum, "sum")
    }

    /// Mean of a column.
    pub fn mean(&self, column: &str) -> DfResult<Cell> {
        self.global_agg(column, AggFunc::Mean, "mean")
    }

    /// Minimum of a column.
    pub fn min(&self, column: &str) -> DfResult<Cell> {
        self.global_agg(column, AggFunc::Min, "min")
    }

    /// Maximum of a column.
    pub fn max(&self, column: &str) -> DfResult<Cell> {
        self.global_agg(column, AggFunc::Max, "max")
    }

    /// Summary statistics of every numeric column (pandas `describe`): one row per
    /// statistic, one column per numeric column.
    pub fn describe(&self) -> DfResult<DataFrame> {
        let df = self.collect()?;
        let numeric: Vec<(Cell, Vec<f64>)> = (0..df.n_cols())
            .filter(|&j| df.columns()[j].peek_domain().is_numeric())
            .map(|j| {
                let values: Vec<f64> = df.columns()[j]
                    .cells()
                    .iter()
                    .filter_map(Cell::as_f64)
                    .collect();
                (
                    df.col_labels().get(j).cloned().unwrap_or(Cell::Null),
                    values,
                )
            })
            .collect();
        if numeric.is_empty() {
            return Err(DfError::EmptyInput(
                "describe() needs numeric columns".into(),
            ));
        }
        let stats = ["count", "mean", "std", "min", "max"];
        let mut columns: Vec<Vec<Cell>> = Vec::with_capacity(numeric.len());
        for (_, values) in &numeric {
            let count = values.len() as f64;
            let mean = if values.is_empty() {
                f64::NAN
            } else {
                values.iter().sum::<f64>() / count
            };
            let std = if values.len() > 1 {
                (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1.0)).sqrt()
            } else {
                f64::NAN
            };
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let to_cell = |v: f64| {
                if v.is_finite() {
                    Cell::Float(v)
                } else {
                    Cell::Null
                }
            };
            columns.push(vec![
                Cell::Float(count),
                to_cell(mean),
                to_cell(std),
                to_cell(min),
                to_cell(max),
            ]);
        }
        let labels: Vec<Cell> = numeric.iter().map(|(l, _)| l.clone()).collect();
        DataFrame::from_parts(
            columns
                .into_iter()
                .map(df_core::dataframe::Column::new)
                .collect(),
            df_types::labels::Labels::from_iter(stats.to_vec()),
            df_types::labels::Labels::new(labels),
        )
    }

    // ------------------------------------------------------------------ window

    /// Cumulative sum over the given columns (pandas `cumsum`).
    pub fn cumsum(&self, columns: &[&str]) -> PandasFrame {
        self.window_op(columns, WindowFunc::CumSum)
    }

    /// Cumulative max (pandas `cummax`).
    pub fn cummax(&self, columns: &[&str]) -> PandasFrame {
        self.window_op(columns, WindowFunc::CumMax)
    }

    /// Row-to-row difference (pandas `diff`).
    pub fn diff(&self, columns: &[&str], lag: usize) -> PandasFrame {
        self.window_op(columns, WindowFunc::Diff { lag })
    }

    /// Shift rows down (pandas `shift`).
    pub fn shift(&self, columns: &[&str], offset: i64) -> PandasFrame {
        self.window_op(columns, WindowFunc::Shift { offset })
    }

    /// Trailing rolling mean (pandas `rolling(n).mean()`).
    pub fn rolling_mean(&self, columns: &[&str], size: usize) -> PandasFrame {
        self.window_op(columns, WindowFunc::RollingMean { size })
    }

    fn window_op(&self, columns: &[&str], func: WindowFunc) -> PandasFrame {
        let selector = if columns.is_empty() {
            ColumnSelector::Numeric
        } else {
            ColumnSelector::ByLabels(columns.iter().map(|c| Cell::Str((*c).into())).collect())
        };
        self.derive(move |base| base.window(selector.clone(), func.clone()))
    }

    // ------------------------------------------------------------------ linear algebra

    /// Pairwise covariance of the numeric columns (pandas `cov`) — workflow step A3.
    pub fn cov(&self) -> DfResult<DataFrame> {
        linalg::covariance(&self.collect()?)
    }

    /// Pearson correlation of the numeric columns (pandas `corr`).
    pub fn corr(&self) -> DfResult<DataFrame> {
        linalg::correlation(&self.collect()?)
    }

    // ------------------------------------------------------------------ helpers

    /// Distinct values of a column, in first-occurrence order (a PROJECTION +
    /// DROP DUPLICATES sub-query executed through the session's engine, resuming from
    /// cached handles when any exist).
    pub fn distinct_values_of(&self, column: &Cell) -> DfResult<Vec<Cell>> {
        let expr = self
            .exec_plan()
            .project(ColumnSelector::ByLabels(vec![column.clone()]))
            .drop_duplicates();
        let frame = self.session.query().collect(&expr)?;
        let mut seen: Vec<CellKey> = Vec::new();
        let mut out = Vec::new();
        for cell in frame.columns()[0].cells() {
            let key = cell.group_key();
            if !seen.contains(&key) && !cell.is_null() {
                seen.push(key);
                out.push(cell.clone());
            }
        }
        Ok(out)
    }
}

/// The session cache key of an on-disk CSV statement, as `(prefix, key)`: the prefix
/// is the canonical path plus the parse options (the statement's *identity-free*
/// part, used to evict superseded versions of the same statement); the key appends
/// the file identity — mtime nanos, byte length, and on Unix the inode and ctime,
/// which catch replace-by-rename and same-length rewrites — so editing or replacing
/// the file invalidates the cached scan while re-reading an unchanged file hits it.
fn csv_statement_key(path: &std::path::Path, options: &CsvOptions) -> DfResult<(String, String)> {
    let metadata = std::fs::metadata(path)?;
    let mtime = metadata
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    #[cfg(unix)]
    let (inode, ctime) = {
        use std::os::unix::fs::MetadataExt;
        (
            metadata.ino(),
            metadata.ctime_nsec() as i128 + metadata.ctime() as i128 * 1_000_000_000,
        )
    };
    #[cfg(not(unix))]
    let (inode, ctime) = (0u64, 0i128);
    let canonical = std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf());
    let prefix = format!(
        "csv@{}?delim={}&header={}&infer={}&",
        canonical.display(),
        options.delimiter,
        options.has_header,
        options.infer_schema,
    );
    let key = format!(
        "{prefix}mtime={mtime}&len={}&ino={inode}&ctime={ctime}",
        metadata.len()
    );
    Ok((prefix, key))
}

/// Stream a partition grid to a CSV file band by band: the header once, then each
/// band's records, with at most one band materialised at any moment.
fn write_grid_csv(
    grid: &df_engine::partition::PartitionGrid,
    path: &std::path::Path,
    options: &CsvOptions,
) -> DfResult<()> {
    use std::io::Write as _;
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    for index in 0..grid.n_row_bands() {
        let band = grid.band(index)?;
        if index == 0 {
            df_storage::csv::write_csv_header(&mut writer, band.col_labels(), options)?;
        }
        df_storage::csv::append_csv_records(&mut writer, &band, options)?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn session() -> Arc<Session> {
        Session::modin_with(
            df_engine::engine::ModinConfig::sequential().with_partition_size(8, 4),
            df_engine::session::EvalMode::Eager,
        )
    }

    fn products(session: &Arc<Session>) -> PandasFrame {
        PandasFrame::from_rows(
            session,
            vec!["name", "price", "rating", "wireless"],
            vec![
                vec![cell("iPhone 11"), cell(699), cell(4.6), cell("Yes")],
                vec![cell("iPhone 11 Pro"), cell(999), cell(4.8), cell("Yes")],
                vec![cell("iPhone 8"), cell(449), Cell::Null, cell("No")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_inspection() {
        let s = session();
        let df = products(&s);
        assert_eq!(df.shape().unwrap(), (3, 4));
        assert_eq!(df.head(2).unwrap().n_rows(), 2);
        assert_eq!(df.tail(1).unwrap().cell(0, 0).unwrap(), &cell("iPhone 8"));
        assert!(df.display(2).unwrap().contains("iPhone 11"));
        let dtypes = df.dtypes().unwrap();
        assert_eq!(dtypes[1].1, Domain::Int);
        assert!(df.to_csv_string().unwrap().starts_with("name,price"));
    }

    #[test]
    fn filtering_and_projection() {
        let s = session();
        let df = products(&s);
        assert_eq!(df.filter_gt("price", 500).unwrap().shape().unwrap(), (2, 4));
        assert_eq!(
            df.filter_eq("wireless", "No").unwrap().shape().unwrap(),
            (1, 4)
        );
        assert_eq!(df.dropna(&["rating"]).unwrap().shape().unwrap(), (2, 4));
        assert_eq!(df.dropna(&[]).unwrap().shape().unwrap(), (2, 4));
        assert_eq!(df.slice(1, 3).shape().unwrap(), (2, 4));
        assert_eq!(df.select(&["name", "price"]).shape().unwrap(), (3, 2));
        assert_eq!(df.drop_columns(&["name"]).shape().unwrap(), (3, 3));
        assert_eq!(df.column("price").shape().unwrap(), (3, 1));
        assert_eq!(df.select_numeric().shape().unwrap(), (3, 2));
    }

    #[test]
    fn point_update_and_map_column_match_figure1_cleaning_steps() {
        let s = session();
        let df = products(&s);
        // C1: fix an anomalous value.
        let fixed = df.iloc_set(0, 1, 650).unwrap();
        assert_eq!(fixed.iloc(0, 1).unwrap(), cell(650));
        // C3: Yes/No → 1/0 on one column.
        let binary = fixed
            .map_column("wireless", "yes_no_to_binary", |c| match c.as_str() {
                Some("Yes") => cell(1),
                Some("No") => cell(0),
                _ => Cell::Null,
            })
            .unwrap();
        let collected = binary.collect().unwrap();
        assert_eq!(collected.cell(0, 3).unwrap(), &cell(1));
        assert_eq!(collected.cell(2, 3).unwrap(), &cell(0));
        assert!(binary.map_column("missing", "noop", |c| c.clone()).is_err());
    }

    #[test]
    fn fillna_isna_astype_and_transforms() {
        let s = session();
        let df = products(&s);
        assert_eq!(
            df.fillna(0).collect().unwrap().cell(2, 2).unwrap(),
            &cell(0)
        );
        assert_eq!(
            df.isna().collect().unwrap().cell(2, 2).unwrap(),
            &cell(true)
        );
        assert_eq!(
            df.isnull().collect().unwrap().cell(0, 2).unwrap(),
            &cell(false)
        );
        assert_eq!(
            df.astype("price", Domain::Float)
                .collect()
                .unwrap()
                .cell(0, 1)
                .unwrap(),
            &cell(699.0)
        );
        assert_eq!(
            df.str_upper().collect().unwrap().cell(0, 0).unwrap(),
            &cell("IPHONE 11")
        );
        let doubled = df.transform_cells("double_ints", |c| match c {
            Cell::Int(v) => Cell::Int(v * 2),
            other => other.clone(),
        });
        assert_eq!(doubled.collect().unwrap().cell(0, 1).unwrap(), &cell(1398));
        let applied = df.apply_rows("price_rating", vec!["price_per_rating"], |row| {
            let price = row.get(&cell("price")).and_then(Cell::as_f64);
            let rating = row.get(&cell("rating")).and_then(Cell::as_f64);
            vec![match (price, rating) {
                (Some(p), Some(r)) => Cell::Float(p / r),
                _ => Cell::Null,
            }]
        });
        assert_eq!(applied.shape().unwrap(), (3, 1));
    }

    #[test]
    fn schema_and_dtypes_of_a_spilled_ingest_are_metadata_only() {
        let dir = std::env::temp_dir().join(format!("df_pandas_schema_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("typed.csv");
        let mut content = String::from("id,fare,tag\n");
        for i in 0..200 {
            content.push_str(&format!("{i},{i}.5,t{}\n", i % 3));
        }
        std::fs::write(&path, &content).unwrap();

        // A 1-byte budget spills every ingested band immediately.
        let session = Session::modin_with(
            df_engine::engine::ModinConfig::default()
                .with_memory_budget(1)
                .with_partition_size(32, 8),
            df_engine::session::EvalMode::Eager,
        );
        let options = CsvOptions {
            infer_schema: true,
            ..CsvOptions::default()
        };
        let df = PandasFrame::read_csv_path(&session, &path, &options).unwrap();
        let before = session.spill_stats().unwrap();
        assert!(before.spilled > 0, "budget of 1 byte must spill all bands");

        let schema = df.schema().unwrap().expect("row-banded grids answer");
        let dtypes = df.dtypes().unwrap();

        let after = session.spill_stats().unwrap();
        assert_eq!(
            after.load_backs, before.load_backs,
            "schema()/dtypes() must answer from metadata, not load spilled bands"
        );
        assert_eq!(
            schema,
            vec![
                (cell("id"), Some(Domain::Int)),
                (cell("fare"), Some(Domain::Float)),
                (cell("tag"), Some(Domain::Category)),
            ]
        );
        assert_eq!(
            dtypes,
            vec![
                (cell("id"), Domain::Int),
                (cell("fare"), Domain::Float),
                (cell("tag"), Domain::Category),
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn astype_casts_banded_under_a_spill_budget() {
        let dir = std::env::temp_dir().join(format!("df_pandas_astype_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prices.csv");
        let mut content = String::from("item,price\n");
        for i in 0..160 {
            content.push_str(&format!("item-{i},{}\n", i * 3));
        }
        std::fs::write(&path, &content).unwrap();

        let session = Session::modin_with(
            df_engine::engine::ModinConfig::default()
                .with_memory_budget(1)
                .with_partition_size(32, 8),
            df_engine::session::EvalMode::Eager,
        );
        let options = CsvOptions {
            infer_schema: true,
            ..CsvOptions::default()
        };
        let df = PandasFrame::read_csv_path(&session, &path, &options).unwrap();
        let cast = df.astype("price", Domain::Float);
        // The cast is a banded MAP: its result is itself spill-backed, and its
        // domain metadata answers without materialising.
        assert_eq!(cast.dtypes().unwrap()[1], (cell("price"), Domain::Float));
        let collected = cast.collect().unwrap();
        assert_eq!(collected.cell(0, 1).unwrap(), &cell(0.0));
        assert_eq!(collected.cell(159, 1).unwrap(), &cell(477.0));
        assert!(session.spill_stats().unwrap().spill_outs > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn one_hot_encoding_discovers_categories() {
        let s = session();
        let df = products(&s).select(&["wireless", "price"]);
        let encoded = df.get_dummies(&["wireless"]).unwrap().collect().unwrap();
        assert_eq!(encoded.shape(), (3, 3));
        assert_eq!(
            encoded.col_labels().as_slice(),
            &[cell("wireless_Yes"), cell("wireless_No"), cell("price")]
        );
        assert_eq!(encoded.cell(2, 1).unwrap(), &cell(1));
        // Empty list auto-selects non-numeric columns.
        let auto = products(&s)
            .select(&["wireless", "price"])
            .get_dummies(&[])
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(auto.shape(), (3, 3));
    }

    #[test]
    fn reshaping_set_reset_index_and_transpose() {
        let s = session();
        let df = products(&s);
        let indexed = df.set_index("name");
        let collected = indexed.collect().unwrap();
        assert_eq!(collected.shape(), (3, 3));
        assert_eq!(collected.row_labels().as_slice()[1], cell("iPhone 11 Pro"));
        let restored = indexed.reset_index("name").collect().unwrap();
        assert_eq!(restored.shape(), (3, 4));
        assert_eq!(restored.cell(0, 0).unwrap(), &cell("iPhone 11"));
        let transposed = df.t().collect().unwrap();
        assert_eq!(transposed.shape(), (4, 3));
        assert_eq!(df.transpose().transpose().shape().unwrap(), (3, 4));
    }

    #[test]
    fn sorting_dedup_and_value_counts() {
        let s = session();
        let df = products(&s);
        let sorted = df.sort_values(&["price"], true).collect().unwrap();
        assert_eq!(sorted.cell(0, 0).unwrap(), &cell("iPhone 8"));
        let appended = df.append(&df);
        assert_eq!(appended.shape().unwrap(), (6, 4));
        assert_eq!(appended.drop_duplicates().shape().unwrap(), (3, 4));
        let counts = appended.value_counts("wireless").collect().unwrap();
        assert_eq!(counts.cell(0, 0).unwrap(), &cell("Yes"));
        assert_eq!(counts.cell(0, 1).unwrap(), &cell(4));
    }

    #[test]
    fn merging_on_columns_and_on_index() {
        let s = session();
        let features = products(&s).select(&["name", "price"]);
        let ratings = PandasFrame::from_rows(
            &s,
            vec!["name", "stars"],
            vec![
                vec![cell("iPhone 11"), cell(5)],
                vec![cell("iPhone 8"), cell(4)],
            ],
        )
        .unwrap();
        let joined = features.merge_on(&ratings, &["name"], JoinType::Inner);
        assert_eq!(joined.shape().unwrap(), (2, 3));
        let left = features
            .merge_on(&ratings, &["name"], JoinType::Left)
            .collect()
            .unwrap();
        assert_eq!(left.shape(), (3, 3));
        assert_eq!(left.cell(1, 2).unwrap(), &Cell::Null);
        // Index join, as in workflow step A2.
        let by_index = features
            .set_index("name")
            .merge_index(&ratings.set_index("name"), JoinType::Inner)
            .collect()
            .unwrap();
        assert_eq!(by_index.shape(), (2, 2));
    }

    #[test]
    fn groupby_aggregates_and_global_reductions() {
        let s = session();
        let df = products(&s);
        let by_wireless = df.groupby_count(&["wireless"]).collect().unwrap();
        assert_eq!(by_wireless.shape(), (2, 2));
        assert_eq!(by_wireless.cell(1, 1).unwrap(), &cell(2));
        let non_null = df.count_non_null("rating").collect().unwrap();
        assert_eq!(non_null.cell(0, 0).unwrap(), &cell(2));
        assert_eq!(df.sum("price").unwrap(), cell(2147.0));
        assert_eq!(df.max("price").unwrap(), cell(999));
        assert_eq!(df.min("price").unwrap(), cell(449));
        let mean = df.mean("price").unwrap().as_f64().unwrap();
        assert!((mean - 715.666).abs() < 0.01);
        let described = df.describe().unwrap();
        assert_eq!(described.shape(), (5, 2));
        assert_eq!(described.cell(0, 0).unwrap(), &cell(3.0));
    }

    #[test]
    fn window_operations() {
        let s = session();
        let df = products(&s);
        let cumsum = df.cumsum(&["price"]).collect().unwrap();
        assert_eq!(cumsum.cell(2, 1).unwrap(), &cell(2147.0));
        let diff = df.diff(&["price"], 1).collect().unwrap();
        assert_eq!(diff.cell(1, 1).unwrap(), &cell(300.0));
        let shifted = df.shift(&["price"], 1).collect().unwrap();
        assert_eq!(shifted.cell(0, 1).unwrap(), &Cell::Null);
        let cummax = df.cummax(&[]).collect().unwrap();
        assert_eq!(cummax.cell(2, 1).unwrap(), &cell(999.0));
        let rolling = df.rolling_mean(&["price"], 2).collect().unwrap();
        assert_eq!(rolling.cell(1, 1).unwrap(), &cell(849.0));
    }

    #[test]
    fn covariance_and_correlation() {
        let s = session();
        let df = products(&s).dropna(&["rating"]).unwrap();
        let cov = df.cov().unwrap();
        assert_eq!(cov.shape(), (2, 2));
        let corr = df.corr().unwrap();
        let r = corr.cell(0, 1).unwrap().as_f64().unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pivot_reproduces_figure5_with_both_plans() {
        let s = session();
        let sales = PandasFrame::from_dataframe(&s, df_workloads::figure5_narrow_table());
        let expected = df_workloads::figure5_wide_by_year();
        for plan in [PivotPlan::Direct, PivotPlan::PivotOtherAxisThenTranspose] {
            let wide = sales
                .pivot_with_plan("Year", "Month", "Sales", plan)
                .unwrap()
                .collect()
                .unwrap();
            assert!(
                wide.same_data(&expected),
                "plan {plan:?} gave\n{wide}\nexpected\n{expected}"
            );
        }
        // The direct plan uses GROUPBY + MAP; the alternative adds a TRANSPOSE.
        let direct = sales.pivot("Year", "Month", "Sales").unwrap();
        assert_eq!(direct.expr().transpose_count(), 0);
        let alt = sales
            .pivot_with_plan(
                "Year",
                "Month",
                "Sales",
                PivotPlan::PivotOtherAxisThenTranspose,
            )
            .unwrap();
        assert_eq!(alt.expr().transpose_count(), 1);
    }

    #[test]
    fn baseline_and_modin_sessions_agree_through_the_api() {
        let modin = session();
        let baseline = Session::baseline();
        for s in [&modin, &baseline] {
            let df = products(s);
            let out = df
                .fillna(0)
                .filter_gt("price", 500)
                .unwrap()
                .groupby_count(&["wireless"])
                .collect()
                .unwrap();
            assert_eq!(out.shape(), (1, 2));
            assert_eq!(out.cell(0, 1).unwrap(), &cell(2));
        }
    }

    #[test]
    fn eager_statements_cross_boundaries_as_handles() {
        let s = session();
        let df = products(&s);
        // Each derived statement rebases its execution plan onto the previous
        // statement's cached handle: the engine resumes from the partitioned grid
        // instead of re-executing (or re-partitioning) the prefix.
        let cleaned = df.fillna(0);
        let filtered = cleaned.filter_gt("price", 500).unwrap();
        let counted = filtered.groupby_count(&["wireless"]);
        let engine = s.modin_engine().expect("modin session");
        assert!(engine.handles_reused() >= 3);
        // Nothing was assembled while the chain was built…
        assert_eq!(engine.assemblies_dispatched(), 0);
        // …and the logical expression still shows the whole pipeline.
        assert_eq!(counted.expr().operator_count(), 3);
        let out = counted.collect().unwrap();
        assert_eq!(out.cell(0, 1).unwrap(), &cell(2));
        assert_eq!(engine.assemblies_dispatched(), 1);
        // shape() answers from handle metadata without another assembly.
        assert_eq!(counted.shape().unwrap(), (1, 2));
        assert_eq!(engine.assemblies_dispatched(), 1);
    }

    #[test]
    fn lazy_sessions_execute_one_plan_per_materialisation_point() {
        let s = Session::modin_with(
            df_engine::engine::ModinConfig::sequential().with_partition_size(8, 4),
            df_engine::session::EvalMode::Lazy,
        );
        let chained = products(&s)
            .fillna(0)
            .filter_gt("price", 500)
            .unwrap()
            .groupby_count(&["wireless"]);
        assert_eq!(s.stats().executions, 0, "lazy statements must not execute");
        let out = chained.collect().unwrap();
        assert_eq!(out.cell(0, 1).unwrap(), &cell(2));
        assert_eq!(
            s.stats().executions,
            1,
            "one plan per materialisation point"
        );
        // The whole pipeline was one plan: no handles crossed the waist.
        assert_eq!(s.modin_engine().unwrap().handles_reused(), 0);
    }

    #[test]
    fn submit_errors_are_recorded_not_swallowed() {
        let s = session();
        assert!(s.take_last_submit_error().is_none());
        // Projecting onto an unknown column makes the eager submit fail; the error
        // is recorded on the session and the statement's materialisation point
        // re-raises it.
        let bad = products(&s).select(&["no_such_column"]);
        assert_eq!(s.stats().submit_errors, 1);
        let recorded = s.take_last_submit_error().expect("error recorded");
        assert!(matches!(recorded, DfError::ColumnNotFound(_)));
        assert!(bad.collect().is_err());
    }

    #[test]
    fn distinct_values_preserve_first_occurrence_order() {
        let s = session();
        let df = products(&s);
        let values = df.distinct_values_of(&cell("wireless")).unwrap();
        assert_eq!(values, vec![cell("Yes"), cell("No")]);
    }

    #[test]
    fn corrupted_ancestor_handles_are_recomputed_from_lineage() {
        let raw: Vec<Vec<Cell>> = (0..200)
            .map(|i| vec![cell(i as i64), cell((i * 3) as i64)])
            .collect();
        let base_df = DataFrame::from_rows(vec!["a", "b"], raw).unwrap();
        // Budgeted engine: the intermediate's partitions spill to disk.
        let budget = base_df.approx_size_bytes() / 4;
        let s = Session::modin_with(
            df_engine::engine::ModinConfig::sequential()
                .with_memory_budget(budget)
                .with_partition_size(16, 4),
            df_engine::session::EvalMode::Eager,
        );
        let base = PandasFrame::try_from_dataframe(&s, base_df).unwrap();
        let mid = base.filter_gt("a", 9).unwrap();
        mid.collect().unwrap(); // materialise → mid's handle is cached + spilled
        let tip = mid.isna(); // rebases onto mid's (about to be poisoned) handle
        let expected_rows = 190;

        // Corrupt every spill file behind the cached intermediate.
        let dir = s
            .modin_engine()
            .unwrap()
            .store()
            .expect("budgeted engine")
            .directory()
            .to_path_buf();
        let mut tampered = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_file() {
                let mut content = std::fs::read(&path).unwrap();
                content.extend_from_slice(b"tampered");
                std::fs::write(&path, content).unwrap();
                tampered += 1;
            }
        }
        assert!(tampered > 0, "budgeted engine should have spilled");

        // The session-level retry re-executes the rebased plan (same poisoned
        // handle leaf) and fails again; the pandas layer then walks the lineage,
        // evicts the ancestors, and recomputes the whole logical pipeline.
        let out = tip.collect().unwrap();
        assert_eq!(out.shape(), (expected_rows, 2));
        assert_eq!(out.cell(0, 0).unwrap(), &cell(false));
        assert!(
            s.stats().recoveries >= 1,
            "recovery counter: {:?}",
            s.stats()
        );
    }
}
