//! # df-pandas
//!
//! The pandas-style API layer of the MODIN architecture (paper §3.3): familiar
//! dataframe methods ([`frame::PandasFrame`]) that are rewritten into the compact
//! dataframe algebra and executed by whichever engine the [`session::Session`] was
//! built with — the scalable MODIN-like engine, the pandas-like baseline, or the
//! reference executor. [`rewrite`] records the Table 2 / §4.4 operator-rewrite
//! catalogue as data for the corresponding experiment.

pub mod frame;
pub mod rewrite;
pub mod session;

pub use frame::PandasFrame;
pub use rewrite::{extended_rewrites, render_catalogue, table2_rewrites, Rewrite, RewriteKind};
pub use session::Session;
