//! The pandas-operator → dataframe-algebra rewrite catalogue.
//!
//! Paper Table 2 lists pandas operators that map one-to-one onto algebra operators;
//! §4.4 then walks through operators that are *compositions* of algebra operators
//! (`get_dummies`, `pivot`, `agg`, `reindex_like`). This module records both mappings
//! as data so the Table 2 experiment can print and verify them against the expression
//! trees [`crate::frame::PandasFrame`] actually builds.

/// How a pandas operator maps onto the algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteKind {
    /// The pandas operator is exactly one algebra operator (Table 2).
    OneToOne {
        /// The algebra operator name.
        algebra_op: &'static str,
    },
    /// The pandas operator expands into a sequence of algebra operators (§4.4).
    Composition {
        /// The algebra operators, in application order.
        algebra_ops: &'static [&'static str],
    },
}

/// One row of the rewrite catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    /// The pandas operator name.
    pub pandas_op: &'static str,
    /// Short description of what the pandas operator does (Table 2's third column).
    pub description: &'static str,
    /// How it rewrites into the algebra.
    pub kind: RewriteKind,
    /// The `PandasFrame` method implementing the rewrite in this crate.
    pub implemented_by: &'static str,
}

/// The Table 2 one-to-one mappings.
pub fn table2_rewrites() -> Vec<Rewrite> {
    vec![
        Rewrite {
            pandas_op: "fillna",
            description: "Convert null values to another value",
            kind: RewriteKind::OneToOne { algebra_op: "MAP" },
            implemented_by: "PandasFrame::fillna",
        },
        Rewrite {
            pandas_op: "isnull",
            description: "Determine if elements are null",
            kind: RewriteKind::OneToOne { algebra_op: "MAP" },
            implemented_by: "PandasFrame::isnull",
        },
        Rewrite {
            pandas_op: "transpose",
            description: "Exchange the columns and rows",
            kind: RewriteKind::OneToOne {
                algebra_op: "TRANSPOSE",
            },
            implemented_by: "PandasFrame::transpose",
        },
        Rewrite {
            pandas_op: "set_index",
            description: "Set the dataframe row labels using existing column(s)",
            kind: RewriteKind::OneToOne {
                algebra_op: "TOLABELS",
            },
            implemented_by: "PandasFrame::set_index",
        },
        Rewrite {
            pandas_op: "reset_index",
            description: "Insert the row labels into the dataframe and reset to default",
            kind: RewriteKind::OneToOne {
                algebra_op: "FROMLABELS",
            },
            implemented_by: "PandasFrame::reset_index",
        },
    ]
}

/// The §4.4 mappings: pandas operators that are either direct algebra analogues or
/// compositions of several algebra operators.
pub fn extended_rewrites() -> Vec<Rewrite> {
    let mut rewrites = vec![
        Rewrite {
            pandas_op: "sort_values",
            description: "Lexicographically order rows",
            kind: RewriteKind::OneToOne { algebra_op: "SORT" },
            implemented_by: "PandasFrame::sort_values",
        },
        Rewrite {
            pandas_op: "merge",
            description: "Join two dataframes on columns or row labels",
            kind: RewriteKind::OneToOne { algebra_op: "JOIN" },
            implemented_by: "PandasFrame::merge_on / merge_index",
        },
        Rewrite {
            pandas_op: "groupby",
            description: "Group identical attribute values",
            kind: RewriteKind::OneToOne {
                algebra_op: "GROUPBY",
            },
            implemented_by: "PandasFrame::groupby_agg",
        },
        Rewrite {
            pandas_op: "append",
            description: "Ordered concatenation of two dataframes",
            kind: RewriteKind::OneToOne {
                algebra_op: "UNION",
            },
            implemented_by: "PandasFrame::append",
        },
        Rewrite {
            pandas_op: "drop_duplicates",
            description: "Remove duplicate rows",
            kind: RewriteKind::OneToOne {
                algebra_op: "DROP_DUPLICATES",
            },
            implemented_by: "PandasFrame::drop_duplicates",
        },
        Rewrite {
            pandas_op: "cummax / diff / shift",
            description: "Sliding-window transformations over the inherent order",
            kind: RewriteKind::OneToOne {
                algebra_op: "WINDOW",
            },
            implemented_by: "PandasFrame::cummax / diff / shift",
        },
        Rewrite {
            pandas_op: "astype / str.upper / applymap",
            description: "Uniform per-row or per-cell transformations",
            kind: RewriteKind::OneToOne { algebra_op: "MAP" },
            implemented_by: "PandasFrame::astype / str_upper / transform_cells",
        },
    ];
    rewrites.extend(vec![
        Rewrite {
            pandas_op: "get_dummies",
            description: "One-hot encode categorical columns (output arity is data-dependent)",
            kind: RewriteKind::Composition {
                algebra_ops: &["PROJECTION", "DROP_DUPLICATES", "MAP"],
            },
            implemented_by: "PandasFrame::get_dummies",
        },
        Rewrite {
            pandas_op: "pivot",
            description: "Elevate a column of data into the column labels and reshape",
            kind: RewriteKind::Composition {
                algebra_ops: &["GROUPBY(collect)", "MAP(flatten)", "TOLABELS", "TRANSPOSE"],
            },
            implemented_by: "PandasFrame::pivot",
        },
        Rewrite {
            pandas_op: "agg(['f1','f2',...])",
            description: "Per-column aggregates, one output row per aggregate",
            kind: RewriteKind::Composition {
                algebra_ops: &["GROUPBY", "UNION"],
            },
            implemented_by: "PandasFrame::groupby_agg + append",
        },
        Rewrite {
            pandas_op: "reindex_like",
            description: "Reorder rows/columns to match a reference dataframe",
            kind: RewriteKind::Composition {
                algebra_ops: &["FROMLABELS", "JOIN", "MAP", "TOLABELS"],
            },
            implemented_by: "tests::reindex_like composition",
        },
        Rewrite {
            pandas_op: "value_counts",
            description: "Frequency of each distinct value, most frequent first",
            kind: RewriteKind::Composition {
                algebra_ops: &["GROUPBY", "SORT"],
            },
            implemented_by: "PandasFrame::value_counts",
        },
    ]);
    rewrites
}

/// Render the catalogue as fixed-width text (the artefact the Table 2 bench prints).
pub fn render_catalogue(rewrites: &[Rewrite]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:<38} {}\n",
        "pandas operator", "algebra rewrite", "description"
    ));
    for rewrite in rewrites {
        let algebra = match &rewrite.kind {
            RewriteKind::OneToOne { algebra_op } => (*algebra_op).to_string(),
            RewriteKind::Composition { algebra_ops } => algebra_ops.join(" -> "),
        };
        out.push_str(&format!(
            "{:<28} {:<38} {}\n",
            rewrite.pandas_op, algebra, rewrite.description
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_the_paper_rows() {
        let rewrites = table2_rewrites();
        assert_eq!(rewrites.len(), 5);
        let ops: Vec<&str> = rewrites.iter().map(|r| r.pandas_op).collect();
        assert_eq!(
            ops,
            vec!["fillna", "isnull", "transpose", "set_index", "reset_index"]
        );
        // Every Table 2 entry is a one-to-one mapping.
        assert!(rewrites
            .iter()
            .all(|r| matches!(r.kind, RewriteKind::OneToOne { .. })));
    }

    #[test]
    fn extended_catalogue_contains_compositions() {
        let rewrites = extended_rewrites();
        assert!(rewrites.len() >= 12);
        let pivot = rewrites.iter().find(|r| r.pandas_op == "pivot").unwrap();
        match &pivot.kind {
            RewriteKind::Composition { algebra_ops } => {
                assert!(algebra_ops.contains(&"GROUPBY(collect)"));
                assert!(algebra_ops.contains(&"TRANSPOSE"));
            }
            _ => panic!("pivot must be a composition"),
        }
    }

    #[test]
    fn catalogue_renders_every_row() {
        let text = render_catalogue(&table2_rewrites());
        assert!(text.contains("fillna"));
        assert!(text.contains("TOLABELS"));
        assert_eq!(text.lines().count(), 6);
    }
}
