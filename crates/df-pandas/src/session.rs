//! Analysis sessions: an engine choice plus an evaluation mode.
//!
//! Mirrors the paper's architecture (§3.3): the user-facing API (here
//! [`crate::frame::PandasFrame`]) is engine-agnostic; a [`Session`] decides which
//! backend executes the rewritten algebra expressions (the MODIN-like engine, the
//! pandas-like baseline, or the reference executor) and how statements are scheduled
//! (eager, lazy or opportunistic — §6.1.1).

use std::sync::Arc;

use df_core::engine::{Engine, EngineKind, ReferenceEngine};
use df_types::error::DfError;

use df_baseline::{BaselineConfig, BaselineEngine};
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::session::{EvalMode, QuerySession, SessionStats};
use df_storage::spill::SpillStats;

/// A configured analysis session.
///
/// ```
/// use df_pandas::{PandasFrame, Session};
/// use df_types::cell::cell;
///
/// // The drop-in configuration the paper targets: scalable engine, eager mode.
/// let session = Session::modin();
/// let df = PandasFrame::from_columns(
///     &session,
///     vec!["v", "w"],
///     vec![vec![cell(1), cell(2)], vec![cell(10), cell(20)]],
/// )?;
/// let filtered = df.filter_gt("v", 1)?;
/// assert_eq!(filtered.collect()?.n_rows(), 1);
/// // Statement scheduling and caching are observable through the session stats.
/// assert!(session.stats().statements >= 2);
/// # Ok::<(), df_types::error::DfError>(())
/// ```
pub struct Session {
    query: QuerySession,
    kind: EngineKind,
    /// The typed engine handle, retained when the session is MODIN-backed so callers
    /// can reach engine-specific surfaces (spill statistics, dispatch counters).
    modin: Option<Arc<ModinEngine>>,
}

impl Session {
    /// A session backed by the scalable (MODIN-like) engine with eager evaluation —
    /// the drop-in-replacement configuration the paper targets.
    pub fn modin() -> Arc<Session> {
        Session::modin_with(ModinConfig::default(), EvalMode::Eager)
    }

    /// A MODIN-backed session with an explicit engine configuration and mode.
    pub fn modin_with(config: ModinConfig, mode: EvalMode) -> Arc<Session> {
        let engine = Arc::new(ModinEngine::with_config(config));
        let modin = Some(Arc::clone(&engine));
        let kind = engine.kind();
        Arc::new(Session {
            query: QuerySession::new(engine, mode),
            kind,
            modin,
        })
    }

    /// An out-of-core MODIN session (paper §3.3): partitions live in a session-scoped
    /// spill store with `memory_budget_bytes` of in-memory budget; least-recently-used
    /// bands spill to disk instead of exhausting memory, and the spill directory is
    /// freed when the session drops. Inspect behaviour via [`Session::spill_stats`].
    ///
    /// Metadata questions stay cheap even when everything is spilled: `shape`,
    /// `schema` and `dtypes` answer from the domains each band cached at check-in,
    /// never loading a spilled band back.
    ///
    /// ```
    /// use df_pandas::{PandasFrame, Session};
    /// use df_storage::csv::CsvOptions;
    /// use df_types::domain::Domain;
    ///
    /// let dir = std::env::temp_dir().join(format!("df_session_doc_{}", std::process::id()));
    /// std::fs::create_dir_all(&dir)?;
    /// let path = dir.join("trips.csv");
    /// std::fs::write(&path, "trip_id,fare\n1,5.5\n2,7.25\n3,12.0\n")?;
    ///
    /// // A 1-byte budget spills every ingested band immediately.
    /// let session = Session::modin_out_of_core(1);
    /// let options = CsvOptions { infer_schema: true, ..CsvOptions::default() };
    /// let trips = PandasFrame::read_csv_path(&session, &path, &options)?;
    ///
    /// let loads_before = session.spill_stats().unwrap().load_backs;
    /// assert_eq!(trips.shape()?, (3, 2));
    /// let dtypes = trips.dtypes()?; // answered from band metadata…
    /// assert_eq!(dtypes[0].1, Domain::Int);
    /// assert_eq!(dtypes[1].1, Domain::Float);
    /// // …so nothing was loaded back from disk to answer.
    /// assert_eq!(session.spill_stats().unwrap().load_backs, loads_before);
    /// std::fs::remove_file(&path)?;
    /// # Ok::<(), df_types::error::DfError>(())
    /// ```
    pub fn modin_out_of_core(memory_budget_bytes: usize) -> Arc<Session> {
        Session::modin_with(
            ModinConfig::default().with_memory_budget(memory_budget_bytes),
            EvalMode::Eager,
        )
    }

    /// A session backed by the pandas-like baseline engine (always eager).
    pub fn baseline() -> Arc<Session> {
        Session::with_engine(Arc::new(BaselineEngine::new()), EvalMode::Eager)
    }

    /// A baseline-backed session with an explicit configuration.
    pub fn baseline_with(config: BaselineConfig) -> Arc<Session> {
        Session::with_engine(
            Arc::new(BaselineEngine::with_config(config)),
            EvalMode::Eager,
        )
    }

    /// A session backed by the reference executor (semantics ground truth).
    pub fn reference() -> Arc<Session> {
        Session::with_engine(Arc::new(ReferenceEngine), EvalMode::Eager)
    }

    /// A session over an arbitrary engine and evaluation mode.
    pub fn with_engine(engine: Arc<dyn Engine>, mode: EvalMode) -> Arc<Session> {
        let kind = engine.kind();
        Arc::new(Session {
            query: QuerySession::new(engine, mode),
            kind,
            modin: None,
        })
    }

    /// Wrap an already-configured [`QuerySession`] — the multi-tenant front end.
    /// `df-service` builds the query session with shared cache/gate state and a
    /// tenant label, then wraps it here so every [`crate::frame::PandasFrame`]
    /// call a tenant makes flows through the service's admission control and
    /// shared cache unchanged. Pass the typed engine handle when the session is
    /// MODIN-backed so [`Session::spill_stats`] keeps answering.
    pub fn from_query(query: QuerySession, modin: Option<Arc<ModinEngine>>) -> Arc<Session> {
        let kind = query.engine().kind();
        Arc::new(Session { query, kind, modin })
    }

    /// Which engine backs this session.
    pub fn engine_kind(&self) -> EngineKind {
        self.kind
    }

    /// The evaluation mode in force.
    pub fn mode(&self) -> EvalMode {
        self.query.mode()
    }

    /// The underlying query session (statement scheduling, caching, prefix execution).
    pub fn query(&self) -> &QuerySession {
        &self.query
    }

    /// Scheduling / caching counters for this session.
    pub fn stats(&self) -> SessionStats {
        self.query.stats()
    }

    /// The most recent submit-time error recorded by an infallible builder method
    /// (e.g. [`crate::frame::PandasFrame::from_dataframe`] under an eager session),
    /// clearing the slot. The same error also resurfaces at the statement's next
    /// materialisation point; this accessor exists so callers can check earlier.
    pub fn take_last_submit_error(&self) -> Option<DfError> {
        self.query.take_last_submit_error()
    }

    /// The typed MODIN engine behind this session. Populated by the `modin*`
    /// constructors; [`Session::with_engine`] erases the engine type and therefore
    /// returns `None` here even for a hand-built `ModinEngine`.
    pub fn modin_engine(&self) -> Option<&Arc<ModinEngine>> {
        self.modin.as_ref()
    }

    /// Out-of-core statistics of the session's spill store. `Some` only for sessions
    /// built through the `modin*` constructors (all-zero when the engine runs without
    /// a memory budget); `None` for baseline/reference sessions and for engines
    /// passed through the type-erasing [`Session::with_engine`].
    pub fn spill_stats(&self) -> Option<SpillStats> {
        self.modin.as_ref().map(|engine| engine.spill_stats())
    }

    /// Parallel-ingest counters (`bands_parsed`, `ingest_bytes`) of the session's
    /// engine. Availability follows the same rule as [`Session::spill_stats`].
    pub fn ingest_stats(&self) -> Option<df_engine::IngestStats> {
        self.modin.as_ref().map(|engine| engine.ingest_stats())
    }

    /// Cooperatively cancel whatever statement is currently executing on the
    /// engine's workers (no-op for engines without a cancel token). Queued band
    /// tasks are abandoned with a typed `Cancelled` error at the next task
    /// boundary; call [`Session::reset_cancel`] before the next statement.
    pub fn cancel(&self) {
        self.query.cancel();
    }

    /// Re-arm the engine after [`Session::cancel`] or a timed-out statement.
    pub fn reset_cancel(&self) {
        self.query.reset_cancel();
    }

    /// Run `statement` under a wall-clock deadline — the per-statement timeout
    /// entry point of [`df_engine::session::QuerySession::with_timeout`], exposed
    /// at the pandas layer: `session.with_timeout(d, || frame.collect())`.
    pub fn with_timeout<T>(
        &self,
        timeout: std::time::Duration,
        statement: impl FnOnce() -> df_types::error::DfResult<T>,
    ) -> df_types::error::DfResult<T> {
        self.query.with_timeout(timeout, statement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_the_right_engines() {
        assert_eq!(Session::modin().engine_kind(), EngineKind::Modin);
        assert_eq!(Session::baseline().engine_kind(), EngineKind::Baseline);
        assert_eq!(Session::reference().engine_kind(), EngineKind::Reference);
        assert_eq!(Session::modin().mode(), EvalMode::Eager);
        let lazy = Session::modin_with(ModinConfig::sequential(), EvalMode::Lazy);
        assert_eq!(lazy.mode(), EvalMode::Lazy);
        let constrained = Session::baseline_with(BaselineConfig::unconstrained());
        assert_eq!(constrained.engine_kind(), EngineKind::Baseline);
    }

    #[test]
    fn stats_start_at_zero() {
        let session = Session::modin();
        assert_eq!(session.stats().statements, 0);
        assert_eq!(session.stats().executions, 0);
    }

    #[test]
    fn out_of_core_sessions_spill_and_match_in_memory_results() {
        use df_core::algebra::{Aggregation, AlgebraExpr};
        use df_core::dataframe::DataFrame;
        use df_types::cell::{cell, Cell};

        let rows = 400usize;
        let k: Vec<Cell> = (0..rows).map(|i| cell((i % 7) as i64)).collect();
        let v: Vec<Cell> = (0..rows).map(|i| cell(format!("value-{i}"))).collect();
        let frame = DataFrame::from_columns(vec!["k", "v"], vec![k, v]).unwrap();
        let budget = frame.approx_size_bytes() / 4;
        let expr = AlgebraExpr::literal(frame).group_by(
            vec![cell("k")],
            vec![Aggregation::count_rows()],
            false,
        );

        let out_of_core = Session::modin_with(
            ModinConfig::default()
                .with_memory_budget(budget)
                .with_partition_size(32, 8),
            EvalMode::Eager,
        );
        let in_memory = Session::modin_with(
            ModinConfig::sequential().with_partition_size(32, 8),
            EvalMode::Eager,
        );
        let bounded = out_of_core.query().collect(&expr).unwrap();
        let unbounded = in_memory.query().collect(&expr).unwrap();
        assert!(bounded.same_data(&unbounded));

        let stats = out_of_core.spill_stats().expect("modin session has stats");
        assert!(
            stats.spill_outs > 0,
            "tight budget never spilled: {stats:?}"
        );
        assert!(out_of_core.modin_engine().is_some());
        // Non-MODIN sessions expose no spill surface; budget-less MODIN ones report
        // all-zero stats.
        assert!(Session::baseline().spill_stats().is_none());
        assert_eq!(in_memory.spill_stats().unwrap().spill_outs, 0);
    }
}
