//! Analysis sessions: an engine choice plus an evaluation mode.
//!
//! Mirrors the paper's architecture (§3.3): the user-facing API (here
//! [`crate::frame::PandasFrame`]) is engine-agnostic; a [`Session`] decides which
//! backend executes the rewritten algebra expressions (the MODIN-like engine, the
//! pandas-like baseline, or the reference executor) and how statements are scheduled
//! (eager, lazy or opportunistic — §6.1.1).

use std::sync::Arc;

use df_core::engine::{Engine, EngineKind, ReferenceEngine};

use df_baseline::{BaselineConfig, BaselineEngine};
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::session::{EvalMode, QuerySession, SessionStats};

/// A configured analysis session.
pub struct Session {
    query: QuerySession,
    kind: EngineKind,
}

impl Session {
    /// A session backed by the scalable (MODIN-like) engine with eager evaluation —
    /// the drop-in-replacement configuration the paper targets.
    pub fn modin() -> Arc<Session> {
        Session::with_engine(Arc::new(ModinEngine::new()), EvalMode::Eager)
    }

    /// A MODIN-backed session with an explicit engine configuration and mode.
    pub fn modin_with(config: ModinConfig, mode: EvalMode) -> Arc<Session> {
        Session::with_engine(Arc::new(ModinEngine::with_config(config)), mode)
    }

    /// A session backed by the pandas-like baseline engine (always eager).
    pub fn baseline() -> Arc<Session> {
        Session::with_engine(Arc::new(BaselineEngine::new()), EvalMode::Eager)
    }

    /// A baseline-backed session with an explicit configuration.
    pub fn baseline_with(config: BaselineConfig) -> Arc<Session> {
        Session::with_engine(
            Arc::new(BaselineEngine::with_config(config)),
            EvalMode::Eager,
        )
    }

    /// A session backed by the reference executor (semantics ground truth).
    pub fn reference() -> Arc<Session> {
        Session::with_engine(Arc::new(ReferenceEngine), EvalMode::Eager)
    }

    /// A session over an arbitrary engine and evaluation mode.
    pub fn with_engine(engine: Arc<dyn Engine>, mode: EvalMode) -> Arc<Session> {
        let kind = engine.kind();
        Arc::new(Session {
            query: QuerySession::new(engine, mode),
            kind,
        })
    }

    /// Which engine backs this session.
    pub fn engine_kind(&self) -> EngineKind {
        self.kind
    }

    /// The evaluation mode in force.
    pub fn mode(&self) -> EvalMode {
        self.query.mode()
    }

    /// The underlying query session (statement scheduling, caching, prefix execution).
    pub fn query(&self) -> &QuerySession {
        &self.query
    }

    /// Scheduling / caching counters for this session.
    pub fn stats(&self) -> SessionStats {
        self.query.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_the_right_engines() {
        assert_eq!(Session::modin().engine_kind(), EngineKind::Modin);
        assert_eq!(Session::baseline().engine_kind(), EngineKind::Baseline);
        assert_eq!(Session::reference().engine_kind(), EngineKind::Reference);
        assert_eq!(Session::modin().mode(), EvalMode::Eager);
        let lazy = Session::modin_with(ModinConfig::sequential(), EvalMode::Lazy);
        assert_eq!(lazy.mode(), EvalMode::Lazy);
        let constrained = Session::baseline_with(BaselineConfig::unconstrained());
        assert_eq!(constrained.engine_kind(), EngineKind::Baseline);
    }

    #[test]
    fn stats_start_at_zero() {
        let session = Session::modin();
        assert_eq!(session.stats().statements, 0);
        assert_eq!(session.stats().executions, 0);
    }
}
