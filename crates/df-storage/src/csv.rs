//! CSV ingest and egress.
//!
//! Paper §5.1: "external storage in data science is often untyped … most data files
//! used in data science today (notably those in the ever-popular csv format)" carry no
//! schema. `read_csv_str` therefore produces a dataframe whose cells are all raw
//! strings (`Σ*`) with *no* domains set — schema induction and parsing happen later,
//! on demand, exactly as the paper's lazy-schema discussion requires. `read_csv_typed`
//! is the convenience path that induces and parses immediately (what pandas does).

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use df_types::cell::Cell;
use df_types::error::{DfError, DfResult};

use df_core::dataframe::{Column, DataFrame};

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record holds column labels (default true).
    pub has_header: bool,
    /// Parse and type columns immediately after reading (pandas behaviour). When false
    /// the result stays in the raw `Σ*` state.
    pub infer_schema: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            infer_schema: false,
        }
    }
}

/// Parse one CSV record, honouring double-quote quoting and embedded delimiters.
fn split_record(line: &str, delimiter: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                current.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut current));
        } else {
            current.push(c);
        }
    }
    fields.push(current);
    fields
}

/// Quote a field if it contains the delimiter, a quote, or a newline.
fn quote_field(field: &str, delimiter: char) -> String {
    if field.contains(delimiter) || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Read a CSV document from any reader into an untyped (raw `Σ*`) dataframe.
pub fn read_csv_reader<R: Read>(reader: R, options: &CsvOptions) -> DfResult<DataFrame> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let mut header: Option<Vec<String>> = None;
    let mut columns: Vec<Vec<Cell>> = Vec::new();
    let mut n_cols = 0usize;
    let mut row_count = 0usize;
    if options.has_header {
        match lines.next() {
            Some(line) => {
                let fields = split_record(&line?, options.delimiter);
                n_cols = fields.len();
                header = Some(fields);
                columns = vec![Vec::new(); n_cols];
            }
            None => return Ok(DataFrame::empty()),
        }
    }
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line, options.delimiter);
        if header.is_none() && columns.is_empty() {
            n_cols = fields.len();
            columns = vec![Vec::new(); n_cols];
        }
        if fields.len() != n_cols {
            return Err(DfError::shape(
                format!("{n_cols} fields per record"),
                format!("{} fields at data row {row_count}", fields.len()),
            ));
        }
        for (slot, field) in columns.iter_mut().zip(fields) {
            if df_types::domain::is_null_token(&field) {
                slot.push(Cell::Null);
            } else {
                slot.push(Cell::Str(field));
            }
        }
        row_count += 1;
    }
    let labels: Vec<Cell> = match header {
        Some(names) => names.into_iter().map(Cell::Str).collect(),
        None => (0..n_cols).map(|i| Cell::Int(i as i64)).collect(),
    };
    let columns: Vec<Column> = columns.into_iter().map(Column::new).collect();
    let mut df = DataFrame::from_parts(
        columns,
        df_types::labels::Labels::positional(row_count),
        df_types::labels::Labels::new(labels),
    )?;
    if options.infer_schema {
        df.parse_all();
    }
    Ok(df)
}

/// Read a CSV document from a string.
pub fn read_csv_str(content: &str, options: &CsvOptions) -> DfResult<DataFrame> {
    read_csv_reader(content.as_bytes(), options)
}

/// Read a CSV file from disk.
pub fn read_csv_path(path: impl AsRef<Path>, options: &CsvOptions) -> DfResult<DataFrame> {
    let file = std::fs::File::open(path)?;
    read_csv_reader(file, options)
}

/// Serialise a dataframe as CSV (header + records, labels omitted — matching
/// `to_csv(index=False)`).
pub fn write_csv_string(df: &DataFrame, options: &CsvOptions) -> String {
    let mut out = String::new();
    if options.has_header {
        let header: Vec<String> = df
            .col_labels()
            .as_slice()
            .iter()
            .map(|l| quote_field(&l.to_raw_string(), options.delimiter))
            .collect();
        out.push_str(&header.join(&options.delimiter.to_string()));
        out.push('\n');
    }
    for i in 0..df.n_rows() {
        let record: Vec<String> = df
            .columns()
            .iter()
            .map(|c| quote_field(&c.cells()[i].to_raw_string(), options.delimiter))
            .collect();
        out.push_str(&record.join(&options.delimiter.to_string()));
        out.push('\n');
    }
    out
}

/// Write a dataframe to a CSV file on disk.
pub fn write_csv_path(
    df: &DataFrame,
    path: impl AsRef<Path>,
    options: &CsvOptions,
) -> DfResult<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(write_csv_string(df, options).as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;
    use df_types::domain::Domain;

    const SAMPLE: &str = "name,price,rating\niPhone 11,699,4.6\niPhone SE,399,4.5\n";

    #[test]
    fn read_csv_produces_untyped_raw_cells() {
        let df = read_csv_str(SAMPLE, &CsvOptions::default()).unwrap();
        assert_eq!(df.shape(), (2, 3));
        assert_eq!(df.cell(0, 1).unwrap(), &cell("699"));
        assert_eq!(df.schema(), vec![None, None, None]);
    }

    #[test]
    fn read_csv_with_schema_inference_types_columns() {
        let options = CsvOptions {
            infer_schema: true,
            ..CsvOptions::default()
        };
        let df = read_csv_str(SAMPLE, &options).unwrap();
        assert_eq!(df.cell(0, 1).unwrap(), &cell(699));
        assert_eq!(
            df.schema(),
            vec![Some(Domain::Str), Some(Domain::Int), Some(Domain::Float)]
        );
    }

    #[test]
    fn quoting_and_embedded_delimiters_round_trip() {
        let csv = "id,desc\n1,\"a, b\"\n2,\"say \"\"hi\"\"\"\n";
        let df = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(df.cell(0, 1).unwrap(), &cell("a, b"));
        assert_eq!(df.cell(1, 1).unwrap(), &cell("say \"hi\""));
        let written = write_csv_string(&df, &CsvOptions::default());
        let reread = read_csv_str(&written, &CsvOptions::default()).unwrap();
        assert!(reread.same_data(&df));
    }

    #[test]
    fn missing_fields_and_ragged_rows() {
        let csv = "a,b\n1,\n2,x\n";
        let df = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(df.cell(0, 1).unwrap(), &Cell::Null);
        let ragged = "a,b\n1\n";
        assert!(read_csv_str(ragged, &CsvOptions::default()).is_err());
    }

    #[test]
    fn headerless_files_get_positional_column_labels() {
        let options = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let df = read_csv_str("1,2\n3,4\n", &options).unwrap();
        assert_eq!(df.col_labels().as_slice(), &[cell(0), cell(1)]);
        assert_eq!(df.shape(), (2, 2));
    }

    #[test]
    fn alternative_delimiters() {
        let options = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let df = read_csv_str("a;b\n1;2\n", &options).unwrap();
        assert_eq!(df.cell(0, 1).unwrap(), &cell("2"));
        let out = write_csv_string(&df, &options);
        assert!(out.starts_with("a;b\n"));
    }

    #[test]
    fn empty_input_yields_empty_frame() {
        let df = read_csv_str("", &CsvOptions::default()).unwrap();
        assert_eq!(df.shape(), (0, 0));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("df_storage_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        let df = read_csv_str(SAMPLE, &CsvOptions::default()).unwrap();
        write_csv_path(&df, &path, &CsvOptions::default()).unwrap();
        let reread = read_csv_path(&path, &CsvOptions::default()).unwrap();
        assert!(reread.same_data(&df));
        assert!(read_csv_path(dir.join("missing.csv"), &CsvOptions::default()).is_err());
        std::fs::remove_file(path).ok();
    }
}
