//! CSV ingest and egress — serial and chunk-parallel.
//!
//! Paper §5.1: "external storage in data science is often untyped … most data files
//! used in data science today (notably those in the ever-popular csv format)" carry no
//! schema. [`read_csv_str`] therefore produces a dataframe whose cells are all raw
//! strings (`Σ*`) with *no* domains set — schema induction and parsing happen later,
//! on demand, exactly as the paper's lazy-schema discussion requires. Setting
//! [`CsvOptions::infer_schema`] is the convenience path that induces and parses
//! immediately (what pandas does).
//!
//! ## The chunked (parallel, out-of-core) ingest path
//!
//! `read_csv` is the first statement of nearly every workflow, and a serial reader
//! that materialises the whole frame before partitioning defeats both the parallel
//! engine and the memory budget on line one. This module therefore also provides the
//! storage half of partition-parallel ingest:
//!
//! 1. [`plan_csv_chunks`] — one cheap streaming pass over the file that tracks CSV
//!    quote state (so quoted embedded newlines cannot be mistaken for record
//!    boundaries) and cuts the byte range into chunks of whole records, counting the
//!    data rows per chunk as it goes. No cell is allocated.
//! 2. [`read_csv_chunk`] — parse one chunk independently (each worker seeks to its
//!    byte range), producing a raw (`Σ*`) band whose positional row labels already
//!    carry the global offsets the plan recorded.
//! 3. [`band_induction_summaries`] / [`reconcile_domains`] / [`apply_domains`] — the
//!    schema-reconciliation pass for `infer_schema` ingests: each band is summarised
//!    with a composable [`InductionSummary`], the summaries are joined across bands
//!    in band order, and every band is then re-cast with the reconciled per-column
//!    domains — so the result is cell-for-cell (and schema-slot-for-schema-slot)
//!    identical to running the serial reader followed by `parse_all`.
//!
//! The engine layer (`df-engine`) drives steps 2–3 on its worker pool and checks each
//! finished band into the session's spill store; this module stays single-threaded
//! and engine-agnostic.
//!
//! Both the serial and the chunked readers share one record scanner, so quoted
//! embedded newlines, CRLF line endings and trailing-delimiter rows parse identically
//! in both modes (the regression suite below pins this down).

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use df_types::cell::Cell;
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};
use df_types::infer::InductionSummary;
use df_types::labels::Labels;

use df_core::dataframe::{Column, DataFrame};

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record holds column labels (default true).
    pub has_header: bool,
    /// Parse and type columns immediately after reading (pandas behaviour). When false
    /// the result stays in the raw `Σ*` state.
    pub infer_schema: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            infer_schema: false,
        }
    }
}

/// Parse one CSV record, honouring double-quote quoting and embedded delimiters (and,
/// since the record scanner keeps them intact, embedded newlines).
fn split_record(line: &str, delimiter: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                current.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut current));
        } else {
            current.push(c);
        }
    }
    fields.push(current);
    fields
}

/// Quote a field if it contains the delimiter, a quote, or a newline.
fn quote_field(field: &str, delimiter: char) -> String {
    if field.contains(delimiter)
        || field.contains('"')
        || field.contains('\n')
        || field.contains('\r')
    {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Iterator over the records of a CSV document: splits at *unquoted* newlines only
/// (a `\n` inside a quoted field is data, not a record boundary) and strips the `\r`
/// of a CRLF terminator. The quote state machine matches [`split_record`]'s, so a
/// record the scanner yields is always split into the fields the writer produced.
struct Records<'a> {
    content: &'a str,
    pos: usize,
}

impl<'a> Records<'a> {
    fn new(content: &'a str) -> Self {
        Records { content, pos: 0 }
    }
}

impl<'a> Iterator for Records<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let bytes = self.content.as_bytes();
        if self.pos >= bytes.len() {
            return None;
        }
        let start = self.pos;
        let mut in_quotes = false;
        let mut i = start;
        while i < bytes.len() {
            match bytes[i] {
                // `""` inside quotes exits and immediately re-enters: net unchanged,
                // exactly like the field splitter's escape handling.
                b'"' => in_quotes = !in_quotes,
                b'\n' if !in_quotes => {
                    let mut end = i;
                    if end > start && bytes[end - 1] == b'\r' {
                        end -= 1;
                    }
                    self.pos = i + 1;
                    return Some(&self.content[start..end]);
                }
                _ => {}
            }
            i += 1;
        }
        // Final record without a terminating newline (its `\r`, if any, is data —
        // mirroring `BufRead::lines`).
        self.pos = bytes.len();
        Some(&self.content[start..])
    }
}

/// Parse data records into per-column cell vectors. `n_cols` is the expected arity
/// (`None` derives it from the first non-empty record, the headerless serial path);
/// `row_offset` is the global index of the first data record, used so a ragged-row
/// error reports the same row number no matter which chunk found it.
fn parse_data_records<'a>(
    records: impl Iterator<Item = &'a str>,
    delimiter: char,
    n_cols: Option<usize>,
    row_offset: usize,
) -> DfResult<(Vec<Vec<Cell>>, usize, usize)> {
    let mut n_cols = n_cols;
    let mut columns: Vec<Vec<Cell>> = match n_cols {
        Some(n) => vec![Vec::new(); n],
        None => Vec::new(),
    };
    let mut row_count = 0usize;
    for record in records {
        if record.is_empty() {
            continue;
        }
        let fields = split_record(record, delimiter);
        let expected = *n_cols.get_or_insert_with(|| {
            columns = vec![Vec::new(); fields.len()];
            fields.len()
        });
        if fields.len() != expected {
            return Err(DfError::shape(
                format!("{expected} fields per record"),
                format!(
                    "{} fields at data row {}",
                    fields.len(),
                    row_offset + row_count
                ),
            ));
        }
        for (slot, field) in columns.iter_mut().zip(fields) {
            if df_types::domain::is_null_token(&field) {
                slot.push(Cell::Null);
            } else {
                slot.push(Cell::Str(field));
            }
        }
        row_count += 1;
    }
    Ok((columns, n_cols.unwrap_or(0), row_count))
}

/// Read a CSV document from any reader into an untyped (raw `Σ*`) dataframe (or a
/// typed one when [`CsvOptions::infer_schema`] is set).
pub fn read_csv_reader<R: Read>(mut reader: R, options: &CsvOptions) -> DfResult<DataFrame> {
    let mut content = String::new();
    reader.read_to_string(&mut content)?;
    read_csv_str(&content, options)
}

/// Read a CSV document from a string.
pub fn read_csv_str(content: &str, options: &CsvOptions) -> DfResult<DataFrame> {
    let mut records = Records::new(content);
    let mut header: Option<Vec<String>> = None;
    if options.has_header {
        match records.next() {
            Some(record) => header = Some(split_record(record, options.delimiter)),
            None => return Ok(DataFrame::empty()),
        }
    }
    let n_cols_hint = header.as_ref().map(Vec::len);
    let (columns, n_cols, row_count) =
        parse_data_records(records, options.delimiter, n_cols_hint, 0)?;
    let labels: Vec<Cell> = match header {
        Some(names) => names.into_iter().map(Cell::Str).collect(),
        None => (0..n_cols).map(|i| Cell::Int(i as i64)).collect(),
    };
    let columns: Vec<Column> = columns.into_iter().map(Column::new).collect();
    let mut df =
        DataFrame::from_parts(columns, Labels::positional(row_count), Labels::new(labels))?;
    if options.infer_schema {
        df.parse_all();
    }
    Ok(df)
}

/// Read a CSV file from disk.
pub fn read_csv_path(path: impl AsRef<Path>, options: &CsvOptions) -> DfResult<DataFrame> {
    let file = std::fs::File::open(path)?;
    read_csv_reader(file, options)
}

// ---------------------------------------------------------------------------
// Chunked ingest: plan, per-chunk parse, schema reconciliation
// ---------------------------------------------------------------------------

/// One contiguous byte range of a CSV file holding whole records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvChunk {
    /// Byte offset of the chunk's first record.
    pub start_byte: u64,
    /// Byte offset one past the chunk's last record (including its newline).
    pub end_byte: u64,
    /// Number of non-empty data records in the chunk.
    pub rows: usize,
    /// Global index of the chunk's first data row (0-based, header excluded).
    pub start_row: usize,
}

/// The result of the boundary-scan pass: everything a pool of workers needs to parse
/// a CSV file chunk-by-chunk with no further coordination.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvIngestPlan {
    /// Split header fields, when the file has a header record.
    pub header: Option<Vec<String>>,
    /// Arity of every record (0 for an empty file).
    pub n_cols: usize,
    /// Total non-empty data records.
    pub total_rows: usize,
    /// Total bytes scanned (the file length).
    pub total_bytes: u64,
    /// The chunks, in file order. Empty when the file holds no data records.
    pub chunks: Vec<CsvChunk>,
}

impl CsvIngestPlan {
    /// The column labels the parsed frame will carry (header fields, or positional
    /// ranks for headerless files) — identical to the serial reader's.
    pub fn col_labels(&self) -> Labels {
        match &self.header {
            Some(names) => Labels::new(names.iter().cloned().map(Cell::Str).collect()),
            None => Labels::new((0..self.n_cols).map(|i| Cell::Int(i as i64)).collect()),
        }
    }

    /// An empty frame with the plan's column labels — what a file with no data
    /// records parses to (cell-for-cell what the serial reader returns).
    pub fn empty_frame(&self) -> DfResult<DataFrame> {
        if self.header.is_none() && self.n_cols == 0 {
            return Ok(DataFrame::empty());
        }
        let columns: Vec<Column> = (0..self.n_cols).map(|_| Column::new(Vec::new())).collect();
        DataFrame::from_parts(columns, Labels::positional(0), self.col_labels())
    }
}

/// Scan a CSV file once — tracking quote state, never allocating cells — and split
/// its byte range into chunks of at most `rows_per_chunk` whole records. Chunk
/// boundaries always fall at record boundaries (an unquoted newline), so a `\n`
/// inside a quoted field can never split a record across two workers; the scan also
/// counts the data rows per chunk, which is what lets every chunk be parsed with its
/// global row offsets already known.
pub fn plan_csv_chunks(
    path: impl AsRef<Path>,
    options: &CsvOptions,
    rows_per_chunk: usize,
) -> DfResult<CsvIngestPlan> {
    let rows_per_chunk = rows_per_chunk.max(1);
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::with_capacity(64 * 1024, file);

    let mut pos: u64 = 0;
    let mut in_quotes = false;
    let mut record_len: usize = 0;
    let mut last_byte: u8 = 0;

    let mut awaiting_header = options.has_header;
    let mut header_raw: Option<String> = None;
    let mut first_data_raw: Option<String> = None;
    // Raw bytes of the record currently being scanned, kept only while the header
    // (or, for headerless files, the first data record) is still being sought.
    let mut capture: Vec<u8> = Vec::new();
    let mut capturing = true;

    let mut chunk_start: u64 = 0;
    let mut chunk_rows = 0usize;
    let mut total_rows = 0usize;
    let mut chunks: Vec<CsvChunk> = Vec::new();

    // Called at every record boundary with the record's effective byte length (CRLF
    // terminator stripped) and the byte offset just past its terminator.
    let mut finish_record = |effective_len: usize,
                             end: u64,
                             capture: &mut Vec<u8>,
                             capturing: &mut bool|
     -> DfResult<()> {
        let raw = if *capturing {
            let text = std::str::from_utf8(&capture[..effective_len])
                .map_err(|_| DfError::Io("CSV file is not valid UTF-8".to_string()))?
                .to_string();
            capture.clear();
            Some(text)
        } else {
            None
        };
        if awaiting_header {
            header_raw = Some(raw.ok_or_else(|| {
                DfError::internal("CSV planner stopped capturing before the header record")
            })?);
            awaiting_header = false;
            // Data (and the first chunk) start after the header record.
            chunk_start = end;
            *capturing = false;
            return Ok(());
        }
        if effective_len == 0 {
            // Blank record: skipped by the parser, never counted as a data row.
            return Ok(());
        }
        if first_data_raw.is_none() {
            if let Some(text) = raw {
                first_data_raw = Some(text);
            }
            *capturing = false;
        }
        total_rows += 1;
        chunk_rows += 1;
        if chunk_rows == rows_per_chunk {
            chunks.push(CsvChunk {
                start_byte: chunk_start,
                end_byte: end,
                rows: chunk_rows,
                start_row: total_rows - chunk_rows,
            });
            chunk_start = end;
            chunk_rows = 0;
        }
        Ok(())
    };

    loop {
        use std::io::BufRead;
        let consumed = {
            let buffer = reader.fill_buf()?;
            if buffer.is_empty() {
                break;
            }
            for &byte in buffer {
                pos += 1;
                match byte {
                    b'"' => {
                        in_quotes = !in_quotes;
                        record_len += 1;
                        if capturing {
                            capture.push(byte);
                        }
                    }
                    b'\n' if !in_quotes => {
                        let effective_len =
                            record_len - usize::from(record_len > 0 && last_byte == b'\r');
                        finish_record(effective_len, pos, &mut capture, &mut capturing)?;
                        record_len = 0;
                    }
                    _ => {
                        record_len += 1;
                        if capturing {
                            capture.push(byte);
                        }
                    }
                }
                last_byte = byte;
            }
            buffer.len()
        };
        reader.consume(consumed);
    }
    if record_len > 0 {
        // Final record without a trailing newline: its `\r`, if any, is data.
        finish_record(record_len, pos, &mut capture, &mut capturing)?;
    }
    if chunk_rows > 0 {
        chunks.push(CsvChunk {
            start_byte: chunk_start,
            end_byte: pos,
            rows: chunk_rows,
            start_row: total_rows - chunk_rows,
        });
    }

    let header = header_raw.map(|raw| split_record(&raw, options.delimiter));
    let n_cols = match (&header, &first_data_raw) {
        (Some(fields), _) => fields.len(),
        (None, Some(raw)) => split_record(raw, options.delimiter).len(),
        (None, None) => 0,
    };
    Ok(CsvIngestPlan {
        header,
        n_cols,
        total_rows,
        total_bytes: pos,
        chunks,
    })
}

/// Parse one planned chunk into a raw (`Σ*`) full-width band. The worker seeks to the
/// chunk's byte range and touches nothing else; row labels are the global positional
/// ranks the serial reader would have assigned. Schema induction never runs here —
/// typed ingest reconciles domains across bands afterwards (see [`apply_domains`]).
pub fn read_csv_chunk(
    path: impl AsRef<Path>,
    options: &CsvOptions,
    plan: &CsvIngestPlan,
    chunk: &CsvChunk,
) -> DfResult<DataFrame> {
    let mut file = std::fs::File::open(path)?;
    file.seek(SeekFrom::Start(chunk.start_byte))?;
    let len = (chunk.end_byte - chunk.start_byte) as usize;
    let mut bytes = vec![0u8; len];
    file.read_exact(&mut bytes)?;
    let content = String::from_utf8(bytes)
        .map_err(|_| DfError::Io("CSV file is not valid UTF-8".to_string()))?;
    let (columns, _, rows) = parse_data_records(
        Records::new(&content),
        options.delimiter,
        Some(plan.n_cols),
        chunk.start_row,
    )?;
    if rows != chunk.rows {
        return Err(DfError::internal(format!(
            "CSV chunk at byte {} parsed {rows} rows but the plan counted {} — \
             the file changed between planning and parsing",
            chunk.start_byte, chunk.rows
        )));
    }
    let row_labels = Labels::new(
        (chunk.start_row..chunk.start_row + rows)
            .map(|i| Cell::Int(i as i64))
            .collect(),
    );
    let columns: Vec<Column> = columns.into_iter().map(Column::new).collect();
    DataFrame::from_parts(columns, row_labels, plan.col_labels())
}

/// Parse one planned chunk, materialising only the columns named in `keep` (source
/// positions in the file's column order; the output carries them in `keep` order).
/// This is the storage half of *projection pushdown*: every record is still split and
/// arity-checked — so ragged rows fail with the same error as the unprojected reader
/// — but cells are allocated only for the kept columns. Row labels are the global
/// positional ranks, identical to [`read_csv_chunk`]'s.
///
/// `keep` must be unique and in range; the optimizer builds it by resolving the
/// pushed projection (plus any predicate columns) against the plan's labels.
pub fn read_csv_chunk_cols(
    path: impl AsRef<Path>,
    options: &CsvOptions,
    plan: &CsvIngestPlan,
    chunk: &CsvChunk,
    keep: &[usize],
) -> DfResult<DataFrame> {
    for &k in keep {
        if k >= plan.n_cols {
            return Err(DfError::IndexOutOfBounds {
                axis: "column",
                index: k,
                len: plan.n_cols,
            });
        }
    }
    {
        let mut sorted: Vec<usize> = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != keep.len() {
            return Err(DfError::internal(
                "projected chunk read requires unique column positions",
            ));
        }
    }
    let mut file = std::fs::File::open(path)?;
    file.seek(SeekFrom::Start(chunk.start_byte))?;
    let len = (chunk.end_byte - chunk.start_byte) as usize;
    let mut bytes = vec![0u8; len];
    file.read_exact(&mut bytes)?;
    let content = String::from_utf8(bytes)
        .map_err(|_| DfError::Io("CSV file is not valid UTF-8".to_string()))?;

    let mut columns: Vec<Vec<Cell>> = vec![Vec::new(); keep.len()];
    let mut row_count = 0usize;
    for record in Records::new(&content) {
        if record.is_empty() {
            continue;
        }
        let fields = split_record(record, options.delimiter);
        if fields.len() != plan.n_cols {
            return Err(DfError::shape(
                format!("{} fields per record", plan.n_cols),
                format!(
                    "{} fields at data row {}",
                    fields.len(),
                    chunk.start_row + row_count
                ),
            ));
        }
        let mut fields: Vec<Option<String>> = fields.into_iter().map(Some).collect();
        for (slot, &k) in columns.iter_mut().zip(keep) {
            let field = fields[k].take().unwrap_or_default();
            if df_types::domain::is_null_token(&field) {
                slot.push(Cell::Null);
            } else {
                slot.push(Cell::Str(field));
            }
        }
        row_count += 1;
    }
    if row_count != chunk.rows {
        return Err(DfError::internal(format!(
            "CSV chunk at byte {} parsed {row_count} rows but the plan counted {} — \
             the file changed between planning and parsing",
            chunk.start_byte, chunk.rows
        )));
    }
    let row_labels = Labels::new(
        (chunk.start_row..chunk.start_row + row_count)
            .map(|i| Cell::Int(i as i64))
            .collect(),
    );
    let all_labels = plan.col_labels();
    let col_labels = Labels::new(
        keep.iter()
            .map(|&k| all_labels.as_slice()[k].clone())
            .collect(),
    );
    let columns: Vec<Column> = columns.into_iter().map(Column::new).collect();
    DataFrame::from_parts(columns, row_labels, col_labels)
}

/// Summarise one parsed band's columns as per-chunk scan statistics (null counts,
/// numeric and lexical min/max, capped distinct counts) — the filter half of the
/// block–filter–verify pruning the scan leaf performs. Runs over the raw (pre-cast)
/// cells, which is exactly the state [`df_core::scan::chunk_may_match`]'s soundness
/// argument assumes.
pub fn chunk_column_stats(band: &DataFrame) -> Vec<df_core::scan::ColumnChunkStats> {
    band.columns()
        .iter()
        .map(|column| {
            let mut stats = df_core::scan::ColumnChunkStats::default();
            let mut seen = Vec::new();
            for cell in column.cells() {
                stats.observe(cell, &mut seen);
            }
            stats
        })
        .collect()
}

/// Summarise one raw band's columns for schema reconciliation: the per-band half of
/// the schema induction function `S`, in the composable form that joins across bands.
pub fn band_induction_summaries(band: &DataFrame) -> Vec<InductionSummary> {
    band.columns()
        .iter()
        .map(|column| InductionSummary::of_strings(column.cells().iter().filter_map(Cell::as_str)))
        .collect()
}

/// Join per-band summaries (outer: bands in file order; inner: columns) into the
/// per-column domains the serial reader's `parse_all` would have induced over the
/// whole column.
pub fn reconcile_domains(band_summaries: &[Vec<InductionSummary>]) -> Vec<Domain> {
    let Some(first) = band_summaries.first() else {
        return Vec::new();
    };
    let mut merged: Vec<InductionSummary> = first.clone();
    for band in &band_summaries[1..] {
        for (column, summary) in merged.iter_mut().zip(band) {
            column.merge(summary);
        }
    }
    merged.iter().map(InductionSummary::finish).collect()
}

/// Re-cast one band with the reconciled per-column domains, mirroring the serial
/// reader's `parse_in_place` exactly: a `Str`/`Composite` column keeps its raw cells
/// and merely *caches* the induced domain (so a later mutation invalidates it, like
/// serial); any other domain parses every raw string cell with `p_i` (unparseable
/// entries become null, matching the lenient `parse_all`) and is then *declared*.
/// Bands whose local induction agreed with the reconciled domain and bands that
/// were out-voted ("minority bands") go through the same cast, so the result cannot
/// depend on which bands agreed.
pub fn apply_domains(band: DataFrame, domains: &[Domain]) -> DfResult<DataFrame> {
    let (mut columns, row_labels, col_labels) = band.into_parts();
    if columns.len() != domains.len() {
        return Err(DfError::shape(
            format!("{} reconciled domains", columns.len()),
            format!("{} provided", domains.len()),
        ));
    }
    for (column, &domain) in columns.iter_mut().zip(domains) {
        if matches!(domain, Domain::Str | Domain::Composite) {
            column.note_induced_domain(domain);
            continue;
        }
        for cell in column.cells_mut().iter_mut() {
            if let Cell::Str(s) = cell {
                *cell = domain.parse(s).unwrap_or(Cell::Null);
            }
        }
        column.declare_domain(domain);
    }
    DataFrame::from_parts(columns, row_labels, col_labels)
}

// ---------------------------------------------------------------------------
// Egress
// ---------------------------------------------------------------------------

/// Write the header record (column labels) to a writer. A no-op when the options say
/// the document carries no header.
pub fn write_csv_header<W: Write>(
    writer: &mut W,
    col_labels: &Labels,
    options: &CsvOptions,
) -> DfResult<()> {
    if !options.has_header {
        return Ok(());
    }
    let header: Vec<String> = col_labels
        .as_slice()
        .iter()
        .map(|l| quote_field(&l.to_raw_string(), options.delimiter))
        .collect();
    writeln!(writer, "{}", header.join(&options.delimiter.to_string()))?;
    Ok(())
}

/// Append one frame's rows (no header) to a writer. Streaming band-wise egress calls
/// this once per band, so a larger-than-memory result is written without ever being
/// assembled.
pub fn append_csv_records<W: Write>(
    writer: &mut W,
    df: &DataFrame,
    options: &CsvOptions,
) -> DfResult<()> {
    for i in 0..df.n_rows() {
        let record: Vec<String> = df
            .columns()
            .iter()
            .map(|c| quote_field(&c.cells()[i].to_raw_string(), options.delimiter))
            .collect();
        writeln!(writer, "{}", record.join(&options.delimiter.to_string()))?;
    }
    Ok(())
}

/// Serialise a dataframe as CSV (header + records, labels omitted — matching
/// `to_csv(index=False)`).
pub fn write_csv_string(df: &DataFrame, options: &CsvOptions) -> DfResult<String> {
    let mut out: Vec<u8> = Vec::new();
    write_csv_header(&mut out, df.col_labels(), options)?;
    append_csv_records(&mut out, df, options)?;
    String::from_utf8(out).map_err(|_| DfError::internal("CSV writer produced non-UTF-8 output"))
}

/// Write a dataframe to a CSV file on disk.
pub fn write_csv_path(
    df: &DataFrame,
    path: impl AsRef<Path>,
    options: &CsvOptions,
) -> DfResult<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(write_csv_string(df, options)?.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;
    use df_types::domain::Domain;

    const SAMPLE: &str = "name,price,rating\niPhone 11,699,4.6\niPhone SE,399,4.5\n";

    fn temp_csv(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("df_storage_csv_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    /// Parse a file through the chunked path at the given chunk granularity and
    /// assemble the bands — the storage-level equivalent of parallel ingest.
    fn read_via_chunks(content: &str, options: &CsvOptions, rows_per_chunk: usize) -> DataFrame {
        let path = temp_csv(
            &format!("chunked-{rows_per_chunk}-{}.csv", content.len()),
            content,
        );
        let plan = plan_csv_chunks(&path, options, rows_per_chunk).unwrap();
        assert_eq!(plan.total_bytes, content.len() as u64);
        let mut bands: Vec<DataFrame> = plan
            .chunks
            .iter()
            .map(|chunk| read_csv_chunk(&path, options, &plan, chunk).unwrap())
            .collect();
        if options.infer_schema {
            let summaries: Vec<Vec<InductionSummary>> =
                bands.iter().map(band_induction_summaries).collect();
            let domains = reconcile_domains(&summaries);
            bands = bands
                .into_iter()
                .map(|band| apply_domains(band, &domains).unwrap())
                .collect();
        }
        std::fs::remove_file(path).ok();
        if bands.is_empty() {
            let mut empty = plan.empty_frame().unwrap();
            if options.infer_schema {
                empty.parse_all();
            }
            return empty;
        }
        df_core::ops::setops::union_all(bands).unwrap()
    }

    /// Serial and chunked parses must agree cell-for-cell and schema-for-schema at
    /// every chunk granularity.
    fn assert_serial_chunked_identical(content: &str, options: &CsvOptions) {
        let serial = read_csv_str(content, options).unwrap();
        for rows_per_chunk in [1usize, 2, 3, 7, 1000] {
            let chunked = read_via_chunks(content, options, rows_per_chunk);
            assert!(
                chunked.same_data(&serial),
                "chunked ({rows_per_chunk} rows/chunk) diverged from serial\nserial:\n{serial}\nchunked:\n{chunked}"
            );
            assert_eq!(
                chunked.schema(),
                serial.schema(),
                "schema diverged at {rows_per_chunk} rows/chunk"
            );
        }
    }

    #[test]
    fn read_csv_produces_untyped_raw_cells() {
        let df = read_csv_str(SAMPLE, &CsvOptions::default()).unwrap();
        assert_eq!(df.shape(), (2, 3));
        assert_eq!(df.cell(0, 1).unwrap(), &cell("699"));
        assert_eq!(df.schema(), vec![None, None, None]);
    }

    #[test]
    fn read_csv_with_schema_inference_types_columns() {
        let options = CsvOptions {
            infer_schema: true,
            ..CsvOptions::default()
        };
        let df = read_csv_str(SAMPLE, &options).unwrap();
        assert_eq!(df.cell(0, 1).unwrap(), &cell(699));
        assert_eq!(
            df.schema(),
            vec![Some(Domain::Str), Some(Domain::Int), Some(Domain::Float)]
        );
    }

    #[test]
    fn quoting_and_embedded_delimiters_round_trip() {
        let csv = "id,desc\n1,\"a, b\"\n2,\"say \"\"hi\"\"\"\n";
        let df = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(df.cell(0, 1).unwrap(), &cell("a, b"));
        assert_eq!(df.cell(1, 1).unwrap(), &cell("say \"hi\""));
        let written = write_csv_string(&df, &CsvOptions::default()).unwrap();
        let reread = read_csv_str(&written, &CsvOptions::default()).unwrap();
        assert!(reread.same_data(&df));
    }

    #[test]
    fn quoted_embedded_newlines_parse_and_round_trip() {
        // The serial-reader hardening uncovered by the chunk splitter: a `\n` inside
        // quotes is data, not a record boundary — in both modes.
        let csv = "id,note\n1,\"line one\nline two\"\n2,plain\n";
        let df = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(df.shape(), (2, 2));
        assert_eq!(df.cell(0, 1).unwrap(), &cell("line one\nline two"));
        assert_eq!(df.cell(1, 1).unwrap(), &cell("plain"));
        let written = write_csv_string(&df, &CsvOptions::default()).unwrap();
        let reread = read_csv_str(&written, &CsvOptions::default()).unwrap();
        assert!(reread.same_data(&df));
        assert_serial_chunked_identical(csv, &CsvOptions::default());
        // A quoted CRLF survives as data too.
        let crlf_in_quotes = "id,note\r\n1,\"a\r\nb\"\r\n";
        let df = read_csv_str(crlf_in_quotes, &CsvOptions::default()).unwrap();
        assert_eq!(df.cell(0, 1).unwrap(), &cell("a\r\nb"));
        assert_serial_chunked_identical(crlf_in_quotes, &CsvOptions::default());
    }

    #[test]
    fn crlf_line_endings_parse_like_lf() {
        let lf = "a,b\n1,x\n2,y\n";
        let crlf = "a,b\r\n1,x\r\n2,y\r\n";
        let from_lf = read_csv_str(lf, &CsvOptions::default()).unwrap();
        let from_crlf = read_csv_str(crlf, &CsvOptions::default()).unwrap();
        assert!(from_crlf.same_data(&from_lf));
        assert_eq!(from_crlf.cell(1, 1).unwrap(), &cell("y"));
        assert_serial_chunked_identical(crlf, &CsvOptions::default());
        // A CRLF blank record is skipped like an LF one.
        let blanks = "a,b\r\n1,x\r\n\r\n2,y\r\n";
        assert_eq!(
            read_csv_str(blanks, &CsvOptions::default())
                .unwrap()
                .shape(),
            (2, 2)
        );
        assert_serial_chunked_identical(blanks, &CsvOptions::default());
    }

    #[test]
    fn trailing_delimiter_rows_yield_trailing_nulls() {
        // `1,` is a two-field record whose second field is empty → null, in both the
        // serial and the chunked mode (and with CRLF terminators).
        for csv in ["a,b\n1,\n2,x\n", "a,b\r\n1,\r\n2,x\r\n"] {
            let df = read_csv_str(csv, &CsvOptions::default()).unwrap();
            assert_eq!(df.shape(), (2, 2));
            assert_eq!(df.cell(0, 1).unwrap(), &Cell::Null);
            assert_eq!(df.cell(1, 1).unwrap(), &cell("x"));
            assert_serial_chunked_identical(csv, &CsvOptions::default());
        }
    }

    #[test]
    fn missing_fields_and_ragged_rows() {
        let csv = "a,b\n1,\n2,x\n";
        let df = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(df.cell(0, 1).unwrap(), &Cell::Null);
        let ragged = "a,b\n1\n";
        assert!(read_csv_str(ragged, &CsvOptions::default()).is_err());
        // The chunked mode reports the same global row in its ragged error.
        let ragged_later = "a,b\n1,x\n2,y\n3\n";
        let serial_err = read_csv_str(ragged_later, &CsvOptions::default()).unwrap_err();
        let path = temp_csv("ragged.csv", ragged_later);
        let plan = plan_csv_chunks(&path, &CsvOptions::default(), 1).unwrap();
        let chunk_err =
            read_csv_chunk(&path, &CsvOptions::default(), &plan, &plan.chunks[2]).unwrap_err();
        assert_eq!(format!("{serial_err}"), format!("{chunk_err}"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn headerless_files_get_positional_column_labels() {
        let options = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let df = read_csv_str("1,2\n3,4\n", &options).unwrap();
        assert_eq!(df.col_labels().as_slice(), &[cell(0), cell(1)]);
        assert_eq!(df.shape(), (2, 2));
        assert_serial_chunked_identical("1,2\n3,4\n", &options);
    }

    #[test]
    fn alternative_delimiters() {
        let options = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let df = read_csv_str("a;b\n1;2\n", &options).unwrap();
        assert_eq!(df.cell(0, 1).unwrap(), &cell("2"));
        let out = write_csv_string(&df, &options).unwrap();
        assert!(out.starts_with("a;b\n"));
        assert_serial_chunked_identical("a;b\n1;2\n2;3\n4;5\n", &options);
    }

    #[test]
    fn empty_input_yields_empty_frame() {
        let df = read_csv_str("", &CsvOptions::default()).unwrap();
        assert_eq!(df.shape(), (0, 0));
        assert_serial_chunked_identical("", &CsvOptions::default());
        // Header-only files keep their labels at zero rows, in both modes.
        assert_serial_chunked_identical("a,b\n", &CsvOptions::default());
        let header_only = read_csv_str("a,b\n", &CsvOptions::default()).unwrap();
        assert_eq!(header_only.shape(), (0, 2));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("df_storage_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        let df = read_csv_str(SAMPLE, &CsvOptions::default()).unwrap();
        write_csv_path(&df, &path, &CsvOptions::default()).unwrap();
        let reread = read_csv_path(&path, &CsvOptions::default()).unwrap();
        assert!(reread.same_data(&df));
        assert!(read_csv_path(dir.join("missing.csv"), &CsvOptions::default()).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn chunk_plan_counts_rows_and_respects_boundaries() {
        let content = "h1,h2\n1,a\n2,b\n3,c\n4,d\n5,e\n";
        let path = temp_csv("plan.csv", content);
        let plan = plan_csv_chunks(&path, &CsvOptions::default(), 2).unwrap();
        assert_eq!(plan.total_rows, 5);
        assert_eq!(plan.n_cols, 2);
        assert_eq!(plan.header, Some(vec!["h1".to_string(), "h2".to_string()]));
        assert_eq!(plan.chunks.len(), 3);
        assert_eq!(
            plan.chunks.iter().map(|c| c.rows).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        assert_eq!(
            plan.chunks.iter().map(|c| c.start_row).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        // Chunks tile the data byte range exactly.
        assert_eq!(plan.chunks[0].start_byte, 6);
        for pair in plan.chunks.windows(2) {
            assert_eq!(pair[0].end_byte, pair[1].start_byte);
        }
        assert_eq!(plan.chunks.last().unwrap().end_byte, plan.total_bytes);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn projected_chunk_read_matches_full_read_column_subset() {
        let content = "a,b,c\n1,x,10\n2,\"y,z\",20\n3,na,30\n";
        let path = temp_csv("projected.csv", content);
        let options = CsvOptions::default();
        let plan = plan_csv_chunks(&path, &options, 2).unwrap();
        for chunk in &plan.chunks {
            let full = read_csv_chunk(&path, &options, &plan, chunk).unwrap();
            // Subset in reversed order: labels, cells and row labels all follow.
            let projected = read_csv_chunk_cols(&path, &options, &plan, chunk, &[2, 0]).unwrap();
            assert_eq!(projected.n_rows(), full.n_rows());
            assert_eq!(
                projected.col_labels().as_slice(),
                &[cell("c"), cell("a")],
                "labels follow keep order"
            );
            assert_eq!(projected.row_labels(), full.row_labels());
            for i in 0..full.n_rows() {
                assert_eq!(projected.cell(i, 0).unwrap(), full.cell(i, 2).unwrap());
                assert_eq!(projected.cell(i, 1).unwrap(), full.cell(i, 0).unwrap());
            }
        }
        // Null tokens convert identically on the projected path.
        let all = read_csv_chunk_cols(&path, &options, &plan, &plan.chunks[1], &[1]).unwrap();
        assert_eq!(all.cell(all.n_rows() - 1, 0).unwrap(), &Cell::Null);
        // Guard rails: out-of-range and duplicate positions are rejected.
        assert!(read_csv_chunk_cols(&path, &options, &plan, &plan.chunks[0], &[9]).is_err());
        assert!(read_csv_chunk_cols(&path, &options, &plan, &plan.chunks[0], &[0, 0]).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn projected_chunk_read_still_reports_ragged_rows() {
        let ragged = "a,b\n1,x\n2\n";
        let path = temp_csv("ragged-projected.csv", ragged);
        let options = CsvOptions::default();
        let plan = plan_csv_chunks(&path, &options, 10).unwrap();
        let err = read_csv_chunk_cols(&path, &options, &plan, &plan.chunks[0], &[0]).unwrap_err();
        assert!(format!("{err}").contains("data row 1"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn chunk_column_stats_summarise_raw_bands() {
        let band = read_csv_str("a,b\n5,x\n12,na\n5,y\n", &CsvOptions::default()).unwrap();
        let stats = chunk_column_stats(&band);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].numeric, Some((5.0, 12.0)));
        assert_eq!(stats[0].numeric_count, 3);
        assert_eq!(stats[0].nulls, 0);
        assert_eq!(stats[0].distinct, 2);
        assert_eq!(stats[1].nulls, 1);
        assert_eq!(stats[1].numeric, None);
        assert_eq!(stats[1].lexical, Some(("x".to_string(), "y".to_string())));
    }

    #[test]
    fn chunked_mode_matches_serial_on_varied_documents() {
        let no_trailing_newline = "a,b\n1,x\n2,y";
        assert_serial_chunked_identical(no_trailing_newline, &CsvOptions::default());
        let blank_lines = "a,b\n\n1,x\n\n\n2,y\n\n";
        assert_serial_chunked_identical(blank_lines, &CsvOptions::default());
        let quoted_everything =
            "k,v\n\"a,b\",\"1\n2\"\n\"say \"\"hi\"\"\",\"x\r\ny\"\nplain,last\n";
        assert_serial_chunked_identical(quoted_everything, &CsvOptions::default());
    }

    #[test]
    fn chunked_schema_reconciliation_matches_serial_parse_all() {
        let typed = CsvOptions {
            infer_schema: true,
            ..CsvOptions::default()
        };
        // Bands disagree locally: rows 1–2 look Int, row 3 forces Float, row 4 forces
        // Σ* on the second column. The reconciled result must match the whole-column
        // serial induction at every granularity.
        let csv = "n,m\n1,10\n2,20\n2.5,30\nx,40\n";
        assert_serial_chunked_identical(csv, &typed);
        let serial = read_csv_str(csv, &typed).unwrap();
        assert_eq!(serial.schema(), vec![Some(Domain::Str), Some(Domain::Int)]);
        // A category column whose individual bands are too short to pass the
        // category thresholds on their own.
        let mut cat = String::from("kind,v\n");
        for i in 0..40 {
            cat.push_str(if i % 2 == 0 { "SUV,1\n" } else { "sedan,2\n" });
        }
        assert_serial_chunked_identical(&cat, &typed);
        let serial = read_csv_str(&cat, &typed).unwrap();
        assert_eq!(serial.schema()[0], Some(Domain::Category));
        // Untyped numeric-looking strings must survive the raw path untouched.
        let raw = read_csv_str("n\n007\n042\n", &CsvOptions::default()).unwrap();
        assert_eq!(raw.cell(0, 0).unwrap(), &cell("007"));
        assert_serial_chunked_identical("n\n007\n042\n", &CsvOptions::default());
    }

    #[test]
    fn reconciled_str_domains_invalidate_like_serial() {
        // `parse_in_place` leaves a Σ* column's domain merely *induced*; the chunked
        // re-cast must end in the same slot state, so a later content mutation
        // re-induces instead of staying pinned to Str forever.
        let content = "v\nx\n1\n";
        let typed = CsvOptions {
            infer_schema: true,
            ..CsvOptions::default()
        };
        let mut serial = read_csv_str(content, &typed).unwrap();
        let raw_band = read_csv_str(content, &CsvOptions::default()).unwrap();
        let summaries = vec![band_induction_summaries(&raw_band)];
        let domains = reconcile_domains(&summaries);
        assert_eq!(domains, vec![Domain::Str]);
        let mut recast = apply_domains(raw_band, &domains).unwrap();
        assert_eq!(recast.schema(), serial.schema());
        assert_eq!(recast.schema(), vec![Some(Domain::Str)]);
        for frame in [&mut serial, &mut recast] {
            frame.columns_mut()[0].cells_mut()[0] = cell(5);
        }
        assert_eq!(serial.schema(), vec![None], "serial slot must invalidate");
        assert_eq!(
            recast.schema(),
            vec![None],
            "recast slot must invalidate too"
        );
        // Parsed (non-Str) domains stay declared, exactly like parse_in_place.
        let typed_serial = read_csv_str("n\n1\n2\n", &typed).unwrap();
        let raw = read_csv_str("n\n1\n2\n", &CsvOptions::default()).unwrap();
        let domains = reconcile_domains(&[band_induction_summaries(&raw)]);
        let mut recast = apply_domains(raw, &domains).unwrap();
        recast.columns_mut()[0].cells_mut()[0] = cell("x");
        assert_eq!(recast.schema(), typed_serial.schema());
    }

    #[test]
    fn banded_writer_helpers_compose_to_write_csv_string() {
        let df = read_csv_str(SAMPLE, &CsvOptions::default()).unwrap();
        let options = CsvOptions::default();
        let mut out: Vec<u8> = Vec::new();
        write_csv_header(&mut out, df.col_labels(), &options).unwrap();
        // Stream the frame in two "bands".
        append_csv_records(&mut out, &df.head(1), &options).unwrap();
        append_csv_records(&mut out, &df.tail(1), &options).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            write_csv_string(&df, &options).unwrap()
        );
        // Fields containing a bare carriage return are quoted so they round-trip.
        let tricky = DataFrame::from_columns(vec!["x"], vec![vec![cell("a\rb")]]).unwrap();
        let written = write_csv_string(&tricky, &options).unwrap();
        let reread = read_csv_str(&written, &options).unwrap();
        assert!(reread.same_data(&tricky));
    }
}
