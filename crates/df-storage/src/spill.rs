//! The out-of-core partition store ("memory spillover").
//!
//! Paper §3.3, storage layer: "MODIN's modular storage layer supports both main memory
//! and persistent storage out-of-core …, allowing intermediate dataframes to exceed
//! main-memory limitations while not throwing memory errors, unlike pandas. To maintain
//! pandas semantics, the dataframe partitions are freed from persistent storage once a
//! session ends."
//!
//! [`SpillStore`] keeps partitions in memory up to a byte budget; when the budget is
//! exceeded the least-recently-used partitions are written to spill files in a
//! session-scoped temporary directory and transparently re-loaded on access. Dropping
//! the store removes its directory, matching the "freed once a session ends" semantics.
//!
//! Spill files use a private *lossless* encoding (a type tag per cell, per-column
//! domain slots, tagged labels): a spilled partition reads back cell-for-cell and
//! schema-slot-for-schema-slot identical, so engines may spill untyped (raw string)
//! columns without schema induction being forced on reload. The engine's spill
//! equivalence suite relies on this.

use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use df_types::cell::Cell;
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use df_core::dataframe::{Column, DataFrame};

/// Identifier of a partition held by a [`SpillStore`].
pub type PartitionId = u64;

/// Statistics describing the store's behaviour, used by tests, the engine's stats
/// surface and the storage ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Partitions currently resident in memory.
    pub in_memory: usize,
    /// Partitions currently only on disk.
    pub spilled: usize,
    /// Total spill-out events since the store was created.
    pub spill_outs: u64,
    /// Total load-back events since the store was created.
    pub load_backs: u64,
    /// Approximate bytes currently held in memory.
    pub memory_bytes: usize,
    /// High-water mark of resident bytes, sampled after every insertion *before* the
    /// budget is enforced. By construction it can exceed the budget by at most the
    /// partition being inserted, per concurrently inserting thread: with a single
    /// writer the bound is `budget + max_insert_bytes`; with `T` writers each can
    /// have one insertion in flight ahead of its enforcement sweep, so the bound is
    /// `budget + T * max_insert_bytes`.
    pub peak_memory_bytes: usize,
    /// The largest single partition ever inserted. Together with
    /// [`SpillStats::peak_memory_bytes`] this makes the out-of-core acceptance bound
    /// checkable: `peak_memory_bytes <= budget + writers * max_insert_bytes`.
    pub max_insert_bytes: usize,
}

struct Slot {
    /// The resident copy. Held through an `Arc` so a spill can serialise the frame
    /// without taking it out of the slot (concurrent `get`s keep working) and without
    /// holding the map lock across file IO.
    frame: Option<Arc<DataFrame>>,
    spill_path: Option<PathBuf>,
    approx_bytes: usize,
    last_touch: u64,
}

/// The lock-guarded state: the slot map plus a running total of resident bytes, so
/// budget checks and peak sampling are O(1) per operation instead of re-summing the
/// whole map under the lock on every insert.
#[derive(Default)]
struct Inner {
    slots: HashMap<PartitionId, Slot>,
    resident_bytes: usize,
}

/// An in-memory partition store with spill-to-disk overflow.
pub struct SpillStore {
    memory_budget_bytes: usize,
    directory: PathBuf,
    clock: AtomicU64,
    next_id: AtomicU64,
    inner: Mutex<Inner>,
    spill_seq: AtomicU64,
    spill_outs: AtomicU64,
    load_backs: AtomicU64,
    peak_bytes: AtomicUsize,
    max_insert_bytes: AtomicUsize,
}

impl SpillStore {
    /// Create a store with the given in-memory byte budget. Spill files live under a
    /// fresh subdirectory of the system temp dir.
    pub fn new(memory_budget_bytes: usize) -> DfResult<Self> {
        // A process-global counter keeps concurrently created stores from colliding
        // on a directory name (the clock alone is not unique enough — one store's
        // Drop would delete the other's spill files).
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let directory = std::env::temp_dir().join(format!(
            "rustframe-spill-{}-{}-{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&directory)?;
        Ok(SpillStore {
            memory_budget_bytes,
            directory,
            clock: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
            spill_seq: AtomicU64::new(0),
            spill_outs: AtomicU64::new(0),
            load_backs: AtomicU64::new(0),
            peak_bytes: AtomicUsize::new(0),
            max_insert_bytes: AtomicUsize::new(0),
        })
    }

    /// A store that effectively never spills (large budget) — used when out-of-core
    /// behaviour is not under test.
    pub fn unbounded() -> DfResult<Self> {
        SpillStore::new(usize::MAX / 2)
    }

    /// The in-memory byte budget this store enforces.
    pub fn memory_budget_bytes(&self) -> usize {
        self.memory_budget_bytes
    }

    /// Insert a partition, spilling older partitions if the memory budget is exceeded.
    pub fn put(&self, frame: DataFrame) -> DfResult<PartitionId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let approx_bytes = frame.approx_size_bytes();
        self.max_insert_bytes
            .fetch_max(approx_bytes, Ordering::Relaxed);
        let touch = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner = self.inner.lock();
            inner.slots.insert(
                id,
                Slot {
                    frame: Some(Arc::new(frame)),
                    spill_path: None,
                    approx_bytes,
                    last_touch: touch,
                },
            );
            inner.resident_bytes += approx_bytes;
            self.note_peak(&inner);
        }
        self.enforce_budget()?;
        Ok(id)
    }

    /// Fetch a partition, transparently loading it back from disk if it was spilled.
    pub fn get(&self, id: PartitionId) -> DfResult<DataFrame> {
        let touch = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let slot = inner
            .slots
            .get_mut(&id)
            .ok_or_else(|| DfError::internal(format!("unknown partition id {id}")))?;
        slot.last_touch = touch;
        if let Some(frame) = &slot.frame {
            return Ok(frame.as_ref().clone());
        }
        let path = slot
            .spill_path
            .clone()
            .ok_or_else(|| DfError::internal("partition has neither memory nor spill copy"))?;
        drop(inner);
        let frame = Arc::new(read_spill_file(&path)?);
        self.load_backs.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.slots.get_mut(&id) {
            let approx_bytes = frame.approx_size_bytes();
            let newly_resident = slot.frame.is_none();
            slot.frame = Some(Arc::clone(&frame));
            slot.approx_bytes = approx_bytes;
            if newly_resident {
                inner.resident_bytes += approx_bytes;
            }
            self.note_peak(&inner);
        }
        drop(inner);
        self.enforce_budget()?;
        Ok(Arc::try_unwrap(frame).unwrap_or_else(|shared| shared.as_ref().clone()))
    }

    /// Fetch a partition *and* remove it from the store: the consuming counterpart of
    /// [`SpillStore::get`] for callers that will not come back. A resident frame is
    /// moved out without a copy; a spilled one is read back and its file deleted.
    pub fn take(&self, id: PartitionId) -> DfResult<DataFrame> {
        let slot = {
            let mut inner = self.inner.lock();
            let slot = inner
                .slots
                .remove(&id)
                .ok_or_else(|| DfError::internal(format!("unknown partition id {id}")))?;
            if slot.frame.is_some() {
                inner.resident_bytes = inner.resident_bytes.saturating_sub(slot.approx_bytes);
            }
            slot
        };
        if let Some(frame) = slot.frame {
            if let Some(path) = slot.spill_path {
                std::fs::remove_file(path).ok();
            }
            return Ok(Arc::try_unwrap(frame).unwrap_or_else(|shared| shared.as_ref().clone()));
        }
        let path = slot
            .spill_path
            .ok_or_else(|| DfError::internal("partition has neither memory nor spill copy"))?;
        let frame = read_spill_file(&path)?;
        self.load_backs.fetch_add(1, Ordering::Relaxed);
        std::fs::remove_file(path).ok();
        Ok(frame)
    }

    /// Remove a partition entirely (memory and disk).
    pub fn remove(&self, id: PartitionId) -> DfResult<()> {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.slots.remove(&id) {
            if slot.frame.is_some() {
                inner.resident_bytes = inner.resident_bytes.saturating_sub(slot.approx_bytes);
            }
            if let Some(path) = slot.spill_path {
                std::fs::remove_file(path).ok();
            }
        }
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> SpillStats {
        let inner = self.inner.lock();
        let mut stats = SpillStats {
            spill_outs: self.spill_outs.load(Ordering::Relaxed),
            load_backs: self.load_backs.load(Ordering::Relaxed),
            peak_memory_bytes: self.peak_bytes.load(Ordering::Relaxed),
            max_insert_bytes: self.max_insert_bytes.load(Ordering::Relaxed),
            ..SpillStats::default()
        };
        for slot in inner.slots.values() {
            if slot.frame.is_some() {
                stats.in_memory += 1;
            } else {
                stats.spilled += 1;
            }
        }
        stats.memory_bytes = inner.resident_bytes;
        stats
    }

    /// Record the resident high-water mark. Called with the map lock held, right after
    /// an insertion and before the budget sweep, so the reported peak is the honest
    /// maximum the store ever held at once.
    fn note_peak(&self, inner: &Inner) {
        self.peak_bytes
            .fetch_max(inner.resident_bytes, Ordering::Relaxed);
    }

    /// Spill least-recently-used partitions until the memory budget is respected.
    fn enforce_budget(&self) -> DfResult<()> {
        loop {
            let victim = {
                let inner = self.inner.lock();
                if inner.resident_bytes <= self.memory_budget_bytes {
                    return Ok(());
                }
                // Pick the least recently used resident partition.
                inner
                    .slots
                    .iter()
                    .filter(|(_, s)| s.frame.is_some())
                    .min_by_key(|(_, s)| s.last_touch)
                    .map(|(&id, _)| id)
            };
            let Some(victim) = victim else {
                return Ok(());
            };
            self.spill_one(victim)?;
        }
    }

    /// Spill one partition. The frame stays visible in its slot (via the shared
    /// `Arc`) while the spill file is written without the lock, so concurrent `get`s
    /// never observe a partition that is neither in memory nor on disk; the resident
    /// copy is released only once the file safely exists — and only if the slot still
    /// holds the very frame that was serialised (a concurrent reload swaps the `Arc`,
    /// which the pointer comparison detects). A slot's spill file is written at most
    /// once: stored frames are immutable, so re-spilling a reloaded partition just
    /// releases the resident copy, and an existing spill file is never replaced or
    /// deleted while readers may hold its path — files die only with their slot (or
    /// the store).
    fn spill_one(&self, id: PartitionId) -> DfResult<()> {
        let (frame, already_on_disk) = {
            let inner = self.inner.lock();
            match inner.slots.get(&id) {
                Some(slot) => (slot.frame.clone(), slot.spill_path.is_some()),
                None => return Ok(()),
            }
        };
        let Some(frame) = frame else { return Ok(()) };
        if already_on_disk {
            // A reloaded partition: its spill file is still valid, so spilling is
            // just dropping the resident copy (guarded by the same Arc identity
            // check — a fresh reload means the slot is hot and keeps its frame).
            let mut inner = self.inner.lock();
            if let Some(slot) = inner.slots.get_mut(&id) {
                if slot.frame.as_ref().is_some_and(|f| Arc::ptr_eq(f, &frame)) {
                    let released = slot.approx_bytes;
                    slot.frame = None;
                    inner.resident_bytes = inner.resident_bytes.saturating_sub(released);
                    self.spill_outs.fetch_add(1, Ordering::Relaxed);
                }
            }
            return Ok(());
        }
        let seq = self.spill_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.directory.join(format!("part-{id}-{seq}.spill"));
        write_spill_file(&frame, &path)?;
        let mut inner = self.inner.lock();
        let installed = match inner.slots.get_mut(&id) {
            // Install only if the slot still holds the serialised frame AND no other
            // racer installed a file first — never displace a path a reader may be
            // holding.
            Some(slot)
                if slot.spill_path.is_none()
                    && slot.frame.as_ref().is_some_and(|f| Arc::ptr_eq(f, &frame)) =>
            {
                let released = slot.approx_bytes;
                slot.frame = None;
                slot.spill_path = Some(path.clone());
                inner.resident_bytes = inner.resident_bytes.saturating_sub(released);
                true
            }
            _ => false,
        };
        drop(inner);
        if installed {
            self.spill_outs.fetch_add(1, Ordering::Relaxed);
        } else {
            // The slot vanished, was reloaded, or another racer installed its file
            // while we were writing: this attempt's file is dead weight.
            std::fs::remove_file(path).ok();
        }
        Ok(())
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Partitions are freed from persistent storage once the session ends.
        std::fs::remove_dir_all(&self.directory).ok();
    }
}

// ---------------------------------------------------------------------------
// Spill file format (internal, lossless)
// ---------------------------------------------------------------------------
//
//   rustframe-spill-v2
//   <n_rows> <n_cols>
//   <tagged row labels, unit-separator-joined>
//   <tagged col labels, unit-separator-joined>
//   <per-column domain names ("?" for an un-induced slot), unit-separator-joined>
//   <one line per column: tagged cells, unit-separator-joined>
//
// Each cell is a one-letter type tag plus a payload (see `encode_cell`); embedded
// separators, backslashes and newlines are escaped, so arbitrary strings — including
// ones that look numeric — survive the round trip without re-running schema induction.

const MAGIC: &str = "rustframe-spill-v2";
/// Joins cells within a line.
const UNIT_SEP: char = '\u{1f}';
/// Joins the elements of a composite (list) cell payload.
const LIST_SEP: char = '\u{1e}';

fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            UNIT_SEP => out.push_str("\\u"),
            LIST_SEP => out.push_str("\\l"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(raw: &str) -> DfResult<String> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('u') => out.push(UNIT_SEP),
            Some('l') => out.push(LIST_SEP),
            other => {
                return Err(DfError::internal(format!(
                    "corrupt spill escape \\{other:?}"
                )))
            }
        }
    }
    Ok(out)
}

/// Encode one cell as a tag plus payload. The result may contain separator
/// characters; callers escape it before embedding it in a joined line.
fn encode_cell(cell: &Cell) -> String {
    match cell {
        Cell::Null => "n".to_string(),
        Cell::Str(s) => format!("s{s}"),
        Cell::Int(v) => format!("i{v}"),
        // `{}` on f64 prints the shortest string that parses back to the same bits
        // (and "NaN"/"inf"/"-inf" all round-trip through `str::parse`).
        Cell::Float(v) => format!("f{v}"),
        Cell::Bool(b) => format!("b{}", u8::from(*b)),
        Cell::List(items) => {
            let parts: Vec<String> = items
                .iter()
                .map(|item| escape(&encode_cell(item)))
                .collect();
            format!("l{}", parts.join(&LIST_SEP.to_string()))
        }
    }
}

fn decode_cell(raw: &str) -> DfResult<Cell> {
    let mut chars = raw.chars();
    let tag = chars
        .next()
        .ok_or_else(|| DfError::internal("empty spill cell"))?;
    let payload = chars.as_str();
    let bad = |what: &str| DfError::internal(format!("corrupt spill {what}: {payload:?}"));
    match tag {
        'n' => Ok(Cell::Null),
        's' => Ok(Cell::Str(payload.to_string())),
        'i' => payload
            .parse::<i64>()
            .map(Cell::Int)
            .map_err(|_| bad("int")),
        'f' => payload
            .parse::<f64>()
            .map(Cell::Float)
            .map_err(|_| bad("float")),
        'b' => match payload {
            "1" => Ok(Cell::Bool(true)),
            "0" => Ok(Cell::Bool(false)),
            _ => Err(bad("bool")),
        },
        'l' => {
            if payload.is_empty() {
                return Ok(Cell::List(Vec::new()));
            }
            let items: Vec<Cell> = payload
                .split(LIST_SEP)
                .map(|item| decode_cell(&unescape(item)?))
                .collect::<DfResult<_>>()?;
            Ok(Cell::List(items))
        }
        _ => Err(DfError::internal(format!("unknown spill cell tag {tag:?}"))),
    }
}

fn encode_line(cells: &[Cell]) -> String {
    let parts: Vec<String> = cells.iter().map(|c| escape(&encode_cell(c))).collect();
    parts.join(&UNIT_SEP.to_string())
}

fn decode_line(line: &str, expected: usize) -> DfResult<Vec<Cell>> {
    if expected == 0 {
        return Ok(Vec::new());
    }
    let cells: Vec<Cell> = line
        .split(UNIT_SEP)
        .map(|part| decode_cell(&unescape(part)?))
        .collect::<DfResult<_>>()?;
    if cells.len() != expected {
        return Err(DfError::internal(format!(
            "corrupt spill line: {} cells, expected {expected}",
            cells.len()
        )));
    }
    Ok(cells)
}

fn write_spill_file(frame: &DataFrame, path: &PathBuf) -> DfResult<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    writeln!(writer, "{MAGIC}")?;
    writeln!(writer, "{} {}", frame.n_rows(), frame.n_cols())?;
    writeln!(writer, "{}", encode_line(frame.row_labels().as_slice()))?;
    writeln!(writer, "{}", encode_line(frame.col_labels().as_slice()))?;
    let domains: Vec<&str> = frame
        .columns()
        .iter()
        .map(|c| c.known_domain().map(|d| d.name()).unwrap_or("?"))
        .collect();
    writeln!(writer, "{}", domains.join(&UNIT_SEP.to_string()))?;
    for column in frame.columns() {
        writeln!(writer, "{}", encode_line(column.cells()))?;
    }
    writer.flush()?;
    Ok(())
}

fn read_spill_file(path: &PathBuf) -> DfResult<DataFrame> {
    let mut content = String::new();
    std::fs::File::open(path)?.read_to_string(&mut content)?;
    let mut lines = content.split('\n');
    let mut next = |what: &str| {
        lines
            .next()
            .ok_or_else(|| DfError::internal(format!("truncated spill file: missing {what}")))
    };
    if next("magic")? != MAGIC {
        return Err(DfError::internal("corrupt spill file: bad magic"));
    }
    let shape_line = next("shape")?;
    let (rows_raw, cols_raw) = shape_line
        .split_once(' ')
        .ok_or_else(|| DfError::internal("corrupt spill file: bad shape line"))?;
    let n_rows: usize = rows_raw
        .parse()
        .map_err(|_| DfError::internal("corrupt spill file: bad row count"))?;
    let n_cols: usize = cols_raw
        .parse()
        .map_err(|_| DfError::internal("corrupt spill file: bad column count"))?;
    let row_labels = Labels::new(decode_line(next("row labels")?, n_rows)?);
    let col_labels = Labels::new(decode_line(next("col labels")?, n_cols)?);
    let domains_line = next("domains")?;
    let domains: Vec<Option<Domain>> = if n_cols == 0 {
        Vec::new()
    } else {
        domains_line
            .split(UNIT_SEP)
            .map(|name| {
                if name == "?" {
                    Ok(None)
                } else {
                    Domain::from_name(name)
                        .map(Some)
                        .ok_or_else(|| DfError::internal(format!("unknown spill domain {name:?}")))
                }
            })
            .collect::<DfResult<_>>()?
    };
    if domains.len() != n_cols {
        return Err(DfError::internal("corrupt spill file: domain count"));
    }
    let mut columns = Vec::with_capacity(n_cols);
    for domain in domains {
        let cells = decode_line(next("column")?, n_rows)?;
        columns.push(match domain {
            Some(domain) => Column::with_domain(cells, domain),
            None => Column::new(cells),
        });
    }
    DataFrame::from_parts(columns, row_labels, col_labels)
}

/// Convenience: build a dataframe column-by-column from typed cells (used by tests).
pub fn frame_of(columns: Vec<(&str, Vec<Cell>)>) -> DfResult<DataFrame> {
    let labels: Vec<Cell> = columns
        .iter()
        .map(|(l, _)| Cell::Str((*l).into()))
        .collect();
    let cols: Vec<Column> = columns.into_iter().map(|(_, c)| Column::new(c)).collect();
    let rows = cols.first().map(|c| c.len()).unwrap_or(0);
    DataFrame::from_parts(cols, Labels::positional(rows), Labels::new(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn frame(tag: i64, rows: usize) -> DataFrame {
        frame_of(vec![
            ("id", (0..rows).map(|i| cell(i as i64 + tag)).collect()),
            (
                "name",
                (0..rows).map(|i| cell(format!("row-{i}"))).collect(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn put_get_round_trip_in_memory() {
        let store = SpillStore::unbounded().unwrap();
        let df = frame(0, 10);
        let id = store.put(df.clone()).unwrap();
        let back = store.get(id).unwrap();
        assert_eq!(back.shape(), df.shape());
        assert_eq!(store.stats().in_memory, 1);
        assert_eq!(store.stats().spilled, 0);
        assert!(store.stats().peak_memory_bytes >= df.approx_size_bytes());
    }

    #[test]
    fn exceeding_the_budget_spills_lru_partitions() {
        // Budget fits roughly one partition, so inserting three forces spills.
        let one = frame(0, 50);
        let budget = one.approx_size_bytes() + one.approx_size_bytes() / 2;
        let store = SpillStore::new(budget).unwrap();
        assert_eq!(store.memory_budget_bytes(), budget);
        let a = store.put(frame(0, 50)).unwrap();
        let b = store.put(frame(100, 50)).unwrap();
        let c = store.put(frame(200, 50)).unwrap();
        let stats = store.stats();
        assert!(
            stats.spill_outs >= 1,
            "expected at least one spill: {stats:?}"
        );
        assert!(stats.spilled >= 1);
        // All partitions remain readable, including spilled ones.
        for (id, tag) in [(a, 0), (b, 100), (c, 200)] {
            let back = store.get(id).unwrap();
            assert_eq!(back.shape(), (50, 2));
            assert_eq!(back.cell(0, 0).unwrap(), &cell(tag));
        }
        let stats = store.stats();
        assert!(stats.load_backs >= 1);
        // The peak never exceeds the budget by more than the one frame being inserted.
        assert!(stats.peak_memory_bytes <= budget + one.approx_size_bytes());
    }

    #[test]
    fn spilled_partitions_preserve_row_labels_and_types() {
        let store = SpillStore::new(1).unwrap(); // everything spills immediately
        let df = frame(0, 5)
            .with_row_labels(vec!["a", "b", "c", "d", "e"])
            .unwrap();
        let id = store.put(df).unwrap();
        let back = store.get(id).unwrap();
        assert_eq!(back.row_labels().as_slice()[1], cell("b"));
        assert_eq!(back.cell(2, 0).unwrap(), &cell(2));
    }

    #[test]
    fn spill_round_trip_is_lossless() {
        // The cases CSV-style serialisation would corrupt: numeric-looking strings in
        // untyped columns, floats (incl. NaN/inf/-0.0), bools, composite cells, typed
        // schema slots, and float/null labels.
        let tricky = DataFrame::from_parts(
            vec![
                // Untyped column of numeric-looking strings: must come back as Str.
                Column::new(vec![cell("10"), cell("020"), Cell::Null]),
                Column::with_domain(
                    vec![
                        Cell::Float(f64::NAN),
                        Cell::Float(f64::NEG_INFINITY),
                        Cell::Float(-0.0),
                    ],
                    Domain::Float,
                ),
                Column::new(vec![
                    Cell::Bool(true),
                    Cell::List(vec![cell(1), Cell::List(vec![cell("a\nb"), Cell::Null])]),
                    Cell::Str(format!("sep{}and{}done\\", '\u{1f}', '\u{1e}')),
                ]),
            ],
            Labels::new(vec![Cell::Float(1.5), Cell::Null, Cell::Str("r".into())]),
            Labels::new(vec![cell("raw"), cell("f"), cell("mixed")]),
        )
        .unwrap();
        let store = SpillStore::new(1).unwrap(); // spill immediately
        let id = store.put(tricky.clone()).unwrap();
        let back = store.get(id).unwrap();
        assert_eq!(store.stats().load_backs, 1);
        assert_eq!(back.row_labels(), tricky.row_labels());
        assert_eq!(back.col_labels(), tricky.col_labels());
        assert_eq!(back.schema(), tricky.schema());
        assert_eq!(back.cell(0, 0).unwrap(), &cell("10"));
        assert!(matches!(back.cell(0, 1).unwrap(), Cell::Float(v) if v.is_nan()));
        assert_eq!(back.cell(1, 1).unwrap(), &Cell::Float(f64::NEG_INFINITY));
        assert!(
            matches!(back.cell(2, 1).unwrap(), Cell::Float(v) if v.to_bits() == (-0.0f64).to_bits())
        );
        assert_eq!(back.cell(1, 2).unwrap(), tricky.cell(1, 2).unwrap());
        assert_eq!(back.cell(2, 2).unwrap(), tricky.cell(2, 2).unwrap());
    }

    #[test]
    fn zero_row_and_zero_col_frames_round_trip() {
        let store = SpillStore::new(1).unwrap();
        let empty_rows = DataFrame::from_rows(vec!["a", "b"], vec![]).unwrap();
        let id = store.put(empty_rows.clone()).unwrap();
        assert!(store.get(id).unwrap().same_data(&empty_rows));
        let empty_cols =
            DataFrame::from_parts(vec![], Labels::positional(4), Labels::default()).unwrap();
        let id = store.put(empty_cols.clone()).unwrap();
        let back = store.get(id).unwrap();
        assert_eq!(back.shape(), empty_cols.shape());
        assert_eq!(back.row_labels(), empty_cols.row_labels());
    }

    #[test]
    fn take_consumes_resident_and_spilled_partitions() {
        let store = SpillStore::unbounded().unwrap();
        let df = frame(7, 6);
        let id = store.put(df.clone()).unwrap();
        let back = store.take(id).unwrap();
        assert!(back.same_data(&df));
        assert!(store.get(id).is_err());
        assert_eq!(store.stats().in_memory, 0);

        let tight = SpillStore::new(1).unwrap();
        let id = tight.put(df.clone()).unwrap();
        assert_eq!(tight.stats().spilled, 1);
        let back = tight.take(id).unwrap();
        assert!(back.same_data(&df));
        assert!(tight.take(id).is_err());
    }

    #[test]
    fn remove_and_unknown_ids() {
        let store = SpillStore::unbounded().unwrap();
        let id = store.put(frame(0, 3)).unwrap();
        store.remove(id).unwrap();
        assert!(store.get(id).is_err());
        assert!(store.get(9999).is_err());
        store.remove(12345).unwrap();
    }

    #[test]
    fn spill_directory_is_removed_on_drop() {
        let dir;
        {
            let store = SpillStore::new(1).unwrap();
            dir = store.directory.clone();
            store.put(frame(0, 5)).unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }
}
