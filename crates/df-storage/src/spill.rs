//! The out-of-core partition store ("memory spillover").
//!
//! Paper §3.3, storage layer: "MODIN's modular storage layer supports both main memory
//! and persistent storage out-of-core …, allowing intermediate dataframes to exceed
//! main-memory limitations while not throwing memory errors, unlike pandas. To maintain
//! pandas semantics, the dataframe partitions are freed from persistent storage once a
//! session ends."
//!
//! [`SpillStore`] keeps partitions in memory up to a byte budget; when the budget is
//! exceeded the least-recently-used partitions are written to spill files in a
//! session-scoped temporary directory and transparently re-loaded on access. Dropping
//! the store removes its directory, matching the "freed once a session ends" semantics.
//!
//! Spill files use a private *lossless* encoding: a spilled partition reads back
//! cell-for-cell and schema-slot-for-schema-slot identical, so engines may spill
//! untyped (raw string) columns without schema induction being forced on reload. The
//! engine's spill equivalence suite relies on this. Three formats coexist:
//!
//! * **v2** — one tagged-cell line per column (a type tag per cell, per-column domain
//!   slots, tagged labels). Written when the columnar switch is off; always readable.
//! * **v3** — typed column buffers: each column is one line carrying its layout tag,
//!   validity bitmap (hex words) and a flat value buffer (floats as `to_bits` hex, so
//!   NaN payloads and `-0.0` survive bit-exactly); columns no typed layout can
//!   represent fall back to a v2-style tagged-cell line. What a [`ColumnBlock`]
//!   checked in via [`SpillStore::put_block`] spills as without ever converting back
//!   to tagged cells.
//! * **v4** — the default on-disk frame since the fault-tolerance work: a
//!   `rustframe-spill-v4` magic line and a `<payload-bytes> <fnv1a64-hex>` integrity
//!   line wrapped around an unmodified v2 or v3 payload. Every load-back verifies
//!   the length and checksum before decoding, so a truncated or bit-flipped spill
//!   file surfaces as a typed [`DfError::SpillCorruption`] instead of a parse panic
//!   deep in the decoder. Bare v2/v3 files (pre-v4 sessions) still read back.
//!
//! The store's slots hold a [`StoredPart`] — a row-oriented [`DataFrame`] or a typed
//! [`ColumnBlock`] — and reads return whichever frame form the caller asked for; the
//! format on disk matches the slot's form, so a block never pays a decode just to be
//! spilled.
//!
//! All store I/O is failpoint-instrumented (`spill.write`, `spill.read` — see
//! `df_types::fail`) and transient read/write faults are retried under the store's
//! [`RetryPolicy`] before surfacing.

use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use df_types::cell::Cell;
use df_types::column::{columnar_enabled, ColumnData, Validity};
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};
use df_types::fail::{self, FailAction};
use df_types::labels::Labels;
use df_types::retry::RetryPolicy;

use df_core::columnar::ColumnBlock;
use df_core::dataframe::{Column, DataFrame};

/// Identifier of a partition held by a [`SpillStore`].
pub type PartitionId = u64;

/// Statistics describing the store's behaviour, used by tests, the engine's stats
/// surface and the storage ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Partitions currently resident in memory.
    pub in_memory: usize,
    /// Partitions currently only on disk.
    pub spilled: usize,
    /// Total spill-out events since the store was created.
    pub spill_outs: u64,
    /// Total load-back events since the store was created.
    pub load_backs: u64,
    /// Approximate bytes currently held in memory.
    pub memory_bytes: usize,
    /// High-water mark of resident bytes, sampled after every insertion *before* the
    /// budget is enforced. By construction it can exceed the budget by at most the
    /// partition being inserted, per concurrently inserting thread: with a single
    /// writer the bound is `budget + max_insert_bytes`; with `T` writers each can
    /// have one insertion in flight ahead of its enforcement sweep, so the bound is
    /// `budget + T * max_insert_bytes`.
    pub peak_memory_bytes: usize,
    /// The largest single partition ever inserted. Together with
    /// [`SpillStats::peak_memory_bytes`] this makes the out-of-core acceptance bound
    /// checkable: `peak_memory_bytes <= budget + writers * max_insert_bytes`.
    pub max_insert_bytes: usize,
    /// Transient-fault retries performed by the store's [`RetryPolicy`] (a retry that
    /// ultimately succeeds still counts — this is attempts beyond the first).
    pub retries: u64,
}

/// What one store slot physically holds: a row-oriented frame, or a typed column
/// block (what ingest checks in when the columnar layout is enabled). Either form
/// decodes to the identical [`DataFrame`] on read; the block form is both smaller in
/// memory (honest typed accounting) and spills as typed v3 buffers directly.
#[derive(Debug, Clone)]
pub enum StoredPart {
    /// A row-oriented tagged-cell frame.
    Frame(DataFrame),
    /// A typed column block.
    Block(ColumnBlock),
}

impl StoredPart {
    /// Honest in-memory footprint of this form.
    pub fn approx_size_bytes(&self) -> usize {
        match self {
            StoredPart::Frame(frame) => frame.approx_size_bytes(),
            StoredPart::Block(block) => block.approx_size_bytes(),
        }
    }

    /// Decode to a row-addressable frame (cloning a frame, decoding a block).
    pub fn to_frame(&self) -> DataFrame {
        match self {
            StoredPart::Frame(frame) => frame.clone(),
            StoredPart::Block(block) => block.to_frame(),
        }
    }

    /// Consuming form of [`StoredPart::to_frame`]: a frame moves out copy-free.
    pub fn into_frame(self) -> DataFrame {
        match self {
            StoredPart::Frame(frame) => frame,
            StoredPart::Block(block) => block.to_frame(),
        }
    }
}

struct Slot {
    /// The resident copy. Held through an `Arc` so a spill can serialise the part
    /// without taking it out of the slot (concurrent `get`s keep working) and without
    /// holding the map lock across file IO.
    part: Option<Arc<StoredPart>>,
    spill_path: Option<PathBuf>,
    approx_bytes: usize,
    last_touch: u64,
}

/// The lock-guarded state: the slot map plus a running total of resident bytes, so
/// budget checks and peak sampling are O(1) per operation instead of re-summing the
/// whole map under the lock on every insert.
#[derive(Default)]
struct Inner {
    slots: HashMap<PartitionId, Slot>,
    resident_bytes: usize,
}

/// An in-memory partition store with spill-to-disk overflow.
pub struct SpillStore {
    memory_budget_bytes: usize,
    directory: PathBuf,
    clock: AtomicU64,
    next_id: AtomicU64,
    inner: Mutex<Inner>,
    spill_seq: AtomicU64,
    spill_outs: AtomicU64,
    load_backs: AtomicU64,
    peak_bytes: AtomicUsize,
    max_insert_bytes: AtomicUsize,
    retry: RetryPolicy,
    retries: AtomicU64,
}

impl SpillStore {
    /// Create a store with the given in-memory byte budget. Spill files live under a
    /// fresh subdirectory of the system temp dir.
    pub fn new(memory_budget_bytes: usize) -> DfResult<Self> {
        // A process-global counter keeps concurrently created stores from colliding
        // on a directory name (the clock alone is not unique enough — one store's
        // Drop would delete the other's spill files).
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        // Once per process, sweep up spill directories orphaned by crashed prior
        // runs — their Drop never ran, so nobody else will.
        static ORPHAN_GC: std::sync::Once = std::sync::Once::new();
        ORPHAN_GC.call_once(|| {
            gc_orphaned_spill_dirs();
        });
        let directory = std::env::temp_dir().join(format!(
            "rustframe-spill-{}-{}-{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&directory).map_err(|err| {
            DfError::spill_io(
                "spill.dir",
                format!(
                    "cannot create spill directory {}: {err}",
                    directory.display()
                ),
                false,
            )
        })?;
        Ok(SpillStore {
            memory_budget_bytes,
            directory,
            clock: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
            spill_seq: AtomicU64::new(0),
            spill_outs: AtomicU64::new(0),
            load_backs: AtomicU64::new(0),
            peak_bytes: AtomicUsize::new(0),
            max_insert_bytes: AtomicUsize::new(0),
            retry: RetryPolicy::default(),
            retries: AtomicU64::new(0),
        })
    }

    /// Replace the transient-fault retry policy (builder style; tests inject a
    /// recording sleeper or `RetryPolicy::none()`).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// A store that effectively never spills (large budget) — used when out-of-core
    /// behaviour is not under test.
    pub fn unbounded() -> DfResult<Self> {
        SpillStore::new(usize::MAX / 2)
    }

    /// The in-memory byte budget this store enforces.
    pub fn memory_budget_bytes(&self) -> usize {
        self.memory_budget_bytes
    }

    /// The directory this store's spill files live under. Exposed so fault-injection
    /// tests can corrupt files on disk and assert the typed recovery behaviour.
    pub fn directory(&self) -> &Path {
        &self.directory
    }

    /// Insert a partition, spilling older partitions if the memory budget is exceeded.
    pub fn put(&self, frame: DataFrame) -> DfResult<PartitionId> {
        self.put_part(StoredPart::Frame(frame))
    }

    /// Insert an already-encoded typed column block. The block stays columnar in the
    /// slot (smaller resident footprint) and spills as typed v3 buffers; reads decode
    /// it to the identical frame on demand.
    pub fn put_block(&self, block: ColumnBlock) -> DfResult<PartitionId> {
        self.put_part(StoredPart::Block(block))
    }

    fn put_part(&self, part: StoredPart) -> DfResult<PartitionId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let approx_bytes = part.approx_size_bytes();
        self.max_insert_bytes
            .fetch_max(approx_bytes, Ordering::Relaxed);
        let touch = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner = self.inner.lock();
            inner.slots.insert(
                id,
                Slot {
                    part: Some(Arc::new(part)),
                    spill_path: None,
                    approx_bytes,
                    last_touch: touch,
                },
            );
            inner.resident_bytes += approx_bytes;
            self.note_peak(&inner);
        }
        self.enforce_budget()?;
        Ok(id)
    }

    /// Fetch a partition, transparently loading it back from disk if it was spilled.
    pub fn get(&self, id: PartitionId) -> DfResult<DataFrame> {
        let touch = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let slot = inner
            .slots
            .get_mut(&id)
            .ok_or_else(|| DfError::internal(format!("unknown partition id {id}")))?;
        slot.last_touch = touch;
        if let Some(part) = &slot.part {
            return Ok(part.to_frame());
        }
        let path = slot
            .spill_path
            .clone()
            .ok_or_else(|| DfError::internal("partition has neither memory nor spill copy"))?;
        drop(inner);
        let part = Arc::new(self.read_part_retrying(&path)?);
        self.load_backs.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.slots.get_mut(&id) {
            let approx_bytes = part.approx_size_bytes();
            let newly_resident = slot.part.is_none();
            slot.part = Some(Arc::clone(&part));
            slot.approx_bytes = approx_bytes;
            if newly_resident {
                inner.resident_bytes += approx_bytes;
            }
            self.note_peak(&inner);
        }
        drop(inner);
        self.enforce_budget()?;
        Ok(Arc::try_unwrap(part)
            .map(StoredPart::into_frame)
            .unwrap_or_else(|shared| shared.to_frame()))
    }

    /// Fetch a partition *and* remove it from the store: the consuming counterpart of
    /// [`SpillStore::get`] for callers that will not come back. A resident frame is
    /// moved out without a copy; a spilled one is read back and its file deleted.
    pub fn take(&self, id: PartitionId) -> DfResult<DataFrame> {
        let slot = {
            let mut inner = self.inner.lock();
            let slot = inner
                .slots
                .remove(&id)
                .ok_or_else(|| DfError::internal(format!("unknown partition id {id}")))?;
            if slot.part.is_some() {
                inner.resident_bytes = inner.resident_bytes.saturating_sub(slot.approx_bytes);
            }
            slot
        };
        if let Some(part) = slot.part {
            if let Some(path) = slot.spill_path {
                std::fs::remove_file(path).ok();
            }
            return Ok(Arc::try_unwrap(part)
                .map(StoredPart::into_frame)
                .unwrap_or_else(|shared| shared.to_frame()));
        }
        let path = slot
            .spill_path
            .ok_or_else(|| DfError::internal("partition has neither memory nor spill copy"))?;
        let part = self.read_part_retrying(&path)?;
        self.load_backs.fetch_add(1, Ordering::Relaxed);
        std::fs::remove_file(path).ok();
        Ok(part.into_frame())
    }

    /// Load a spill file back, retrying transient faults under the store's policy.
    /// Permanent I/O faults and checksum mismatches surface on the first attempt.
    fn read_part_retrying(&self, path: &Path) -> DfResult<StoredPart> {
        self.retry.run(|attempt| {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            read_spill_part(path)
        })
    }

    /// Remove a partition entirely (memory and disk).
    pub fn remove(&self, id: PartitionId) -> DfResult<()> {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.slots.remove(&id) {
            if slot.part.is_some() {
                inner.resident_bytes = inner.resident_bytes.saturating_sub(slot.approx_bytes);
            }
            if let Some(path) = slot.spill_path {
                std::fs::remove_file(path).ok();
            }
        }
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> SpillStats {
        let inner = self.inner.lock();
        let mut stats = SpillStats {
            spill_outs: self.spill_outs.load(Ordering::Relaxed),
            load_backs: self.load_backs.load(Ordering::Relaxed),
            peak_memory_bytes: self.peak_bytes.load(Ordering::Relaxed),
            max_insert_bytes: self.max_insert_bytes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            ..SpillStats::default()
        };
        for slot in inner.slots.values() {
            if slot.part.is_some() {
                stats.in_memory += 1;
            } else {
                stats.spilled += 1;
            }
        }
        stats.memory_bytes = inner.resident_bytes;
        stats
    }

    /// Record the resident high-water mark. Called with the map lock held, right after
    /// an insertion and before the budget sweep, so the reported peak is the honest
    /// maximum the store ever held at once.
    fn note_peak(&self, inner: &Inner) {
        self.peak_bytes
            .fetch_max(inner.resident_bytes, Ordering::Relaxed);
    }

    /// Spill least-recently-used partitions until the memory budget is respected.
    fn enforce_budget(&self) -> DfResult<()> {
        loop {
            let victim = {
                let inner = self.inner.lock();
                if inner.resident_bytes <= self.memory_budget_bytes {
                    return Ok(());
                }
                // Pick the least recently used resident partition.
                inner
                    .slots
                    .iter()
                    .filter(|(_, s)| s.part.is_some())
                    .min_by_key(|(_, s)| s.last_touch)
                    .map(|(&id, _)| id)
            };
            let Some(victim) = victim else {
                return Ok(());
            };
            self.spill_one(victim)?;
        }
    }

    /// Spill one partition. The frame stays visible in its slot (via the shared
    /// `Arc`) while the spill file is written without the lock, so concurrent `get`s
    /// never observe a partition that is neither in memory nor on disk; the resident
    /// copy is released only once the file safely exists — and only if the slot still
    /// holds the very frame that was serialised (a concurrent reload swaps the `Arc`,
    /// which the pointer comparison detects). A slot's spill file is written at most
    /// once: stored frames are immutable, so re-spilling a reloaded partition just
    /// releases the resident copy, and an existing spill file is never replaced or
    /// deleted while readers may hold its path — files die only with their slot (or
    /// the store).
    fn spill_one(&self, id: PartitionId) -> DfResult<()> {
        let (part, already_on_disk) = {
            let inner = self.inner.lock();
            match inner.slots.get(&id) {
                Some(slot) => (slot.part.clone(), slot.spill_path.is_some()),
                None => return Ok(()),
            }
        };
        let Some(part) = part else { return Ok(()) };
        if already_on_disk {
            // A reloaded partition: its spill file is still valid, so spilling is
            // just dropping the resident copy (guarded by the same Arc identity
            // check — a fresh reload means the slot is hot and keeps its part).
            let mut inner = self.inner.lock();
            if let Some(slot) = inner.slots.get_mut(&id) {
                if slot.part.as_ref().is_some_and(|p| Arc::ptr_eq(p, &part)) {
                    let released = slot.approx_bytes;
                    slot.part = None;
                    inner.resident_bytes = inner.resident_bytes.saturating_sub(released);
                    self.spill_outs.fetch_add(1, Ordering::Relaxed);
                }
            }
            return Ok(());
        }
        let seq = self.spill_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.directory.join(format!("part-{id}-{seq}.spill"));
        self.retry.run(|attempt| {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            write_spill_part(&part, &path)
        })?;
        let mut inner = self.inner.lock();
        let installed = match inner.slots.get_mut(&id) {
            // Install only if the slot still holds the serialised part AND no other
            // racer installed a file first — never displace a path a reader may be
            // holding.
            Some(slot)
                if slot.spill_path.is_none()
                    && slot.part.as_ref().is_some_and(|p| Arc::ptr_eq(p, &part)) =>
            {
                let released = slot.approx_bytes;
                slot.part = None;
                slot.spill_path = Some(path.clone());
                inner.resident_bytes = inner.resident_bytes.saturating_sub(released);
                true
            }
            _ => false,
        };
        drop(inner);
        if installed {
            self.spill_outs.fetch_add(1, Ordering::Relaxed);
        } else {
            // The slot vanished, was reloaded, or another racer installed its file
            // while we were writing: this attempt's file is dead weight.
            std::fs::remove_file(path).ok();
        }
        Ok(())
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Partitions are freed from persistent storage once the session ends. This is
        // deliberately lock-free and best-effort: it runs even when the store is
        // being torn down after a caught worker panic (parking_lot locks never
        // poison, and nothing here can panic short of an allocator failure), so a
        // crashed statement does not leak its spill files. Directories that never
        // get here — the whole process died — are reclaimed by the startup sweep in
        // [`gc_orphaned_spill_dirs`].
        std::fs::remove_dir_all(&self.directory).ok();
    }
}

/// Best-effort removal of `rustframe-spill-*` temp directories orphaned by crashed
/// prior runs. A directory is reclaimed only when its embedded pid provably no longer
/// exists (probed via `/proc/<pid>`); on systems without `/proc`, or for names that
/// do not parse, nothing is touched. Runs once per process from [`SpillStore::new`];
/// public so the lifecycle test can exercise it directly. Returns the number of
/// directories removed.
pub fn gc_orphaned_spill_dirs() -> usize {
    if !Path::new("/proc").is_dir() {
        return 0;
    }
    let Ok(entries) = std::fs::read_dir(std::env::temp_dir()) else {
        return 0;
    };
    let own_pid = std::process::id();
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("rustframe-spill-") else {
            continue;
        };
        let Some(pid) = rest.split('-').next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        if pid == own_pid || Path::new("/proc").join(pid.to_string()).exists() {
            continue;
        }
        if std::fs::remove_dir_all(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

// ---------------------------------------------------------------------------
// Spill file formats (internal, lossless)
// ---------------------------------------------------------------------------
//
// Both formats share a header:
//
//   rustframe-spill-v2 | rustframe-spill-v3
//   <n_rows> <n_cols>
//   <tagged row labels, unit-separator-joined>
//   <tagged col labels, unit-separator-joined>
//   <per-column domain names ("?" for an un-induced slot), unit-separator-joined>
//
// v2 follows with one line per column of tagged cells (a one-letter type tag plus a
// payload per cell, see `encode_cell`), unit-separator-joined. Embedded separators,
// backslashes and newlines are escaped, so arbitrary strings — including ones that
// look numeric — survive the round trip without re-running schema induction.
//
// v3 follows with one line per *typed* column: a layout tag field, a validity bitmap
// (the `Validity` words as hex, space-joined), and the flat value buffer —
//
//   C <US> <tagged cells as in v2>                         (fallback layout)
//   I <US> <validity> <US> <i64 values, space-joined>
//   F <US> <validity> <US> <f64::to_bits as hex, space-joined>   (bit-exact)
//   B <US> <validity> <US> <one '0'/'1' char per row>
//   S <US> <validity> <US> <one escaped string field per row>
//   D <US> <validity> <US> <u32 codes, space-joined> <US> <escaped dict entries>
//
// where <US> is the unit separator. Null slots hold the layout's default value and
// are masked by the validity bitmap, exactly mirroring `ColumnData`'s in-memory
// layout — so a spilled block re-loads without re-probing any column.
//
// v4 is not a new payload encoding but an integrity frame around either payload:
//
//   rustframe-spill-v4
//   <payload byte length> <FNV-1a 64-bit checksum of the payload, hex>
//   <the complete v2 or v3 file content, unmodified>
//
// Load-back verifies length then checksum before handing the payload to the v2/v3
// decoder, so truncation and bit-flips become typed `SpillCorruption` errors at the
// frame boundary. The store writes v4 exclusively; bare v2/v3 files still read.

const MAGIC: &str = "rustframe-spill-v2";
const MAGIC_V3: &str = "rustframe-spill-v3";
const MAGIC_V4: &str = "rustframe-spill-v4";

/// FNV-1a-style 64-bit checksum over the raw payload bytes, folded a machine word
/// at a time: each 8-byte little-endian chunk (and the zero-padded tail, with its
/// length mixed in so padding cannot collide) is XORed into the state and
/// multiplied by the FNV prime. Word folding keeps the serial multiply chain 8x
/// shorter than byte-wise FNV-1a — the integrity check must not dominate the
/// spill path it protects. Tiny, dependency-free, and plenty to catch the
/// truncation/bit-rot class of faults (this is not an adversarial MAC).
fn fnv1a64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        hash = (hash ^ u64::from_le_bytes(word)).wrapping_mul(PRIME);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        hash = (hash ^ u64::from_le_bytes(word)).wrapping_mul(PRIME);
        hash ^= tail.len() as u64;
    }
    hash
}

/// Classify an OS error for the retry policy: interrupted/timed-out reads are worth
/// re-attempting, everything else (ENOSPC, ENOENT, EACCES, …) is permanent.
fn io_transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

/// Flip one character of a rendered payload while keeping it valid UTF-8 — the
/// `corrupt` failpoint's bit-rot model. The checksum is computed over the original
/// bytes, so the mangled payload is guaranteed to fail verification on load-back.
/// Public so the process backend's chaos arm can reuse the same bit-rot model on
/// wire frames.
pub fn mangle_payload(payload: &mut String) {
    let mut idx = payload.len() / 2;
    while idx > 0 && !payload.is_char_boundary(idx) {
        idx -= 1;
    }
    let replacement = if payload[idx..].starts_with('#') {
        "%"
    } else {
        "#"
    };
    let end = payload[idx..]
        .chars()
        .next()
        .map_or(idx, |c| idx + c.len_utf8());
    payload.replace_range(idx..end, replacement);
}
/// Joins cells within a line.
const UNIT_SEP: char = '\u{1f}';
/// Joins the elements of a composite (list) cell payload.
const LIST_SEP: char = '\u{1e}';

fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            UNIT_SEP => out.push_str("\\u"),
            LIST_SEP => out.push_str("\\l"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(raw: &str) -> DfResult<String> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('u') => out.push(UNIT_SEP),
            Some('l') => out.push(LIST_SEP),
            other => {
                return Err(DfError::internal(format!(
                    "corrupt spill escape \\{other:?}"
                )))
            }
        }
    }
    Ok(out)
}

/// Encode one cell as a tag plus payload. The result may contain separator
/// characters; callers escape it before embedding it in a joined line.
fn encode_cell(cell: &Cell) -> String {
    match cell {
        Cell::Null => "n".to_string(),
        Cell::Str(s) => format!("s{s}"),
        Cell::Int(v) => format!("i{v}"),
        // `{}` on f64 prints the shortest string that parses back to the same bits
        // (and "NaN"/"inf"/"-inf" all round-trip through `str::parse`).
        Cell::Float(v) => format!("f{v}"),
        Cell::Bool(b) => format!("b{}", u8::from(*b)),
        Cell::List(items) => {
            let parts: Vec<String> = items
                .iter()
                .map(|item| escape(&encode_cell(item)))
                .collect();
            format!("l{}", parts.join(&LIST_SEP.to_string()))
        }
    }
}

fn decode_cell(raw: &str) -> DfResult<Cell> {
    let mut chars = raw.chars();
    let tag = chars
        .next()
        .ok_or_else(|| DfError::internal("empty spill cell"))?;
    let payload = chars.as_str();
    let bad = |what: &str| DfError::internal(format!("corrupt spill {what}: {payload:?}"));
    match tag {
        'n' => Ok(Cell::Null),
        's' => Ok(Cell::Str(payload.to_string())),
        'i' => payload
            .parse::<i64>()
            .map(Cell::Int)
            .map_err(|_| bad("int")),
        'f' => payload
            .parse::<f64>()
            .map(Cell::Float)
            .map_err(|_| bad("float")),
        'b' => match payload {
            "1" => Ok(Cell::Bool(true)),
            "0" => Ok(Cell::Bool(false)),
            _ => Err(bad("bool")),
        },
        'l' => {
            if payload.is_empty() {
                return Ok(Cell::List(Vec::new()));
            }
            let items: Vec<Cell> = payload
                .split(LIST_SEP)
                .map(|item| decode_cell(&unescape(item)?))
                .collect::<DfResult<_>>()?;
            Ok(Cell::List(items))
        }
        _ => Err(DfError::internal(format!("unknown spill cell tag {tag:?}"))),
    }
}

fn encode_line(cells: &[Cell]) -> String {
    let parts: Vec<String> = cells.iter().map(|c| escape(&encode_cell(c))).collect();
    parts.join(&UNIT_SEP.to_string())
}

fn decode_line(line: &str, expected: usize) -> DfResult<Vec<Cell>> {
    if expected == 0 {
        return Ok(Vec::new());
    }
    let cells: Vec<Cell> = line
        .split(UNIT_SEP)
        .map(|part| decode_cell(&unescape(part)?))
        .collect::<DfResult<_>>()?;
    if cells.len() != expected {
        return Err(DfError::internal(format!(
            "corrupt spill line: {} cells, expected {expected}",
            cells.len()
        )));
    }
    Ok(cells)
}

/// Encode a slice of cells as one escaped, separator-joined line — the spill
/// format's row encoding. Public (with [`decode_cells`]) so the process backend's
/// band-task codec can ship literal cells (keys, fill values, rename pairs) in the
/// exact same dialect as the frames themselves.
pub fn encode_cells(cells: &[Cell]) -> String {
    encode_line(cells)
}

/// Decode a line produced by [`encode_cells`] back into cells. `expected` is the
/// cell count the caller knows from framing; a mismatch or a malformed cell is an
/// [`DfError::Internal`] shape error, which wire-level callers fold into their own
/// corruption taxonomy.
pub fn decode_cells(line: &str, expected: usize) -> DfResult<Vec<Cell>> {
    decode_line(line, expected)
}

/// Render one stored part as a v2/v3 payload string: blocks always render v3; frames
/// render v3 when the columnar switch is on (typed-probing each column at spill
/// time), v2 otherwise — so disabling the switch restores the pre-columnar payload
/// byte for byte.
fn render_spill_payload(part: &StoredPart) -> String {
    match part {
        StoredPart::Block(block) => render_spill_block_v3(block),
        StoredPart::Frame(frame) if columnar_enabled() => {
            render_spill_block_v3(&ColumnBlock::from_frame(frame))
        }
        StoredPart::Frame(frame) => render_spill_frame_v2(frame),
    }
}

/// Write one stored part to `path` in the checksummed v4 frame. This is the only
/// writer the store itself uses; public so the checksum-overhead bench arm can
/// measure the framed codec against the raw v3 one. The `spill.write` failpoint
/// fires here: I/O kinds become typed [`DfError::SpillIo`] before any byte is
/// written, and the `corrupt` kind mangles the payload *after* the checksum is
/// taken, modelling bit-rot between write and read.
pub fn write_spill_part(part: &StoredPart, path: &Path) -> DfResult<()> {
    let mut payload = render_spill_payload(part);
    let checksum = fnv1a64(payload.as_bytes());
    match fail::failpoint("spill.write") {
        Some(FailAction::Corrupt) => mangle_payload(&mut payload),
        Some(action) => return Err(action.into_error("spill.write")),
        None => {}
    }
    let write = || -> std::io::Result<()> {
        let mut writer = BufWriter::new(std::fs::File::create(path)?);
        writeln!(writer, "{MAGIC_V4}")?;
        writeln!(writer, "{} {checksum:x}", payload.len())?;
        writer.write_all(payload.as_bytes())?;
        writer.flush()
    };
    write()
        .map_err(|err| DfError::spill_io("spill.write", err.to_string(), io_transient(err.kind())))
}

/// Read a spill file in whichever format it was written: v4 frames are length- and
/// checksum-verified and their payload dispatched on its inner magic; bare v2 files
/// decode to a row-oriented frame and bare v3 files to a typed column block.
/// Exposed (with the writers) so format-compatibility tests can pin that old files
/// stay readable. The `spill.read` failpoint fires here: `missing` deletes the file
/// before the open, `corrupt` mangles the bytes just read so the real checksum path
/// reports the fault, and the I/O kinds surface as typed [`DfError::SpillIo`].
/// A file that is genuinely gone (NotFound) classifies as [`DfError::SpillCorruption`]
/// — lost state is recomputable from lineage, unlike a sick device.
pub fn read_spill_part(path: &Path) -> DfResult<StoredPart> {
    let injected = fail::failpoint("spill.read");
    match injected {
        Some(FailAction::Missing) => {
            std::fs::remove_file(path).ok();
        }
        Some(FailAction::Corrupt) => {}
        Some(action) => return Err(action.into_error("spill.read")),
        None => {}
    }
    let mut content = String::new();
    let read = std::fs::File::open(path).and_then(|mut f| f.read_to_string(&mut content));
    if let Err(err) = read {
        // A vanished spill file is lost *state*, not a sick device: classify it
        // with corruption so the recovery layer recomputes the block from lineage
        // instead of surfacing a permanent I/O error.
        if err.kind() == std::io::ErrorKind::NotFound {
            return Err(DfError::spill_corruption(
                "spill.read",
                format!("spill file missing: {}", path.display()),
            ));
        }
        return Err(DfError::spill_io(
            "spill.read",
            format!("{}: {err}", path.display()),
            io_transient(err.kind()),
        ));
    }
    if injected == Some(FailAction::Corrupt) {
        mangle_payload(&mut content);
    }
    decode_spill_content(&content, "spill.read")
}

/// Decode the full content of a spill frame in whichever format it carries: a v4
/// frame is length- and checksum-verified and its payload dispatched on its inner
/// magic; bare v2/v3 payloads decode directly. `site` labels any corruption error
/// (`"spill.read"` for the store, `"backend.exchange"` for the process backend's
/// wire protocol, which reuses this codec verbatim as its band-exchange payload).
pub fn decode_spill_content(content: &str, site: &str) -> DfResult<StoredPart> {
    let corrupt = |err: DfError| match err {
        // Shape/parse failures inside the decoders mean the bytes lied; fold them
        // into the corruption taxonomy with the decoder's message as the detail.
        DfError::Internal(detail) => DfError::spill_corruption(site, detail),
        other => other,
    };
    match content.split('\n').next().unwrap_or("") {
        MAGIC_V4 => {
            let payload = verify_v4(content, site)?;
            match payload.split('\n').next().unwrap_or("") {
                MAGIC => Ok(StoredPart::Frame(read_spill_v2(payload).map_err(corrupt)?)),
                MAGIC_V3 => Ok(StoredPart::Block(read_spill_v3(payload).map_err(corrupt)?)),
                _ => Err(DfError::spill_corruption(
                    site,
                    "v4 payload has no v2/v3 magic",
                )),
            }
        }
        MAGIC => Ok(StoredPart::Frame(read_spill_v2(content).map_err(corrupt)?)),
        MAGIC_V3 => Ok(StoredPart::Block(read_spill_v3(content).map_err(corrupt)?)),
        _ => Err(DfError::spill_corruption(
            site,
            "bad magic (not a spill file, or truncated before the header)",
        )),
    }
}

/// Render one stored part as a complete checksummed v4 frame (magic line, integrity
/// line, payload) — exactly the bytes [`write_spill_part`] puts on disk, minus the
/// failpoint hook. The process backend uses this as its wire encoding so band
/// exchange inherits the spill format's corruption detection verbatim.
pub fn render_spill_part_v4(part: &StoredPart) -> String {
    let payload = render_spill_payload(part);
    let checksum = fnv1a64(payload.as_bytes());
    format!("{MAGIC_V4}\n{} {checksum:x}\n{payload}", payload.len())
}

/// Check a v4 frame's length and checksum lines and return the verified payload.
/// `site` labels the corruption errors (see [`decode_spill_content`]).
fn verify_v4<'a>(content: &'a str, site: &str) -> DfResult<&'a str> {
    let corrupt = |detail: &str| DfError::spill_corruption(site, detail);
    let after_magic = content
        .strip_prefix(MAGIC_V4)
        .and_then(|rest| rest.strip_prefix('\n'))
        .ok_or_else(|| corrupt("v4 frame truncated at magic"))?;
    let (integrity_line, payload) = after_magic
        .split_once('\n')
        .ok_or_else(|| corrupt("v4 frame missing integrity line"))?;
    let (len_raw, sum_raw) = integrity_line
        .split_once(' ')
        .ok_or_else(|| corrupt("v4 integrity line malformed"))?;
    let expected_len: usize = len_raw
        .parse()
        .map_err(|_| corrupt("v4 payload length unparseable"))?;
    let expected_sum =
        u64::from_str_radix(sum_raw, 16).map_err(|_| corrupt("v4 checksum unparseable"))?;
    if payload.len() != expected_len {
        return Err(DfError::spill_corruption(
            site,
            format!(
                "payload length mismatch: header says {expected_len} bytes, file has {}",
                payload.len()
            ),
        ));
    }
    let actual_sum = fnv1a64(payload.as_bytes());
    if actual_sum != expected_sum {
        return Err(DfError::spill_corruption(
            site,
            format!("checksum mismatch: header {expected_sum:x}, payload {actual_sum:x}"),
        ));
    }
    Ok(payload)
}

/// Render one frame in the legacy v2 tagged-cell format.
fn render_spill_frame_v2(frame: &DataFrame) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("{} {}\n", frame.n_rows(), frame.n_cols()));
    out.push_str(&encode_line(frame.row_labels().as_slice()));
    out.push('\n');
    out.push_str(&encode_line(frame.col_labels().as_slice()));
    out.push('\n');
    let domains: Vec<&str> = frame
        .columns()
        .iter()
        .map(|c| c.known_domain().map(|d| d.name()).unwrap_or("?"))
        .collect();
    out.push_str(&domains.join(&UNIT_SEP.to_string()));
    out.push('\n');
    for column in frame.columns() {
        out.push_str(&encode_line(column.cells()));
        out.push('\n');
    }
    out
}

/// Render one typed column block in the v3 format (typed buffers, bit-exact floats).
fn render_spill_block_v3(block: &ColumnBlock) -> String {
    let mut out = String::new();
    out.push_str(MAGIC_V3);
    out.push('\n');
    out.push_str(&format!("{} {}\n", block.n_rows(), block.n_cols()));
    out.push_str(&encode_line(block.row_labels().as_slice()));
    out.push('\n');
    out.push_str(&encode_line(block.col_labels().as_slice()));
    out.push('\n');
    let domains: Vec<&str> = block
        .domains()
        .iter()
        .map(|d| d.as_ref().map(|d| d.name()).unwrap_or("?"))
        .collect();
    out.push_str(&domains.join(&UNIT_SEP.to_string()));
    out.push('\n');
    for column in block.columns() {
        out.push_str(&encode_v3_column(column));
        out.push('\n');
    }
    out
}

fn write_raw(path: &Path, payload: &str) -> DfResult<()> {
    let write = || -> std::io::Result<()> {
        let mut writer = BufWriter::new(std::fs::File::create(path)?);
        writer.write_all(payload.as_bytes())?;
        writer.flush()
    };
    write()
        .map_err(|err| DfError::spill_io("spill.write", err.to_string(), io_transient(err.kind())))
}

/// Write one frame as a bare (un-framed) v2 file. Production code spills through
/// [`write_spill_part`]'s v4 frame; kept public so compatibility tests can produce
/// pre-v4 files and assert they still read back.
pub fn write_spill_frame_v2(frame: &DataFrame, path: &Path) -> DfResult<()> {
    write_raw(path, &render_spill_frame_v2(frame))
}

/// Write one typed column block as a bare (un-framed) v3 file; see
/// [`write_spill_frame_v2`] for why this stays public.
pub fn write_spill_block_v3(block: &ColumnBlock, path: &Path) -> DfResult<()> {
    write_raw(path, &render_spill_block_v3(block))
}

/// The header both formats share: shape, labels and per-column domain slots.
struct SpillHeader {
    n_rows: usize,
    n_cols: usize,
    row_labels: Labels,
    col_labels: Labels,
    domains: Vec<Option<Domain>>,
}

fn parse_spill_header<'a>(
    next: &mut impl FnMut(&'static str) -> DfResult<&'a str>,
) -> DfResult<SpillHeader> {
    let shape_line = next("shape")?;
    let (rows_raw, cols_raw) = shape_line
        .split_once(' ')
        .ok_or_else(|| DfError::internal("corrupt spill file: bad shape line"))?;
    let n_rows: usize = rows_raw
        .parse()
        .map_err(|_| DfError::internal("corrupt spill file: bad row count"))?;
    let n_cols: usize = cols_raw
        .parse()
        .map_err(|_| DfError::internal("corrupt spill file: bad column count"))?;
    let row_labels = Labels::new(decode_line(next("row labels")?, n_rows)?);
    let col_labels = Labels::new(decode_line(next("col labels")?, n_cols)?);
    let domains_line = next("domains")?;
    let domains: Vec<Option<Domain>> = if n_cols == 0 {
        Vec::new()
    } else {
        domains_line
            .split(UNIT_SEP)
            .map(|name| {
                if name == "?" {
                    Ok(None)
                } else {
                    Domain::from_name(name)
                        .map(Some)
                        .ok_or_else(|| DfError::internal(format!("unknown spill domain {name:?}")))
                }
            })
            .collect::<DfResult<_>>()?
    };
    if domains.len() != n_cols {
        return Err(DfError::internal("corrupt spill file: domain count"));
    }
    Ok(SpillHeader {
        n_rows,
        n_cols,
        row_labels,
        col_labels,
        domains,
    })
}

fn read_spill_v2(content: &str) -> DfResult<DataFrame> {
    let mut lines = content.split('\n');
    let mut next = move |what: &'static str| {
        lines
            .next()
            .ok_or_else(|| DfError::internal(format!("truncated spill file: missing {what}")))
    };
    if next("magic")? != MAGIC {
        return Err(DfError::internal("corrupt spill file: bad magic"));
    }
    let header = parse_spill_header(&mut next)?;
    let mut columns = Vec::with_capacity(header.n_cols);
    for domain in header.domains {
        let cells = decode_line(next("column")?, header.n_rows)?;
        columns.push(match domain {
            Some(domain) => Column::with_domain(cells, domain),
            None => Column::new(cells),
        });
    }
    DataFrame::from_parts(columns, header.row_labels, header.col_labels)
}

fn read_spill_v3(content: &str) -> DfResult<ColumnBlock> {
    let mut lines = content.split('\n');
    let mut next = move |what: &'static str| {
        lines
            .next()
            .ok_or_else(|| DfError::internal(format!("truncated spill file: missing {what}")))
    };
    if next("magic")? != MAGIC_V3 {
        return Err(DfError::internal("corrupt spill file: bad magic"));
    }
    let header = parse_spill_header(&mut next)?;
    let mut columns = Vec::with_capacity(header.n_cols);
    for _ in 0..header.n_cols {
        columns.push(decode_v3_column(next("column")?, header.n_rows)?);
    }
    ColumnBlock::from_parts(
        columns,
        header.domains,
        header.row_labels,
        header.col_labels,
    )
}

fn encode_validity(validity: &Validity) -> String {
    let words: Vec<String> = validity.words().iter().map(|w| format!("{w:x}")).collect();
    words.join(" ")
}

fn decode_validity(raw: &str, len: usize) -> DfResult<Validity> {
    let words: Vec<u64> = raw
        .split_whitespace()
        .map(|w| {
            u64::from_str_radix(w, 16)
                .map_err(|_| DfError::internal(format!("corrupt spill validity word {w:?}")))
        })
        .collect::<DfResult<_>>()?;
    if words.len() != len.div_ceil(64) {
        return Err(DfError::internal("corrupt spill file: validity length"));
    }
    Ok(Validity::from_words(words, len))
}

fn encode_v3_column(data: &ColumnData) -> String {
    let u = UNIT_SEP.to_string();
    match data {
        ColumnData::Cells(cells) => format!("C{u}{}", encode_line(cells)),
        ColumnData::Int { values, validity } => {
            let vals: Vec<String> = values.iter().map(i64::to_string).collect();
            format!("I{u}{}{u}{}", encode_validity(validity), vals.join(" "))
        }
        ColumnData::Float { values, validity } => {
            let vals: Vec<String> = values
                .iter()
                .map(|v| format!("{:x}", v.to_bits()))
                .collect();
            format!("F{u}{}{u}{}", encode_validity(validity), vals.join(" "))
        }
        ColumnData::Bool { values, validity } => {
            let vals: String = values.iter().map(|b| if *b { '1' } else { '0' }).collect();
            format!("B{u}{}{u}{vals}", encode_validity(validity))
        }
        ColumnData::Str { values, validity } => {
            let mut fields = vec!["S".to_string(), encode_validity(validity)];
            fields.extend(values.iter().map(|s| escape(s)));
            fields.join(&u)
        }
        ColumnData::Dict {
            codes,
            dict,
            validity,
        } => {
            let code_field: Vec<String> = codes.iter().map(u32::to_string).collect();
            let mut fields = vec![
                "D".to_string(),
                encode_validity(validity),
                code_field.join(" "),
            ];
            fields.extend(dict.iter().map(|s| escape(s)));
            fields.join(&u)
        }
    }
}

fn decode_v3_column(line: &str, n_rows: usize) -> DfResult<ColumnData> {
    let bad = |what: &str| DfError::internal(format!("corrupt spill v3 column: {what}"));
    let fields: Vec<&str> = line.split(UNIT_SEP).collect();
    match fields.first().copied() {
        Some("C") => {
            // Everything after the two-byte "C<US>" prefix is a v2 tagged-cell line.
            let rest = line.get(2..).ok_or_else(|| bad("cells"))?;
            Ok(ColumnData::Cells(decode_line(rest, n_rows)?))
        }
        Some("I") if fields.len() == 3 => {
            let validity = decode_validity(fields[1], n_rows)?;
            let values: Vec<i64> = fields[2]
                .split_whitespace()
                .map(|v| v.parse::<i64>().map_err(|_| bad("int value")))
                .collect::<DfResult<_>>()?;
            if values.len() != n_rows {
                return Err(bad("int value count"));
            }
            Ok(ColumnData::Int { values, validity })
        }
        Some("F") if fields.len() == 3 => {
            let validity = decode_validity(fields[1], n_rows)?;
            let values: Vec<f64> = fields[2]
                .split_whitespace()
                .map(|v| {
                    u64::from_str_radix(v, 16)
                        .map(f64::from_bits)
                        .map_err(|_| bad("float bits"))
                })
                .collect::<DfResult<_>>()?;
            if values.len() != n_rows {
                return Err(bad("float value count"));
            }
            Ok(ColumnData::Float { values, validity })
        }
        Some("B") if fields.len() == 3 => {
            let validity = decode_validity(fields[1], n_rows)?;
            let values: Vec<bool> = fields[2]
                .chars()
                .map(|c| match c {
                    '1' => Ok(true),
                    '0' => Ok(false),
                    _ => Err(bad("bool char")),
                })
                .collect::<DfResult<_>>()?;
            if values.len() != n_rows {
                return Err(bad("bool value count"));
            }
            Ok(ColumnData::Bool { values, validity })
        }
        Some("S") if fields.len() == 2 + n_rows => {
            let validity = decode_validity(fields[1], n_rows)?;
            let values: Vec<String> = fields[2..]
                .iter()
                .map(|s| unescape(s))
                .collect::<DfResult<_>>()?;
            Ok(ColumnData::Str { values, validity })
        }
        Some("D") if fields.len() >= 3 => {
            let validity = decode_validity(fields[1], n_rows)?;
            let codes: Vec<u32> = fields[2]
                .split_whitespace()
                .map(|v| v.parse::<u32>().map_err(|_| bad("dict code")))
                .collect::<DfResult<_>>()?;
            if codes.len() != n_rows {
                return Err(bad("dict code count"));
            }
            let dict: Vec<String> = fields[3..]
                .iter()
                .map(|s| unescape(s))
                .collect::<DfResult<_>>()?;
            if codes
                .iter()
                .enumerate()
                .any(|(i, &c)| validity.get(i) && c as usize >= dict.len())
            {
                return Err(bad("dict code out of range"));
            }
            Ok(ColumnData::Dict {
                codes,
                dict,
                validity,
            })
        }
        _ => Err(bad("unknown layout tag")),
    }
}

/// Convenience: build a dataframe column-by-column from typed cells (used by tests).
pub fn frame_of(columns: Vec<(&str, Vec<Cell>)>) -> DfResult<DataFrame> {
    let labels: Vec<Cell> = columns
        .iter()
        .map(|(l, _)| Cell::Str((*l).into()))
        .collect();
    let cols: Vec<Column> = columns.into_iter().map(|(_, c)| Column::new(c)).collect();
    let rows = cols.first().map(|c| c.len()).unwrap_or(0);
    DataFrame::from_parts(cols, Labels::positional(rows), Labels::new(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn frame(tag: i64, rows: usize) -> DataFrame {
        frame_of(vec![
            ("id", (0..rows).map(|i| cell(i as i64 + tag)).collect()),
            (
                "name",
                (0..rows).map(|i| cell(format!("row-{i}"))).collect(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn put_get_round_trip_in_memory() {
        let store = SpillStore::unbounded().unwrap();
        let df = frame(0, 10);
        let id = store.put(df.clone()).unwrap();
        let back = store.get(id).unwrap();
        assert_eq!(back.shape(), df.shape());
        assert_eq!(store.stats().in_memory, 1);
        assert_eq!(store.stats().spilled, 0);
        assert!(store.stats().peak_memory_bytes >= df.approx_size_bytes());
    }

    #[test]
    fn exceeding_the_budget_spills_lru_partitions() {
        // Budget fits roughly one partition, so inserting three forces spills.
        let one = frame(0, 50);
        let budget = one.approx_size_bytes() + one.approx_size_bytes() / 2;
        let store = SpillStore::new(budget).unwrap();
        assert_eq!(store.memory_budget_bytes(), budget);
        let a = store.put(frame(0, 50)).unwrap();
        let b = store.put(frame(100, 50)).unwrap();
        let c = store.put(frame(200, 50)).unwrap();
        let stats = store.stats();
        assert!(
            stats.spill_outs >= 1,
            "expected at least one spill: {stats:?}"
        );
        assert!(stats.spilled >= 1);
        // All partitions remain readable, including spilled ones.
        for (id, tag) in [(a, 0), (b, 100), (c, 200)] {
            let back = store.get(id).unwrap();
            assert_eq!(back.shape(), (50, 2));
            assert_eq!(back.cell(0, 0).unwrap(), &cell(tag));
        }
        let stats = store.stats();
        assert!(stats.load_backs >= 1);
        // The peak never exceeds the budget by more than the one frame being inserted.
        assert!(stats.peak_memory_bytes <= budget + one.approx_size_bytes());
    }

    #[test]
    fn spilled_partitions_preserve_row_labels_and_types() {
        let store = SpillStore::new(1).unwrap(); // everything spills immediately
        let df = frame(0, 5)
            .with_row_labels(vec!["a", "b", "c", "d", "e"])
            .unwrap();
        let id = store.put(df).unwrap();
        let back = store.get(id).unwrap();
        assert_eq!(back.row_labels().as_slice()[1], cell("b"));
        assert_eq!(back.cell(2, 0).unwrap(), &cell(2));
    }

    #[test]
    fn spill_round_trip_is_lossless() {
        // The cases CSV-style serialisation would corrupt: numeric-looking strings in
        // untyped columns, floats (incl. NaN/inf/-0.0), bools, composite cells, typed
        // schema slots, and float/null labels.
        let tricky = DataFrame::from_parts(
            vec![
                // Untyped column of numeric-looking strings: must come back as Str.
                Column::new(vec![cell("10"), cell("020"), Cell::Null]),
                Column::with_domain(
                    vec![
                        Cell::Float(f64::NAN),
                        Cell::Float(f64::NEG_INFINITY),
                        Cell::Float(-0.0),
                    ],
                    Domain::Float,
                ),
                Column::new(vec![
                    Cell::Bool(true),
                    Cell::List(vec![cell(1), Cell::List(vec![cell("a\nb"), Cell::Null])]),
                    Cell::Str(format!("sep{}and{}done\\", '\u{1f}', '\u{1e}')),
                ]),
            ],
            Labels::new(vec![Cell::Float(1.5), Cell::Null, Cell::Str("r".into())]),
            Labels::new(vec![cell("raw"), cell("f"), cell("mixed")]),
        )
        .unwrap();
        let store = SpillStore::new(1).unwrap(); // spill immediately
        let id = store.put(tricky.clone()).unwrap();
        let back = store.get(id).unwrap();
        assert_eq!(store.stats().load_backs, 1);
        assert_eq!(back.row_labels(), tricky.row_labels());
        assert_eq!(back.col_labels(), tricky.col_labels());
        assert_eq!(back.schema(), tricky.schema());
        assert_eq!(back.cell(0, 0).unwrap(), &cell("10"));
        assert!(matches!(back.cell(0, 1).unwrap(), Cell::Float(v) if v.is_nan()));
        assert_eq!(back.cell(1, 1).unwrap(), &Cell::Float(f64::NEG_INFINITY));
        assert!(
            matches!(back.cell(2, 1).unwrap(), Cell::Float(v) if v.to_bits() == (-0.0f64).to_bits())
        );
        assert_eq!(back.cell(1, 2).unwrap(), tricky.cell(1, 2).unwrap());
        assert_eq!(back.cell(2, 2).unwrap(), tricky.cell(2, 2).unwrap());
    }

    #[test]
    fn zero_row_and_zero_col_frames_round_trip() {
        let store = SpillStore::new(1).unwrap();
        let empty_rows = DataFrame::from_rows(vec!["a", "b"], vec![]).unwrap();
        let id = store.put(empty_rows.clone()).unwrap();
        assert!(store.get(id).unwrap().same_data(&empty_rows));
        let empty_cols =
            DataFrame::from_parts(vec![], Labels::positional(4), Labels::default()).unwrap();
        let id = store.put(empty_cols.clone()).unwrap();
        let back = store.get(id).unwrap();
        assert_eq!(back.shape(), empty_cols.shape());
        assert_eq!(back.row_labels(), empty_cols.row_labels());
    }

    #[test]
    fn take_consumes_resident_and_spilled_partitions() {
        let store = SpillStore::unbounded().unwrap();
        let df = frame(7, 6);
        let id = store.put(df.clone()).unwrap();
        let back = store.take(id).unwrap();
        assert!(back.same_data(&df));
        assert!(store.get(id).is_err());
        assert_eq!(store.stats().in_memory, 0);

        let tight = SpillStore::new(1).unwrap();
        let id = tight.put(df.clone()).unwrap();
        assert_eq!(tight.stats().spilled, 1);
        let back = tight.take(id).unwrap();
        assert!(back.same_data(&df));
        assert!(tight.take(id).is_err());
    }

    #[test]
    fn remove_and_unknown_ids() {
        let store = SpillStore::unbounded().unwrap();
        let id = store.put(frame(0, 3)).unwrap();
        store.remove(id).unwrap();
        assert!(store.get(id).is_err());
        assert!(store.get(9999).is_err());
        store.remove(12345).unwrap();
    }

    #[test]
    fn typed_blocks_check_in_and_read_back_identically() {
        // A block checked in via put_block spills as v3 and decodes to the exact
        // frame it encoded — domains included — and its resident accounting is the
        // block's (smaller) typed footprint.
        let mut df = frame_of(vec![
            ("id", (0..64).map(|i| cell(i as i64)).collect()),
            ("fare", (0..64).map(|i| cell(i as f64 + 0.5)).collect()),
            (
                "vendor",
                (0..64)
                    .map(|i| cell(if i % 2 == 0 { "CMT" } else { "VTS" }))
                    .collect(),
            ),
        ])
        .unwrap();
        df.columns_mut()[2].declare_domain(Domain::Category);
        let block = ColumnBlock::from_frame(&df);
        let block_bytes = block.approx_size_bytes();
        assert!(block_bytes < df.approx_size_bytes());

        let store = SpillStore::unbounded().unwrap();
        let id = store.put_block(block.clone()).unwrap();
        assert_eq!(store.stats().memory_bytes, block_bytes);
        assert!(store.get(id).unwrap().same_data(&df));

        let tight = SpillStore::new(1).unwrap(); // spill immediately
        let id = tight.put_block(block).unwrap();
        assert_eq!(tight.stats().spilled, 1);
        let back = tight.get(id).unwrap();
        assert!(back.same_data(&df));
        assert_eq!(back.schema(), df.schema());
        assert_eq!(tight.stats().load_backs, 1);
    }

    #[test]
    fn v2_files_still_read_back() {
        // The v3 writer is the default, but files written in the legacy v2 format
        // (pre-columnar sessions, or sessions with the switch off) must keep reading.
        let df = frame_of(vec![
            ("raw", vec![cell("10"), cell("x\ny"), Cell::Null]),
            ("v", vec![cell(1), cell(2.5), Cell::Bool(true)]),
        ])
        .unwrap();
        let path = std::env::temp_dir().join(format!(
            "rustframe-spill-v2-compat-{}.spill",
            std::process::id()
        ));
        write_spill_frame_v2(&df, &path).unwrap();
        let part = read_spill_part(&path).unwrap();
        assert!(matches!(part, StoredPart::Frame(_)));
        assert!(part.into_frame().same_data(&df));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v3_floats_survive_bit_exactly() {
        // v3 writes floats as to_bits hex: NaN payloads, -0.0 and infinities all
        // round-trip to the identical bit pattern (v2's shortest-decimal encoding
        // canonicalises NaN payloads).
        let quiet_nan_with_payload = f64::from_bits(0x7ff8_0000_dead_beef);
        let df = frame_of(vec![(
            "f",
            vec![
                Cell::Float(quiet_nan_with_payload),
                Cell::Float(-0.0),
                Cell::Float(f64::INFINITY),
                Cell::Null,
            ],
        )])
        .unwrap();
        let path = std::env::temp_dir().join(format!(
            "rustframe-spill-v3-bits-{}.spill",
            std::process::id()
        ));
        write_spill_block_v3(&ColumnBlock::from_frame(&df), &path).unwrap();
        let StoredPart::Block(back) = read_spill_part(&path).unwrap() else {
            panic!("v3 file must decode to a block");
        };
        let ColumnData::Float { values, validity } = &back.columns()[0] else {
            panic!("float column must stay typed");
        };
        assert_eq!(values[0].to_bits(), quiet_nan_with_payload.to_bits());
        assert_eq!(values[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(values[2], f64::INFINITY);
        assert!(!validity.get(3));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v4_frame_round_trips_and_detects_tampering() {
        let df = frame(3, 12);
        let path = std::env::temp_dir().join(format!(
            "rustframe-spill-v4-test-{}.spill",
            std::process::id()
        ));
        write_spill_part(&StoredPart::Frame(df.clone()), &path).unwrap();

        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.starts_with(MAGIC_V4), "store writes the v4 frame");
        assert!(read_spill_part(&path).unwrap().into_frame().same_data(&df));

        // Flip one payload byte: the checksum must catch it as typed corruption.
        let mut tampered = raw.clone().into_bytes();
        let idx = tampered.len() - 10;
        tampered[idx] = tampered[idx].wrapping_add(1);
        std::fs::write(&path, &tampered).unwrap();
        match read_spill_part(&path) {
            Err(DfError::SpillCorruption { site, detail }) => {
                assert_eq!(site, "spill.read");
                assert!(detail.contains("checksum"), "unexpected detail: {detail}");
            }
            other => panic!("expected SpillCorruption, got {other:?}"),
        }

        // Truncate mid-payload: the length check must catch it.
        std::fs::write(&path, &raw.as_bytes()[..raw.len() - 30]).unwrap();
        match read_spill_part(&path) {
            Err(DfError::SpillCorruption { detail, .. }) => {
                assert!(detail.contains("length"), "unexpected detail: {detail}");
            }
            other => panic!("expected SpillCorruption, got {other:?}"),
        }

        std::fs::remove_file(&path).ok();
        // A vanished file is lost state: classified with corruption so the
        // recovery layer recomputes the block from lineage instead of giving up.
        match read_spill_part(&path) {
            Err(DfError::SpillCorruption { site, detail }) => {
                assert_eq!(site, "spill.read");
                assert!(detail.contains("missing"), "unexpected detail: {detail}");
            }
            other => panic!("expected SpillCorruption, got {other:?}"),
        }
    }

    #[test]
    fn garbage_and_bad_magic_are_typed_corruption() {
        let path = std::env::temp_dir().join(format!(
            "rustframe-spill-garbage-{}.spill",
            std::process::id()
        ));
        std::fs::write(&path, "not a spill file at all\n").unwrap();
        assert!(matches!(
            read_spill_part(&path),
            Err(DfError::SpillCorruption { .. })
        ));
        // A v4 frame whose payload carries no inner magic is corruption too.
        std::fs::write(
            &path,
            format!("{MAGIC_V4}\n7 {:x}\ngarbage", fnv1a64(b"garbage")),
        )
        .unwrap();
        assert!(matches!(
            read_spill_part(&path),
            Err(DfError::SpillCorruption { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn orphaned_spill_dirs_from_dead_pids_are_collected() {
        if !Path::new("/proc").is_dir() {
            return; // liveness probe unavailable; GC is a no-op by design
        }
        // A pid above the kernel's pid_max can never be alive.
        let dead = std::env::temp_dir().join("rustframe-spill-4294967295-0-0");
        std::fs::create_dir_all(dead.join("nested")).unwrap();
        std::fs::write(dead.join("nested/part-0-0.spill"), "junk").unwrap();
        // Our own directories — and unparseable names — must survive the sweep.
        let own = SpillStore::new(1).unwrap();
        let own_dir = own.directory.clone();
        let odd = std::env::temp_dir().join("rustframe-spill-notapid-x");
        std::fs::create_dir_all(&odd).unwrap();

        assert!(gc_orphaned_spill_dirs() >= 1);
        assert!(!dead.exists(), "dead pid's directory must be reclaimed");
        assert!(own_dir.exists(), "live store directory must survive");
        assert!(odd.exists(), "unparseable names are left alone");
        std::fs::remove_dir_all(odd).ok();
    }

    #[test]
    fn spill_directory_is_removed_on_drop() {
        let dir;
        {
            let store = SpillStore::new(1).unwrap();
            dir = store.directory.clone();
            store.put(frame(0, 5)).unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }
}
