//! The out-of-core partition store ("memory spillover").
//!
//! Paper §3.3, storage layer: "MODIN's modular storage layer supports both main memory
//! and persistent storage out-of-core …, allowing intermediate dataframes to exceed
//! main-memory limitations while not throwing memory errors, unlike pandas. To maintain
//! pandas semantics, the dataframe partitions are freed from persistent storage once a
//! session ends."
//!
//! [`SpillStore`] keeps partitions in memory up to a byte budget; when the budget is
//! exceeded the least-recently-used partitions are written to spill files in a
//! session-scoped temporary directory and transparently re-loaded on access. Dropping
//! the store removes its directory, matching the "freed once a session ends" semantics.

use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use df_types::cell::Cell;
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use df_core::dataframe::{Column, DataFrame};

use crate::csv::{read_csv_str, write_csv_string, CsvOptions};

/// Identifier of a partition held by a [`SpillStore`].
pub type PartitionId = u64;

/// Statistics describing the store's behaviour, used by tests and the storage ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Partitions currently resident in memory.
    pub in_memory: usize,
    /// Partitions currently only on disk.
    pub spilled: usize,
    /// Total spill-out events since the store was created.
    pub spill_outs: u64,
    /// Total load-back events since the store was created.
    pub load_backs: u64,
    /// Approximate bytes currently held in memory.
    pub memory_bytes: usize,
}

struct Slot {
    frame: Option<DataFrame>,
    spill_path: Option<PathBuf>,
    approx_bytes: usize,
    last_touch: u64,
}

/// An in-memory partition store with spill-to-disk overflow.
pub struct SpillStore {
    memory_budget_bytes: usize,
    directory: PathBuf,
    clock: AtomicU64,
    next_id: AtomicU64,
    inner: Mutex<HashMap<PartitionId, Slot>>,
    spill_outs: AtomicU64,
    load_backs: AtomicU64,
}

impl SpillStore {
    /// Create a store with the given in-memory byte budget. Spill files live under a
    /// fresh subdirectory of the system temp dir.
    pub fn new(memory_budget_bytes: usize) -> DfResult<Self> {
        let directory = std::env::temp_dir().join(format!(
            "rustframe-spill-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&directory)?;
        Ok(SpillStore {
            memory_budget_bytes,
            directory,
            clock: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            inner: Mutex::new(HashMap::new()),
            spill_outs: AtomicU64::new(0),
            load_backs: AtomicU64::new(0),
        })
    }

    /// A store that effectively never spills (large budget) — used when out-of-core
    /// behaviour is not under test.
    pub fn unbounded() -> DfResult<Self> {
        SpillStore::new(usize::MAX / 2)
    }

    /// Insert a partition, spilling older partitions if the memory budget is exceeded.
    pub fn put(&self, frame: DataFrame) -> DfResult<PartitionId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let approx_bytes = frame.approx_size_bytes();
        let touch = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner = self.inner.lock();
            inner.insert(
                id,
                Slot {
                    frame: Some(frame),
                    spill_path: None,
                    approx_bytes,
                    last_touch: touch,
                },
            );
        }
        self.enforce_budget()?;
        Ok(id)
    }

    /// Fetch a partition, transparently loading it back from disk if it was spilled.
    pub fn get(&self, id: PartitionId) -> DfResult<DataFrame> {
        let touch = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let slot = inner
            .get_mut(&id)
            .ok_or_else(|| DfError::internal(format!("unknown partition id {id}")))?;
        slot.last_touch = touch;
        if let Some(frame) = &slot.frame {
            return Ok(frame.clone());
        }
        let path = slot
            .spill_path
            .clone()
            .ok_or_else(|| DfError::internal("partition has neither memory nor spill copy"))?;
        drop(inner);
        let frame = read_spill_file(&path)?;
        self.load_backs.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.get_mut(&id) {
            slot.frame = Some(frame.clone());
            slot.approx_bytes = frame.approx_size_bytes();
        }
        drop(inner);
        self.enforce_budget()?;
        Ok(frame)
    }

    /// Remove a partition entirely (memory and disk).
    pub fn remove(&self, id: PartitionId) -> DfResult<()> {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.remove(&id) {
            if let Some(path) = slot.spill_path {
                std::fs::remove_file(path).ok();
            }
        }
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> SpillStats {
        let inner = self.inner.lock();
        let mut stats = SpillStats {
            spill_outs: self.spill_outs.load(Ordering::Relaxed),
            load_backs: self.load_backs.load(Ordering::Relaxed),
            ..SpillStats::default()
        };
        for slot in inner.values() {
            if slot.frame.is_some() {
                stats.in_memory += 1;
                stats.memory_bytes += slot.approx_bytes;
            } else {
                stats.spilled += 1;
            }
        }
        stats
    }

    /// Spill least-recently-used partitions until the memory budget is respected.
    fn enforce_budget(&self) -> DfResult<()> {
        loop {
            let victim = {
                let inner = self.inner.lock();
                let total: usize = inner
                    .values()
                    .filter(|s| s.frame.is_some())
                    .map(|s| s.approx_bytes)
                    .sum();
                if total <= self.memory_budget_bytes {
                    return Ok(());
                }
                // Pick the least recently used resident partition.
                inner
                    .iter()
                    .filter(|(_, s)| s.frame.is_some())
                    .min_by_key(|(_, s)| s.last_touch)
                    .map(|(&id, _)| id)
            };
            let Some(victim) = victim else {
                return Ok(());
            };
            self.spill_one(victim)?;
        }
    }

    fn spill_one(&self, id: PartitionId) -> DfResult<()> {
        let frame = {
            let mut inner = self.inner.lock();
            let Some(slot) = inner.get_mut(&id) else {
                return Ok(());
            };
            slot.frame.take()
        };
        let Some(frame) = frame else { return Ok(()) };
        let path = self.directory.join(format!("part-{id}.spill"));
        write_spill_file(&frame, &path)?;
        self.spill_outs.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.get_mut(&id) {
            slot.spill_path = Some(path);
        }
        Ok(())
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Partitions are freed from persistent storage once the session ends.
        std::fs::remove_dir_all(&self.directory).ok();
    }
}

/// Spill file format: a small header with the row/column labels followed by the CSV
/// serialisation of the data. Plain text keeps the workspace dependency-free; the
/// format is internal and never exposed to users.
fn write_spill_file(frame: &DataFrame, path: &PathBuf) -> DfResult<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    let row_labels: Vec<String> = frame
        .row_labels()
        .as_slice()
        .iter()
        .map(Cell::to_raw_string)
        .collect();
    writeln!(writer, "{}", row_labels.join("\u{1f}"))?;
    let body = write_csv_string(frame, &CsvOptions::default());
    writer.write_all(body.as_bytes())?;
    Ok(())
}

fn read_spill_file(path: &PathBuf) -> DfResult<DataFrame> {
    let mut content = String::new();
    std::fs::File::open(path)?.read_to_string(&mut content)?;
    let (labels_line, body) = content
        .split_once('\n')
        .ok_or_else(|| DfError::internal("corrupt spill file"))?;
    let mut df = read_csv_str(body, &CsvOptions::default())?;
    // Re-type the data: spill files are written from typed frames, so parsing restores
    // the domains that were already known.
    df.parse_all();
    let labels: Vec<Cell> = if labels_line.is_empty() {
        Vec::new()
    } else {
        labels_line
            .split('\u{1f}')
            .map(|s| {
                if s.is_empty() {
                    Cell::Null
                } else if let Ok(v) = s.parse::<i64>() {
                    Cell::Int(v)
                } else {
                    Cell::Str(s.to_string())
                }
            })
            .collect()
    };
    if labels.len() == df.n_rows() {
        df = df.with_row_labels(Labels::new(labels))?;
    }
    Ok(df)
}

/// Convenience: build a dataframe column-by-column from typed cells (used by tests).
pub fn frame_of(columns: Vec<(&str, Vec<Cell>)>) -> DfResult<DataFrame> {
    let labels: Vec<Cell> = columns
        .iter()
        .map(|(l, _)| Cell::Str((*l).into()))
        .collect();
    let cols: Vec<Column> = columns.into_iter().map(|(_, c)| Column::new(c)).collect();
    let rows = cols.first().map(|c| c.len()).unwrap_or(0);
    DataFrame::from_parts(cols, Labels::positional(rows), Labels::new(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn frame(tag: i64, rows: usize) -> DataFrame {
        frame_of(vec![
            ("id", (0..rows).map(|i| cell(i as i64 + tag)).collect()),
            (
                "name",
                (0..rows).map(|i| cell(format!("row-{i}"))).collect(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn put_get_round_trip_in_memory() {
        let store = SpillStore::unbounded().unwrap();
        let df = frame(0, 10);
        let id = store.put(df.clone()).unwrap();
        let back = store.get(id).unwrap();
        assert_eq!(back.shape(), df.shape());
        assert_eq!(store.stats().in_memory, 1);
        assert_eq!(store.stats().spilled, 0);
    }

    #[test]
    fn exceeding_the_budget_spills_lru_partitions() {
        // Budget fits roughly one partition, so inserting three forces spills.
        let one = frame(0, 50);
        let budget = one.approx_size_bytes() + one.approx_size_bytes() / 2;
        let store = SpillStore::new(budget).unwrap();
        let a = store.put(frame(0, 50)).unwrap();
        let b = store.put(frame(100, 50)).unwrap();
        let c = store.put(frame(200, 50)).unwrap();
        let stats = store.stats();
        assert!(
            stats.spill_outs >= 1,
            "expected at least one spill: {stats:?}"
        );
        assert!(stats.spilled >= 1);
        // All partitions remain readable, including spilled ones.
        for (id, tag) in [(a, 0), (b, 100), (c, 200)] {
            let back = store.get(id).unwrap();
            assert_eq!(back.shape(), (50, 2));
            assert_eq!(back.cell(0, 0).unwrap(), &cell(tag));
        }
        assert!(store.stats().load_backs >= 1);
    }

    #[test]
    fn spilled_partitions_preserve_row_labels_and_types() {
        let store = SpillStore::new(1).unwrap(); // everything spills immediately
        let df = frame(0, 5)
            .with_row_labels(vec!["a", "b", "c", "d", "e"])
            .unwrap();
        let id = store.put(df).unwrap();
        let back = store.get(id).unwrap();
        assert_eq!(back.row_labels().as_slice()[1], cell("b"));
        assert_eq!(back.cell(2, 0).unwrap(), &cell(2));
    }

    #[test]
    fn remove_and_unknown_ids() {
        let store = SpillStore::unbounded().unwrap();
        let id = store.put(frame(0, 3)).unwrap();
        store.remove(id).unwrap();
        assert!(store.get(id).is_err());
        assert!(store.get(9999).is_err());
        store.remove(12345).unwrap();
    }

    #[test]
    fn spill_directory_is_removed_on_drop() {
        let dir;
        {
            let store = SpillStore::new(1).unwrap();
            dir = store.directory.clone();
            store.put(frame(0, 5)).unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }
}
