//! Length-prefixed framing of spill v4 parts over a byte stream.
//!
//! The process-parallel executor backend ships dataframe bands between the driver
//! and its worker processes over pipes. Rather than invent a second serialisation
//! format, the wire payload **is** the checksummed spill v4 frame
//! ([`spill::render_spill_part_v4`] / [`spill::decode_spill_content`]) — per-part
//! payload length plus FNV-64 checksum — so band exchange inherits the spill
//! format's corruption detection verbatim (ROADMAP item 3; the paper's §3.3
//! decoupling of plan from placement).
//!
//! Framing is a single decimal length line followed by exactly that many bytes of
//! v4 frame. Everything is length-prefixed, so the reader never scans content for
//! delimiters and never blocks past the bytes the peer actually promised:
//!
//! ```text
//! {frame_len}\n
//! rustframe-spill-v4\n
//! {payload_len} {fnv1a64:x}\n
//! {payload bytes...}
//! ```
//!
//! Failure model: a clean end-of-stream *at a frame boundary* is `Ok(None)` (the
//! peer closed its end deliberately); truncation mid-frame, a garbled length line,
//! a lying length, invalid UTF-8 or a checksum mismatch are all typed
//! [`DfError::SpillCorruption`] — never a panic, and never an unbounded read
//! (a huge claimed length reads only what the stream actually delivers).

use df_types::{DfError, DfResult};
use std::io::{BufRead, Read, Write};

use crate::spill::{self, StoredPart};

/// The most digits a frame-length line may carry. Twenty digits covers `u64::MAX`;
/// anything longer is garbage framing, not a big frame.
const MAX_LEN_DIGITS: usize = 20;

/// Write one stored part to `w` as a length-prefixed spill v4 frame. I/O errors
/// (e.g. a broken pipe when the peer died) surface as [`DfError::SpillIo`] tagged
/// with `site`; the process backend folds those into its worker-lost handling.
pub fn write_framed_part<W: Write>(w: &mut W, part: &StoredPart, site: &str) -> DfResult<()> {
    let frame = spill::render_spill_part_v4(part);
    let io_err =
        |err: std::io::Error| DfError::spill_io(site, format!("write framed part: {err}"), false);
    writeln!(w, "{}", frame.len()).map_err(io_err)?;
    w.write_all(frame.as_bytes()).map_err(io_err)?;
    Ok(())
}

/// Read one length-prefixed spill v4 frame from `r` and decode it.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary (the peer
/// closed the pipe between parts). Any malformed framing — truncated length line,
/// non-decimal length, a length the stream cannot honour, invalid UTF-8, or a
/// payload that fails the v4 checksum — is [`DfError::SpillCorruption`] tagged
/// with `site`. The read is bounded by the promised length, so a lying header
/// cannot make the reader wait for bytes that will never come past EOF.
pub fn read_framed_part<R: BufRead>(r: &mut R, site: &str) -> DfResult<Option<StoredPart>> {
    match read_frame_bytes(r, site)? {
        Some(content) => spill::decode_spill_content(&content, site).map(Some),
        None => Ok(None),
    }
}

/// The framing half of [`read_framed_part`]: read one length-prefixed frame and
/// return its raw text without decoding it. The process backend uses this seam to
/// apply its `corrupt` failpoint to the exact bytes received before handing them
/// to [`spill::decode_spill_content`], exercising the real checksum path.
pub fn read_frame_bytes<R: BufRead>(r: &mut R, site: &str) -> DfResult<Option<String>> {
    let frame_len = match read_len_line(r, site)? {
        Some(len) => len,
        None => return Ok(None),
    };
    let mut bytes = Vec::new();
    r.take(frame_len as u64)
        .read_to_end(&mut bytes)
        .map_err(|err| DfError::spill_io(site, format!("read framed part: {err}"), false))?;
    if bytes.len() < frame_len {
        return Err(DfError::spill_corruption(
            site,
            format!(
                "framed part truncated: header promised {frame_len} bytes, stream ended after {}",
                bytes.len()
            ),
        ));
    }
    String::from_utf8(bytes)
        .map(Some)
        .map_err(|_| DfError::spill_corruption(site, "framed part is not valid UTF-8"))
}

/// Read the decimal length line that prefixes a frame. `Ok(None)` only when the
/// stream is already at EOF (a clean frame boundary); EOF or a non-digit mid-line
/// is corruption. Reads byte-at-a-time (buffered by `BufRead`) with a digit cap,
/// so garbage without a newline cannot grow the line unboundedly.
fn read_len_line<R: BufRead>(r: &mut R, site: &str) -> DfResult<Option<usize>> {
    let corrupt = |detail: String| DfError::spill_corruption(site, detail);
    let mut digits = String::new();
    loop {
        let mut byte = [0u8; 1];
        let n = r
            .read(&mut byte)
            .map_err(|err| DfError::spill_io(site, format!("read frame length: {err}"), false))?;
        if n == 0 {
            if digits.is_empty() {
                return Ok(None);
            }
            return Err(corrupt("stream ended inside a frame-length line".into()));
        }
        match byte[0] {
            b'\n' => break,
            b'0'..=b'9' if digits.len() < MAX_LEN_DIGITS => digits.push(byte[0] as char),
            b'0'..=b'9' => return Err(corrupt("frame-length line too long".into())),
            other => {
                return Err(corrupt(format!(
                    "frame-length line holds non-digit byte {other:#04x}"
                )))
            }
        }
    }
    digits
        .parse::<usize>()
        .map(Some)
        .map_err(|_| corrupt(format!("frame length unparseable: {digits:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_core::dataframe::DataFrame;
    use df_types::{cell, Cell};
    use std::io::Cursor;

    fn sample_frame() -> DataFrame {
        DataFrame::from_rows(
            vec![cell("city"), cell("count"), cell("score")],
            vec![
                vec![cell("oslo"), cell(3i64), cell(1.5f64)],
                vec![Cell::Null, cell(-7i64), Cell::Null],
                vec![cell("lima\nwith\u{1f}escapes"), cell(0i64), cell(2.25f64)],
            ],
        )
        .unwrap()
        .with_row_labels(vec!["r0", "r1", "r2"])
        .unwrap()
    }

    fn roundtrip(part: &StoredPart) -> StoredPart {
        let mut pipe = Vec::new();
        write_framed_part(&mut pipe, part, "test.wire").unwrap();
        let mut reader = Cursor::new(pipe);
        let back = read_framed_part(&mut reader, "test.wire").unwrap().unwrap();
        // The stream is exactly one frame: the next read is a clean EOF.
        assert!(read_framed_part(&mut reader, "test.wire")
            .unwrap()
            .is_none());
        back
    }

    #[test]
    fn frame_part_round_trips_over_an_in_memory_pipe() {
        let frame = sample_frame();
        let back = roundtrip(&StoredPart::Frame(frame.clone()));
        assert!(back.to_frame().same_data(&frame));
    }

    #[test]
    fn block_part_round_trips_with_v3_payload() {
        // A typed column block renders as a v3 payload inside the v4 wire frame;
        // read-back must restore the same frame cell-for-cell.
        let frame = sample_frame();
        let block = df_core::columnar::ColumnBlock::from_frame(&frame);
        let back = roundtrip(&StoredPart::Block(block));
        assert!(back.to_frame().same_data(&frame));
    }

    #[test]
    fn multiple_parts_stream_back_in_order() {
        let frame = sample_frame();
        let mut pipe = Vec::new();
        for _ in 0..3 {
            write_framed_part(&mut pipe, &StoredPart::Frame(frame.clone()), "test.wire").unwrap();
        }
        let mut reader = Cursor::new(pipe);
        for _ in 0..3 {
            let back = read_framed_part(&mut reader, "test.wire").unwrap().unwrap();
            assert!(back.to_frame().same_data(&frame));
        }
        assert!(read_framed_part(&mut reader, "test.wire")
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncated_frame_is_corruption_not_a_hang() {
        let mut pipe = Vec::new();
        write_framed_part(&mut pipe, &StoredPart::Frame(sample_frame()), "test.wire").unwrap();
        // Drop the tail: the length line promises more bytes than arrive.
        pipe.truncate(pipe.len() - 10);
        let err = read_framed_part(&mut Cursor::new(pipe), "test.wire").unwrap_err();
        match err {
            DfError::SpillCorruption { site, detail } => {
                assert_eq!(site, "test.wire");
                assert!(detail.contains("truncated"), "detail: {detail}");
            }
            other => panic!("expected SpillCorruption, got {other:?}"),
        }
    }

    #[test]
    fn garbled_payload_fails_the_checksum() {
        let frame_text = spill::render_spill_part_v4(&StoredPart::Frame(sample_frame()));
        let mut garbled = frame_text.clone();
        spill::mangle_payload(&mut garbled);
        assert_ne!(garbled, frame_text);
        let mut pipe = Vec::new();
        writeln!(pipe, "{}", garbled.len()).unwrap();
        pipe.extend_from_slice(garbled.as_bytes());
        let err = read_framed_part(&mut Cursor::new(pipe), "test.wire").unwrap_err();
        assert!(
            matches!(&err, DfError::SpillCorruption { site, .. } if site == "test.wire"),
            "expected SpillCorruption, got {err:?}"
        );
    }

    #[test]
    fn garbled_length_line_is_corruption() {
        for bad in ["xyz\nrest", "12a4\npayload", "999999999999999999999\n"] {
            let err = read_framed_part(&mut Cursor::new(bad.as_bytes().to_vec()), "test.wire")
                .unwrap_err();
            assert!(
                matches!(err, DfError::SpillCorruption { .. }),
                "input {bad:?} should be corruption"
            );
        }
    }

    #[test]
    fn huge_claimed_length_reads_only_what_exists() {
        // A lying header must not allocate or wait for terabytes: the bounded read
        // stops at EOF and reports truncation.
        let mut pipe = Vec::new();
        writeln!(pipe, "99999999999").unwrap();
        pipe.extend_from_slice(b"short");
        let err = read_framed_part(&mut Cursor::new(pipe), "test.wire").unwrap_err();
        assert!(
            matches!(&err, DfError::SpillCorruption { detail, .. } if detail.contains("truncated")),
            "got {err:?}"
        );
    }

    #[test]
    fn eof_inside_the_length_line_is_corruption() {
        let err = read_framed_part(&mut Cursor::new(b"12".to_vec()), "test.wire").unwrap_err();
        assert!(
            matches!(err, DfError::SpillCorruption { .. }),
            "got {err:?}"
        );
    }
}
