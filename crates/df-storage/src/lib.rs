//! # df-storage
//!
//! The storage layer of the MODIN architecture (paper §3.3, Figure 3):
//!
//! * [`csv`] — untyped (`Σ*`) CSV ingest/egress, both the serial reader and the
//!   chunk-parallel machinery (quote-aware chunk planning, per-chunk parsing,
//!   cross-band schema reconciliation, band-wise egress) the engine drives for
//!   parallel out-of-core `read_csv`.
//! * [`spill`] — the main-memory + spill-to-disk partition store that lets
//!   intermediate dataframes exceed main memory without the out-of-memory failures
//!   pandas exhibits, with checksummed (v4) spill files, failpoint-instrumented I/O
//!   and transient-fault retry.

// Storage faults must surface as typed `DfError`s, never as panics: a worker that
// panics mid-spill takes the whole statement down. Tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod csv;
pub mod spill;
pub mod wire;

pub use csv::{
    plan_csv_chunks, read_csv_chunk, read_csv_path, read_csv_str, write_csv_path, write_csv_string,
    CsvChunk, CsvIngestPlan, CsvOptions,
};
pub use spill::{PartitionId, SpillStats, SpillStore};
