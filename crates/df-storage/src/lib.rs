//! # df-storage
//!
//! The storage layer of the MODIN architecture (paper §3.3, Figure 3): untyped CSV
//! ingest/egress ([`csv`]) and the main-memory + spill-to-disk partition store
//! ([`spill`]) that lets intermediate dataframes exceed main memory without the
//! out-of-memory failures pandas exhibits.

pub mod csv;
pub mod spill;

pub use csv::{read_csv_path, read_csv_str, write_csv_path, write_csv_string, CsvOptions};
pub use spill::{PartitionId, SpillStats, SpillStore};
