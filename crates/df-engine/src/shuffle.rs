//! Hash and range shuffles: partition-parallel JOIN, SORT, DROP DUPLICATES and
//! DIFFERENCE.
//!
//! Paper §3.1 calls these the expensive operators of Table 1, and §3.3 runs them on a
//! task-parallel engine by *exchanging* rows between partitions so that every key
//! lands in exactly one partition. This module is that exchange layer:
//!
//! * [`PartitionGrid::shuffle`] is the primitive: every row band is split into `P`
//!   key-hashed buckets in parallel (via [`ParallelExecutor::par_map`]), and bucket
//!   `b` of the output concatenates the `b`-th slice of every band, so equal keys are
//!   co-located while rows within a bucket keep their global order.
//! * [`parallel_join`] hash-joins co-partitioned buckets (or broadcasts the build side
//!   when it is small), [`parallel_drop_duplicates`] and [`parallel_difference`]
//!   deduplicate/anti-join per bucket, and [`parallel_sort`] runs per-band sorts, a
//!   sampled range partitioning, and a stable k-way merge per range.
//!
//! The dataframe algebra is *ordered* (Table 1: result order comes from the parent or
//! the left argument), so the hash operators restore order afterwards: inputs are
//! tagged with their global row position before the shuffle, and the result is sorted
//! back by that tag — rangewise over the tag span, so the combined result is never
//! materialised in one piece — and the tag projected away. Bucket hashing uses
//! [`Cell::hash_key`] through the deterministic [`StableHasher`], which makes results
//! identical across thread counts and runs.
//!
//! Every stage moves data as [`Partition`] handles and loads a band only *inside* its
//! worker task (load → compute → store-and-maybe-spill): when the executor carries a
//! [`SpillStore`](df_storage::spill::SpillStore), intermediate bands, bucket slices
//! and per-bucket results all live under the store's memory budget, so the shuffle
//! operators run out-of-core on inputs larger than memory.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::Hasher;

use df_types::cell::{Cell, StableHasher};
use df_types::column::{columnar_enabled, ColumnData};
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use df_core::algebra::{JoinOn, JoinType, SortSpec};
use df_core::dataframe::{Column, DataFrame};
use df_core::ops::columnar::typed_for_keying;
use df_core::ops::setops;

use crate::backend::BandTask;
use crate::executor::ParallelExecutor;
use crate::partition::{Partition, PartitionGrid};

/// Column label used to tag the left/only input's global row positions.
const POS_LABEL: &str = "__shuffle:pos";
/// Column label used to tag the right input's global row positions in joins.
const RIGHT_POS_LABEL: &str = "__shuffle:rpos";

/// Tuning knobs threaded from the engine configuration into the shuffle operators.
#[derive(Debug, Clone, Copy)]
pub struct ShuffleOptions {
    /// Number of hash/range buckets rows are exchanged into.
    pub buckets: usize,
    /// Target rows per output band when re-banding order-restored results.
    pub band_rows: usize,
    /// JOIN / DIFFERENCE build sides up to this many rows are broadcast instead of
    /// shuffled.
    pub broadcast_rows: usize,
}

/// What a shuffle (or a per-bucket hash table) keys rows on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleKey {
    /// Hash the cells at these column positions.
    Positions(Vec<usize>),
    /// Hash the row label (JOIN on row labels).
    RowLabels,
}

impl PartitionGrid {
    /// The hash-shuffle primitive: redistribute rows into `buckets` row bands keyed by
    /// the hash of `key`, splitting every existing band in parallel and concatenating
    /// bucket-wise. Rows that share a key land in the same output band; rows within a
    /// band keep their global relative order.
    pub fn shuffle(
        &self,
        executor: &ParallelExecutor,
        key: &ShuffleKey,
        buckets: usize,
    ) -> DfResult<PartitionGrid> {
        let bands = self.clone().into_band_partitions(executor.store())?;
        let shuffled = shuffle_bands(executor, bands, key, buckets)?;
        Ok(PartitionGrid::from_band_partitions(shuffled))
    }
}

/// Hash one row's key cells into a stable bucket hash (the reference form of
/// [`KeyEncoder::hash`]; the shuffle tests cross-check bucket residency with it).
#[cfg(test)]
fn row_hash(frame: &DataFrame, i: usize, key: &ShuffleKey) -> u64 {
    let mut hasher = StableHasher::default();
    match key {
        ShuffleKey::Positions(positions) => {
            for &j in positions {
                frame.columns()[j].cells()[i].hash_key(&mut hasher);
            }
        }
        ShuffleKey::RowLabels => {
            if let Some(label) = frame.row_labels().get(i) {
                label.hash_key(&mut hasher);
            }
        }
    }
    hasher.finish()
}

/// Vectorized bucket hashing: one frame's key columns, pre-encoded as typed buffers
/// where possible, so streaming every row of a band through [`StableHasher`] skips
/// the per-cell enum dispatch. Hashes are byte-identical to streaming every key
/// cell through [`Cell::hash_key`] — bucket assignment must never depend on the
/// layout — and the encoder degrades to exactly that for columns (or whole keys)
/// without a typed form.
struct KeyEncoder<'a> {
    frame: &'a DataFrame,
    key: &'a ShuffleKey,
    /// Typed encodings aligned with `ShuffleKey::Positions`; empty for label keys.
    typed: Vec<Option<ColumnData>>,
}

impl<'a> KeyEncoder<'a> {
    fn new(frame: &'a DataFrame, key: &'a ShuffleKey) -> KeyEncoder<'a> {
        let typed = match key {
            ShuffleKey::Positions(positions) if columnar_enabled() => positions
                .iter()
                .map(|&j| typed_for_keying(&frame.columns()[j]))
                .collect(),
            ShuffleKey::Positions(positions) => vec![None; positions.len()],
            ShuffleKey::RowLabels => Vec::new(),
        };
        KeyEncoder { frame, key, typed }
    }

    fn hash(&self, i: usize) -> u64 {
        let mut hasher = StableHasher::default();
        match self.key {
            ShuffleKey::Positions(positions) => {
                for (typed, &j) in self.typed.iter().zip(positions) {
                    match typed {
                        Some(data) => data.hash_value_into(i, &mut hasher),
                        None => self.frame.columns()[j].cells()[i].hash_key(&mut hasher),
                    }
                }
            }
            ShuffleKey::RowLabels => {
                if let Some(label) = self.frame.row_labels().get(i) {
                    label.hash_key(&mut hasher);
                }
            }
        }
        hasher.finish()
    }
}

/// Group-key equality of two rows' key cells (the verification step behind the hash).
fn keys_match(
    a: &DataFrame,
    ai: usize,
    a_key: &ShuffleKey,
    b: &DataFrame,
    bi: usize,
    b_key: &ShuffleKey,
) -> bool {
    match (a_key, b_key) {
        (ShuffleKey::Positions(ap), ShuffleKey::Positions(bp)) => {
            ap.len() == bp.len()
                && ap.iter().zip(bp.iter()).all(|(&aj, &bj)| {
                    a.columns()[aj].cells()[ai].key_eq(&b.columns()[bj].cells()[bi])
                })
        }
        (ShuffleKey::RowLabels, ShuffleKey::RowLabels) => {
            match (a.row_labels().get(ai), b.row_labels().get(bi)) {
                (Some(x), Some(y)) => x.key_eq(y),
                _ => false,
            }
        }
        _ => false,
    }
}

fn validate_key(frame: &DataFrame, key: &ShuffleKey) -> DfResult<()> {
    if let ShuffleKey::Positions(positions) = key {
        for &j in positions {
            if j >= frame.n_cols() {
                return Err(DfError::IndexOutOfBounds {
                    axis: "column",
                    index: j,
                    len: frame.n_cols(),
                });
            }
        }
    }
    Ok(())
}

/// Assemble band partitions into one frame, consuming (and store-freeing) each band.
fn assemble_parts(parts: Vec<Partition>) -> DfResult<DataFrame> {
    let frames: Vec<DataFrame> = parts
        .into_iter()
        .map(Partition::into_materialized)
        .collect::<DfResult<_>>()?;
    setops::union_all(frames)
}

/// Shuffle full-width band partitions into `buckets` key-hashed bands. Each worker
/// loads one band, splits it, and checks the slices back in; the bucket-concatenation
/// pass then drains those slices one bucket at a time. Both stages place their band
/// work ([`BandTask::HashSplit`], [`BandTask::Concat`]) on the executor's backend, so
/// on the process backend every row of a shuffle crosses a process boundary as a
/// checksummed spill-v4 frame.
fn shuffle_bands(
    executor: &ParallelExecutor,
    bands: Vec<Partition>,
    key: &ShuffleKey,
    buckets: usize,
) -> DfResult<Vec<Partition>> {
    let store = executor.store().cloned();
    let p = buckets.max(1);
    executor.record_shuffle();
    let split_task = BandTask::HashSplit {
        key: key.clone(),
        parts: p,
    };
    let split = executor.par_map(bands, |_, part| {
        // Band exchange is the one place every row crosses worker boundaries; the
        // failpoint makes that hop chaos-testable like the storage hops.
        df_types::fail::check("shuffle.exchange")?;
        let band = part.into_materialized()?;
        executor
            .run_task(&split_task, vec![band])?
            .into_iter()
            .map(|frame| Partition::new_in(frame, 0, 0, store.as_ref()))
            .collect::<DfResult<Vec<_>>>()
    })?;
    let mut per_bucket: Vec<Vec<Partition>> =
        (0..p).map(|_| Vec::with_capacity(split.len())).collect();
    for band_buckets in split {
        for (b, part) in band_buckets.into_iter().enumerate() {
            per_bucket[b].push(part);
        }
    }
    executor.par_map(per_bucket, |_, parts| {
        let frames: Vec<DataFrame> = parts
            .into_iter()
            .map(Partition::into_materialized)
            .collect::<DfResult<_>>()?;
        let merged = executor
            .run_task(&BandTask::Concat, frames)?
            .pop()
            .ok_or_else(|| DfError::internal("concat task returned no output band"))?;
        Partition::new_in(merged, 0, 0, store.as_ref())
    })
}

/// Split one band into `p` key-hashed bucket slices, preserving row order per bucket.
/// `pub(crate)` because it is also the body of [`crate::backend::BandTask::HashSplit`].
pub(crate) fn split_band(band: DataFrame, key: &ShuffleKey, p: usize) -> DfResult<Vec<DataFrame>> {
    validate_key(&band, key)?;
    if p == 1 {
        return Ok(vec![band]);
    }
    let mut bucket_rows: Vec<Vec<usize>> = vec![Vec::new(); p];
    let encoder = KeyEncoder::new(&band, key);
    for i in 0..band.n_rows() {
        let bucket = (encoder.hash(i) % p as u64) as usize;
        bucket_rows[bucket].push(i);
    }
    bucket_rows
        .into_iter()
        .map(|rows| band.take_rows(&rows))
        .collect()
}

/// Hash index over one frame's rows: bucket hash -> row positions (verified against
/// [`keys_match`] before use, because distinct keys may share a hash).
struct RowIndex {
    map: HashMap<u64, Vec<usize>>,
}

impl RowIndex {
    fn build(frame: &DataFrame, key: &ShuffleKey) -> DfResult<RowIndex> {
        validate_key(frame, key)?;
        let encoder = KeyEncoder::new(frame, key);
        let mut map: HashMap<u64, Vec<usize>> = HashMap::with_capacity(frame.n_rows());
        for i in 0..frame.n_rows() {
            map.entry(encoder.hash(i)).or_default().push(i);
        }
        Ok(RowIndex { map })
    }

    fn candidates(&self, hash: u64) -> &[usize] {
        self.map.get(&hash).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Tag every band with a trailing column of global row positions so order can be
/// restored after a hash shuffle scatters the rows. Band offsets come from grid
/// metadata, so no band is loaded before its own worker task runs.
fn tag_bands(
    executor: &ParallelExecutor,
    bands: Vec<Partition>,
    label: &Cell,
) -> DfResult<Vec<Partition>> {
    let store = executor.store().cloned();
    let mut offset = 0usize;
    let items: Vec<(Partition, usize)> = bands
        .into_iter()
        .map(|part| {
            let start = offset;
            offset += part.n_rows();
            (part, start)
        })
        .collect();
    executor.par_map(items, |_, (part, start)| {
        let mut band = part.into_materialized()?;
        let cells: Vec<Cell> = (0..band.n_rows())
            .map(|i| Cell::Int((start + i) as i64))
            .collect();
        band.push_column(label.clone(), Column::new(cells))?;
        Partition::new_in(band, start, 0, store.as_ref())
    })
}

/// Sort per-bucket result partitions back into input order by their integer
/// position-tag columns (identified by *position*, never by label — user columns are
/// free to share the sentinel labels), project the tags away, and emit the result as
/// band partitions of at most `band_rows` rows so downstream operators keep their
/// partition parallelism. Null primary tags (the OUTER join's unmatched-right block)
/// sort last, minor tags breaking the tie.
///
/// The restoration itself is banded, so the combined result is never materialised in
/// one piece: primary tags lie in `0..tag_span`, so that span is carved into
/// contiguous value ranges (sized from the total row count so a range holds
/// ~`band_rows` rows); each bucket is loaded once and split into per-range slices,
/// then each range assembles only its own slices, sorts them by the full tag tuple
/// and projects the tags away. Concatenating the ranges in order is a global sort
/// because the range of a row is monotone in its primary tag.
fn restore_order(
    executor: &ParallelExecutor,
    parts: Vec<Partition>,
    tag_positions: &[usize],
    tag_span: usize,
    band_rows: usize,
) -> DfResult<Vec<Partition>> {
    let store = executor.store().cloned();
    let total_rows: usize = parts.iter().map(Partition::n_rows).sum();
    let n_ranges = total_rows.div_ceil(band_rows.max(1)).max(1);
    let primary = tag_positions[0];
    let span = tag_span.max(1);
    // Phase 1: split every bucket into per-range slices (plus a trailing range for
    // null primary tags), loading one bucket per worker at a time.
    let split = executor.par_map(parts, |_, part| {
        let frame = part.into_materialized()?;
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); n_ranges + 1];
        for i in 0..frame.n_rows() {
            let bin = match frame.columns()[primary].cells()[i].as_i64() {
                Some(t) => ((t.max(0) as usize).min(span - 1) * n_ranges / span).min(n_ranges - 1),
                None => n_ranges,
            };
            bins[bin].push(i);
        }
        bins.into_iter()
            .map(|rows| Partition::new_in(frame.take_rows(&rows)?, 0, 0, store.as_ref()))
            .collect::<DfResult<Vec<_>>>()
    })?;
    let mut per_range: Vec<Vec<Partition>> = (0..n_ranges + 1)
        .map(|_| Vec::with_capacity(split.len()))
        .collect();
    for bucket_ranges in split {
        for (r, slice) in bucket_ranges.into_iter().enumerate() {
            per_range[r].push(slice);
        }
    }
    // Phase 2: per range, assemble only that range's slices, sort by the tag tuple,
    // project the tags away, and re-band.
    let tag_positions = tag_positions.to_vec();
    let banded = executor.par_map(per_range, |_, slices| {
        let frame = assemble_parts(slices)?;
        let tag = |j: usize, i: usize| frame.columns()[j].cells()[i].as_i64();
        let mut order: Vec<usize> = (0..frame.n_rows()).collect();
        // Tag tuples are unique by construction, so an unstable sort is deterministic.
        order.sort_unstable_by(|&a, &b| {
            for &j in &tag_positions {
                let ord = match (tag(j, a), tag(j, b)) {
                    (Some(x), Some(y)) => x.cmp(&y),
                    (Some(_), None) => Ordering::Less,
                    (None, Some(_)) => Ordering::Greater,
                    (None, None) => Ordering::Equal,
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        let keep: Vec<usize> = (0..frame.n_cols())
            .filter(|j| !tag_positions.contains(j))
            .collect();
        let col_labels = Labels::new(
            keep.iter()
                .map(|&j| frame.col_labels().get(j).cloned().unwrap_or(Cell::Null))
                .collect(),
        );
        let mut bands = Vec::with_capacity(order.len().div_ceil(band_rows.max(1)).max(1));
        let mut chunks: Vec<&[usize]> = order.chunks(band_rows.max(1)).collect();
        if chunks.is_empty() {
            // Keep an explicit empty band so the grid preserves the column structure.
            chunks.push(&[]);
        }
        for positions in chunks {
            let columns: Vec<Column> = keep
                .iter()
                .map(|&j| gather(&frame.columns()[j], positions))
                .collect();
            let row_labels = frame.row_labels().select(positions)?;
            bands.push(Partition::new_in(
                DataFrame::from_parts(columns, row_labels, col_labels.clone())?,
                0,
                0,
                store.as_ref(),
            )?);
        }
        Ok(bands)
    })?;
    // Flatten in range order, dropping the empty bands empty ranges produce (but
    // keeping one so an all-empty result still carries its column structure).
    let mut bands: Vec<Partition> = Vec::new();
    let mut structural_empty: Option<Partition> = None;
    for part in banded.into_iter().flatten() {
        if part.n_rows() > 0 {
            bands.push(part);
        } else if structural_empty.is_none() {
            structural_empty = Some(part);
        }
    }
    if bands.is_empty() {
        bands.extend(structural_empty);
    }
    Ok(bands)
}

/// Clone the cells of `column` at `positions` into a new column, keeping a known
/// domain (row selection cannot change a column's domain).
fn gather(column: &Column, positions: &[usize]) -> Column {
    let cells: Vec<Cell> = positions
        .iter()
        .map(|&i| column.cells()[i].clone())
        .collect();
    preserve_domain(column, cells)
}

/// Like [`gather`], but `None` positions produce nulls (null-extension of unmatched
/// join rows). Null belongs to every domain, so a known domain still survives.
fn gather_optional(column: &Column, positions: &[Option<usize>]) -> Column {
    let cells: Vec<Cell> = positions
        .iter()
        .map(|p| match p {
            Some(i) => column.cells()[*i].clone(),
            None => Cell::Null,
        })
        .collect();
    preserve_domain(column, cells)
}

fn preserve_domain(source: &Column, cells: Vec<Cell>) -> Column {
    match source.known_domain() {
        Some(domain) => Column::with_domain(cells, domain),
        None => Column::new(cells),
    }
}

// ---------------------------------------------------------------------------
// JOIN
// ---------------------------------------------------------------------------

/// Resolved key/value column layout of one join.
struct JoinLayout {
    left_key: ShuffleKey,
    right_key: ShuffleKey,
    /// Right columns emitted after the left columns (all of them for a label join,
    /// the non-key ones for a column join).
    right_value_positions: Vec<usize>,
}

/// Resolve the layout from the two inputs' column labels alone, so callers can use
/// band *metadata* (handle-cached labels) instead of materialising a sample band.
fn join_layout(left_labels: &Labels, right_labels: &Labels, on: &JoinOn) -> DfResult<JoinLayout> {
    match on {
        JoinOn::RowLabels => Ok(JoinLayout {
            left_key: ShuffleKey::RowLabels,
            right_key: ShuffleKey::RowLabels,
            right_value_positions: (0..right_labels.len()).collect(),
        }),
        JoinOn::Columns(keys) => {
            let left_positions: Vec<usize> = keys
                .iter()
                .map(|k| left_labels.position_of(k, "column"))
                .collect::<DfResult<_>>()?;
            let right_positions: Vec<usize> = keys
                .iter()
                .map(|k| right_labels.position_of(k, "column"))
                .collect::<DfResult<_>>()?;
            let right_value_positions: Vec<usize> = (0..right_labels.len())
                .filter(|j| !right_positions.contains(j))
                .collect();
            Ok(JoinLayout {
                left_key: ShuffleKey::Positions(left_positions),
                right_key: ShuffleKey::Positions(right_positions),
                right_value_positions,
            })
        }
    }
}

/// Hash-join one left band against an indexed right frame, preserving left order.
/// Returns the joined band plus the set of matched right rows (for OUTER joins).
fn join_band(
    band: &DataFrame,
    right: &DataFrame,
    index: &RowIndex,
    layout: &JoinLayout,
    how: JoinType,
) -> DfResult<(DataFrame, Vec<bool>)> {
    let mut left_take: Vec<usize> = Vec::new();
    let mut right_take: Vec<Option<usize>> = Vec::new();
    let mut matched = vec![false; right.n_rows()];
    let encoder = KeyEncoder::new(band, &layout.left_key);
    for i in 0..band.n_rows() {
        let mut any = false;
        for &rp in index.candidates(encoder.hash(i)) {
            if keys_match(band, i, &layout.left_key, right, rp, &layout.right_key) {
                any = true;
                matched[rp] = true;
                left_take.push(i);
                right_take.push(Some(rp));
            }
        }
        if !any && matches!(how, JoinType::Left | JoinType::Outer) {
            left_take.push(i);
            right_take.push(None);
        }
    }
    let mut columns: Vec<Column> =
        Vec::with_capacity(band.n_cols() + layout.right_value_positions.len());
    for column in band.columns() {
        columns.push(gather(column, &left_take));
    }
    for &j in &layout.right_value_positions {
        columns.push(gather_optional(&right.columns()[j], &right_take));
    }
    let col_labels = joined_col_labels(band.col_labels(), right, layout);
    let row_labels = band.row_labels().select(&left_take)?;
    Ok((
        DataFrame::from_parts(columns, row_labels, col_labels)?,
        matched,
    ))
}

fn joined_col_labels(left_labels: &Labels, right: &DataFrame, layout: &JoinLayout) -> Labels {
    let value_labels = Labels::new(
        layout
            .right_value_positions
            .iter()
            .map(|&j| right.col_labels().get(j).cloned().unwrap_or(Cell::Null))
            .collect(),
    );
    left_labels.concat(&value_labels)
}

/// The OUTER-join tail: right rows nobody matched, null-extended on the left side
/// (with right key values pulled into the left key columns for column joins), in
/// right order. `left_labels` are the pre-join left column labels.
fn unmatched_right_frame(
    left_labels: &Labels,
    right: &DataFrame,
    layout: &JoinLayout,
    matched: &[bool],
) -> DfResult<DataFrame> {
    let positions: Vec<usize> = (0..right.n_rows()).filter(|&i| !matched[i]).collect();
    let mut columns: Vec<Column> =
        Vec::with_capacity(left_labels.len() + layout.right_value_positions.len());
    for j in 0..left_labels.len() {
        let from_right_key = match (&layout.left_key, &layout.right_key) {
            (ShuffleKey::Positions(lp), ShuffleKey::Positions(rp)) => {
                lp.iter().position(|&p| p == j).map(|k| rp[k])
            }
            _ => None,
        };
        match from_right_key {
            Some(rj) => columns.push(gather(&right.columns()[rj], &positions)),
            None => columns.push(Column::new(vec![Cell::Null; positions.len()])),
        }
    }
    for &j in &layout.right_value_positions {
        columns.push(gather(&right.columns()[j], &positions));
    }
    let col_labels = joined_col_labels(left_labels, right, layout);
    let row_labels = right.row_labels().select(&positions)?;
    DataFrame::from_parts(columns, row_labels, col_labels)
}

/// Partition-parallel ordered JOIN.
///
/// When the right (build) side has at most `broadcast_rows` rows it is assembled once
/// and broadcast: every left band probes the shared index in parallel and the output
/// keeps left order for free. Larger build sides take the shuffle path: both inputs
/// are tagged with their global positions, hash-shuffled on the join key into
/// co-partitioned buckets, joined bucket-by-bucket in parallel, and the combined
/// result is sorted back by the position tags (left first, then right — exactly the
/// reference order, including the trailing unmatched-right block of OUTER joins).
pub fn parallel_join(
    executor: &ParallelExecutor,
    left: PartitionGrid,
    right: PartitionGrid,
    on: &JoinOn,
    how: JoinType,
    options: ShuffleOptions,
) -> DfResult<PartitionGrid> {
    let (right_rows, _) = right.shape();
    if right_rows <= options.broadcast_rows {
        return broadcast_join(executor, left, right, on, how);
    }
    shuffle_join(executor, left, right, on, how, options)
}

fn broadcast_join(
    executor: &ParallelExecutor,
    left: PartitionGrid,
    right: PartitionGrid,
    on: &JoinOn,
    how: JoinType,
) -> DfResult<PartitionGrid> {
    let store = executor.store().cloned();
    let right_frame = right.into_dataframe()?;
    let bands = left.into_band_partitions(store.as_ref())?;
    // The layout is resolved from band metadata (handle-cached column labels), so no
    // band is loaded outside its own worker task.
    let left_labels = bands[0].col_labels()?;
    let layout = join_layout(&left_labels, right_frame.col_labels(), on)?;
    let index = RowIndex::build(&right_frame, &layout.right_key)?;
    let results = executor.par_map(bands, |_, part| {
        let band = part.into_materialized()?;
        let (frame, band_matched) = join_band(&band, &right_frame, &index, &layout, how)?;
        drop(band);
        Ok((
            Partition::new_in(frame, 0, 0, store.as_ref())?,
            band_matched,
        ))
    })?;
    let mut matched = vec![false; right_frame.n_rows()];
    let mut parts = Vec::with_capacity(results.len() + 1);
    for (part, band_matched) in results {
        for (slot, hit) in matched.iter_mut().zip(band_matched) {
            *slot |= hit;
        }
        parts.push(part);
    }
    if matches!(how, JoinType::Outer) {
        let tail = unmatched_right_frame(&left_labels, &right_frame, &layout, &matched)?;
        parts.push(Partition::new_in(tail, 0, 0, store.as_ref())?);
    }
    Ok(PartitionGrid::from_band_partitions(parts))
}

fn shuffle_join(
    executor: &ParallelExecutor,
    left: PartitionGrid,
    right: PartitionGrid,
    on: &JoinOn,
    how: JoinType,
    options: ShuffleOptions,
) -> DfResult<PartitionGrid> {
    let store = executor.store().cloned();
    let (left_rows, _) = left.shape();
    let lpos = Cell::Str(POS_LABEL.to_string());
    let rpos = Cell::Str(RIGHT_POS_LABEL.to_string());
    let left_bands = tag_bands(executor, left.into_band_partitions(store.as_ref())?, &lpos)?;
    let right_bands = tag_bands(executor, right.into_band_partitions(store.as_ref())?, &rpos)?;
    let left_tagged_cols = left_bands[0].n_cols();
    let layout = join_layout(
        &left_bands[0].col_labels()?,
        &right_bands[0].col_labels()?,
        on,
    )?;
    let left_shuffled = shuffle_bands(executor, left_bands, &layout.left_key, options.buckets)?;
    let right_shuffled = shuffle_bands(executor, right_bands, &layout.right_key, options.buckets)?;
    let pairs: Vec<(Partition, Partition)> =
        left_shuffled.into_iter().zip(right_shuffled).collect();
    let joined = executor.par_map(pairs, |_, (left_part, right_part)| {
        let left_bucket = left_part.into_materialized()?;
        let right_bucket = right_part.into_materialized()?;
        let index = RowIndex::build(&right_bucket, &layout.right_key)?;
        let (frame, matched) = join_band(&left_bucket, &right_bucket, &index, &layout, how)?;
        let result = if matches!(how, JoinType::Outer) {
            // Keys are co-partitioned, so a right row unmatched in its bucket is
            // unmatched globally.
            let tail =
                unmatched_right_frame(left_bucket.col_labels(), &right_bucket, &layout, &matched)?;
            setops::union_all(vec![frame, tail])?
        } else {
            frame
        };
        Partition::new_in(result, 0, 0, store.as_ref())
    })?;
    // The tags sit at structurally known positions: the left tag is the last left
    // column, the right tag is the last column overall (it is the right input's
    // trailing column, and value columns keep their relative order). Left tags span
    // the left input's row count.
    let lpos_at = left_tagged_cols - 1;
    let rpos_at = joined[0].n_cols() - 1;
    let bands = restore_order(
        executor,
        joined,
        &[lpos_at, rpos_at],
        left_rows,
        options.band_rows,
    )?;
    Ok(PartitionGrid::from_band_partitions(bands))
}

// ---------------------------------------------------------------------------
// DROP DUPLICATES and DIFFERENCE
// ---------------------------------------------------------------------------

/// Partition-parallel ordered DROP DUPLICATES: shuffle on the full-row hash so every
/// duplicate family is co-located (still in global order within its bucket), keep each
/// bucket's first occurrences in parallel, then restore global order via the position
/// tag.
pub fn parallel_drop_duplicates(
    executor: &ParallelExecutor,
    grid: PartitionGrid,
    options: ShuffleOptions,
) -> DfResult<PartitionGrid> {
    let store = executor.store().cloned();
    let (n_rows, n_cols) = grid.shape();
    let pos = Cell::Str(POS_LABEL.to_string());
    let tagged = tag_bands(executor, grid.into_band_partitions(store.as_ref())?, &pos)?;
    let key = ShuffleKey::Positions((0..n_cols).collect());
    let shuffled = shuffle_bands(executor, tagged, &key, options.buckets)?;
    let kept = executor.par_map(shuffled, |_, part| {
        let bucket = part.into_materialized()?;
        let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut keep: Vec<usize> = Vec::new();
        let encoder = KeyEncoder::new(&bucket, &key);
        for i in 0..bucket.n_rows() {
            let candidates = seen.entry(encoder.hash(i)).or_default();
            let duplicate = candidates
                .iter()
                .any(|&j| keys_match(&bucket, i, &key, &bucket, j, &key));
            if !duplicate {
                candidates.push(i);
                keep.push(i);
            }
        }
        Partition::new_in(bucket.take_rows(&keep)?, 0, 0, store.as_ref())
    })?;
    // The position tag is the trailing column appended by tag_bands; tags span the
    // input's row count.
    let pos_at = kept[0].n_cols() - 1;
    let bands = restore_order(executor, kept, &[pos_at], n_rows, options.band_rows)?;
    Ok(PartitionGrid::from_band_partitions(bands))
}

/// Partition-parallel ordered DIFFERENCE (anti-join on whole rows). Small right sides
/// are broadcast — each left band filters against the shared row index in parallel and
/// band order is preserved outright; larger right sides are co-partitioned by row hash
/// and order is restored via the position tag.
pub fn parallel_difference(
    executor: &ParallelExecutor,
    left: PartitionGrid,
    right: PartitionGrid,
    options: ShuffleOptions,
) -> DfResult<PartitionGrid> {
    let store = executor.store().cloned();
    let (left_rows, _) = left.shape();
    let (right_rows, n_cols) = right.shape();
    let key = ShuffleKey::Positions((0..n_cols).collect());
    if right_rows <= options.broadcast_rows {
        let right_frame = right.into_dataframe()?;
        let index = RowIndex::build(&right_frame, &key)?;
        let filtered =
            executor.par_map(left.into_band_partitions(store.as_ref())?, |_, part| {
                let band = part.into_materialized()?;
                let encoder = KeyEncoder::new(&band, &key);
                let keep: Vec<usize> = (0..band.n_rows())
                    .filter(|&i| {
                        !index
                            .candidates(encoder.hash(i))
                            .iter()
                            .any(|&rp| keys_match(&band, i, &key, &right_frame, rp, &key))
                    })
                    .collect();
                drop(encoder);
                Partition::new_in(band.take_rows(&keep)?, 0, 0, store.as_ref())
            })?;
        return Ok(PartitionGrid::from_band_partitions(filtered));
    }
    let pos = Cell::Str(POS_LABEL.to_string());
    let tagged = tag_bands(executor, left.into_band_partitions(store.as_ref())?, &pos)?;
    let left_shuffled = shuffle_bands(executor, tagged, &key, options.buckets)?;
    let right_shuffled = shuffle_bands(
        executor,
        right.into_band_partitions(store.as_ref())?,
        &key,
        options.buckets,
    )?;
    let pairs: Vec<(Partition, Partition)> =
        left_shuffled.into_iter().zip(right_shuffled).collect();
    let filtered = executor.par_map(pairs, |_, (left_part, right_part)| {
        let left_bucket = left_part.into_materialized()?;
        let right_bucket = right_part.into_materialized()?;
        let index = RowIndex::build(&right_bucket, &key)?;
        let encoder = KeyEncoder::new(&left_bucket, &key);
        let keep: Vec<usize> = (0..left_bucket.n_rows())
            .filter(|&i| {
                !index
                    .candidates(encoder.hash(i))
                    .iter()
                    .any(|&rp| keys_match(&left_bucket, i, &key, &right_bucket, rp, &key))
            })
            .collect();
        drop(encoder);
        Partition::new_in(left_bucket.take_rows(&keep)?, 0, 0, store.as_ref())
    })?;
    let pos_at = filtered[0].n_cols() - 1;
    let bands = restore_order(executor, filtered, &[pos_at], left_rows, options.band_rows)?;
    Ok(PartitionGrid::from_band_partitions(bands))
}

// ---------------------------------------------------------------------------
// SORT
// ---------------------------------------------------------------------------

/// How many sample keys each band contributes per target range when choosing range
/// splitters for the parallel sort.
const SORT_OVERSAMPLE: usize = 8;

/// Partition-parallel stable SORT: sort every band in parallel (collecting splitter
/// samples in the same pass, so no band is loaded twice for sampling), pick range
/// splitters from the sorted sample, carve each sorted band into contiguous per-range
/// runs, and k-way-merge each range's runs in parallel. The output grid's bands are
/// the sorted ranges in order, so assembly is a plain concatenation.
pub fn parallel_sort(
    executor: &ParallelExecutor,
    grid: PartitionGrid,
    spec: &SortSpec,
    buckets: usize,
) -> DfResult<PartitionGrid> {
    let store = executor.store().cloned();
    let bands = grid.into_band_partitions(store.as_ref())?;
    // Key columns are resolved from band metadata — no sample band is loaded.
    let band_labels = bands[0].col_labels()?;
    let key_positions: Vec<usize> = spec
        .by
        .iter()
        .map(|k| band_labels.position_of(k, "column"))
        .collect::<DfResult<_>>()?;
    let p = buckets.max(1);
    let per_band = p * SORT_OVERSAMPLE;
    // The per-band sort is a self-contained [`BandTask`], so it runs on the
    // executor's backend; splitter *sampling* stays driver-side because it feeds
    // the cross-band splitter choice, which no single band can compute.
    let sort_task = BandTask::SortBand(spec.clone());
    let sorted_with_samples = executor.par_map(bands, |_, part| {
        let band = part.into_materialized()?;
        let sorted = executor
            .run_task(&sort_task, vec![band])?
            .pop()
            .ok_or_else(|| DfError::internal("sort task returned no output band"))?;
        let mut samples: Vec<Vec<Cell>> = Vec::new();
        let n = sorted.n_rows();
        if p > 1 && n > 0 {
            let take = per_band.min(n);
            for s in 0..take {
                let i = s * n / take;
                samples.push(
                    key_positions
                        .iter()
                        .map(|&j| sorted.columns()[j].cells()[i].clone())
                        .collect(),
                );
            }
        }
        Ok((Partition::new_in(sorted, 0, 0, store.as_ref())?, samples))
    })?;
    let mut sorted_bands = Vec::with_capacity(sorted_with_samples.len());
    let mut samples: Vec<Vec<Cell>> = Vec::new();
    for (part, band_samples) in sorted_with_samples {
        sorted_bands.push(part);
        samples.extend(band_samples);
    }
    let splitters = splitters_from_samples(samples, spec, p);
    executor.record_shuffle();
    let ranged = executor.par_map(sorted_bands, |_, part| {
        let band = part.into_materialized()?;
        split_sorted_band(&band, &key_positions, spec, &splitters)
            .into_iter()
            .map(|run| Partition::new_in(run, 0, 0, store.as_ref()))
            .collect::<DfResult<Vec<_>>>()
    })?;
    let n_ranges = splitters.len() + 1;
    let mut per_range: Vec<Vec<Partition>> = (0..n_ranges)
        .map(|_| Vec::with_capacity(ranged.len()))
        .collect();
    for band_ranges in ranged {
        for (r, run) in band_ranges.into_iter().enumerate() {
            per_range[r].push(run);
        }
    }
    let merged = executor.par_map(per_range, |_, parts| {
        let runs: Vec<DataFrame> = parts
            .into_iter()
            .map(Partition::into_materialized)
            .collect::<DfResult<_>>()?;
        Partition::new_in(
            merge_sorted_runs(runs, &key_positions, spec)?,
            0,
            0,
            store.as_ref(),
        )
    })?;
    Ok(PartitionGrid::from_band_partitions(merged))
}

/// Compare two key tuples under the sort spec's per-key direction.
fn compare_keys(a: &[Cell], b: &[Cell], spec: &SortSpec) -> Ordering {
    for (idx, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let mut ord = x.total_cmp(y);
        if !spec.is_ascending(idx) {
            ord = ord.reverse();
        }
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Compare a key tuple against row `i` of `frame` under the sort spec.
fn compare_key_to_row(
    key: &[Cell],
    frame: &DataFrame,
    i: usize,
    key_positions: &[usize],
    spec: &SortSpec,
) -> Ordering {
    for (idx, (k, &j)) in key.iter().zip(key_positions.iter()).enumerate() {
        let mut ord = k.total_cmp(&frame.columns()[j].cells()[i]);
        if !spec.is_ascending(idx) {
            ord = ord.reverse();
        }
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Compare row `ai` of `a` against row `bi` of `b` under the sort spec.
fn compare_rows(
    a: &DataFrame,
    ai: usize,
    b: &DataFrame,
    bi: usize,
    key_positions: &[usize],
    spec: &SortSpec,
) -> Ordering {
    for (idx, &j) in key_positions.iter().enumerate() {
        let mut ord = a.columns()[j].cells()[ai].total_cmp(&b.columns()[j].cells()[bi]);
        if !spec.is_ascending(idx) {
            ord = ord.reverse();
        }
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Pick `p - 1` splitter keys at even quantiles of the sorted sample (the samples were
/// taken at regular intervals of each sorted band, in band order, so the choice is a
/// pure function of the data — identical across thread counts and runs).
fn splitters_from_samples(
    mut samples: Vec<Vec<Cell>>,
    spec: &SortSpec,
    p: usize,
) -> Vec<Vec<Cell>> {
    if p <= 1 || samples.is_empty() {
        return Vec::new();
    }
    samples.sort_by(|a, b| compare_keys(a, b, spec));
    (1..p)
        .map(|b| samples[(b * samples.len() / p).min(samples.len() - 1)].clone())
        .collect()
}

/// Carve a sorted band into `splitters.len() + 1` contiguous range slices: range `r`
/// holds the rows greater than splitter `r - 1` and at most splitter `r`.
fn split_sorted_band(
    band: &DataFrame,
    key_positions: &[usize],
    spec: &SortSpec,
    splitters: &[Vec<Cell>],
) -> Vec<DataFrame> {
    if splitters.is_empty() {
        return vec![band.clone()];
    }
    let mut bounds = Vec::with_capacity(splitters.len() + 2);
    bounds.push(0usize);
    let mut start = 0usize;
    for splitter in splitters {
        // First index (>= start) whose row sorts strictly after the splitter.
        let mut lo = start;
        let mut hi = band.n_rows();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if compare_key_to_row(splitter, band, mid, key_positions, spec) == Ordering::Less {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        bounds.push(lo);
        start = lo;
    }
    bounds.push(band.n_rows());
    bounds
        .windows(2)
        .map(|w| band.slice_rows(w[0], w[1]))
        .collect()
}

/// Stable k-way merge of per-band sorted runs: ties resolve to the lowest band index,
/// which — combined with stable per-band sorts — preserves the original global order
/// of equal keys.
fn merge_sorted_runs(
    runs: Vec<DataFrame>,
    key_positions: &[usize],
    spec: &SortSpec,
) -> DfResult<DataFrame> {
    let mut runs = runs;
    if runs.len() <= 1 {
        return Ok(runs.pop().unwrap_or_else(DataFrame::empty));
    }
    let total: usize = runs.iter().map(DataFrame::n_rows).sum();
    let mut heads = vec![0usize; runs.len()];
    let mut order: Vec<(usize, usize)> = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (r, run) in runs.iter().enumerate() {
            if heads[r] >= run.n_rows() {
                continue;
            }
            best = Some(match best {
                None => r,
                Some(b) => {
                    if compare_rows(run, heads[r], &runs[b], heads[b], key_positions, spec)
                        == Ordering::Less
                    {
                        r
                    } else {
                        b
                    }
                }
            });
        }
        match best {
            Some(r) => {
                order.push((r, heads[r]));
                heads[r] += 1;
            }
            None => break,
        }
    }
    let n_cols = runs[0].n_cols();
    let mut columns: Vec<Column> = Vec::with_capacity(n_cols);
    for j in 0..n_cols {
        let mut cells = Vec::with_capacity(total);
        for &(r, i) in &order {
            cells.push(runs[r].columns()[j].cells()[i].clone());
        }
        let mut domain = runs[0].columns()[j].known_domain();
        for run in runs.iter().skip(1) {
            if run.columns()[j].known_domain() != domain {
                domain = None;
            }
        }
        columns.push(match domain {
            Some(domain) => Column::with_domain(cells, domain),
            None => Column::new(cells),
        });
    }
    let mut labels = Vec::with_capacity(total);
    for &(r, i) in &order {
        labels.push(runs[r].row_labels().as_slice()[i].clone());
    }
    DataFrame::from_parts(columns, Labels::new(labels), runs[0].col_labels().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionConfig, PartitionScheme};
    use df_core::ops::group;
    use df_storage::spill::SpillStore;
    use df_types::cell::cell;
    use std::sync::Arc;

    fn opts(buckets: usize, band_rows: usize, broadcast_rows: usize) -> ShuffleOptions {
        ShuffleOptions {
            buckets,
            band_rows,
            broadcast_rows,
        }
    }

    fn grid_of(df: &DataFrame, rows: usize) -> PartitionGrid {
        PartitionGrid::from_dataframe(
            df,
            PartitionScheme::Row,
            PartitionConfig {
                target_rows: rows,
                target_cols: 8,
            },
        )
        .unwrap()
    }

    fn mixed_frame(rows: usize) -> DataFrame {
        let k: Vec<Cell> = (0..rows)
            .map(|i| {
                if i % 11 == 0 {
                    Cell::Null
                } else {
                    cell((i % 5) as i64)
                }
            })
            .collect();
        let v: Vec<Cell> = (0..rows).map(|i| cell((i as f64) * 0.5)).collect();
        let s: Vec<Cell> = (0..rows).map(|i| cell(format!("s{}", i % 3))).collect();
        DataFrame::from_columns(vec!["k", "v", "s"], vec![k, v, s]).unwrap()
    }

    #[test]
    fn shuffle_co_locates_keys_and_preserves_per_bucket_order() {
        let df = mixed_frame(60);
        let executor = ParallelExecutor::new(2);
        let grid = grid_of(&df, 13);
        let key = ShuffleKey::Positions(vec![0]);
        let shuffled = grid.shuffle(&executor, &key, 4).unwrap();
        assert_eq!(shuffled.n_row_bands(), 4);
        assert_eq!(shuffled.shape(), (60, 3));
        assert!(executor.shuffles_run() >= 1);
        // Every key family lives in exactly one bucket, and position tags (column v
        // doubles as one: v = row / 2) are increasing within each bucket.
        let mut homes: HashMap<u64, usize> = HashMap::new();
        for (b, band) in shuffled.row_bands().unwrap().iter().enumerate() {
            let mut last_v = f64::NEG_INFINITY;
            for i in 0..band.n_rows() {
                let h = row_hash(band, i, &key);
                assert_eq!(*homes.entry(h).or_insert(b), b, "key split across buckets");
                let v = band.columns()[1].cells()[i].as_f64().unwrap();
                assert!(v > last_v, "bucket broke global row order");
                last_v = v;
            }
        }
    }

    #[test]
    fn shuffle_validates_key_positions() {
        let df = mixed_frame(10);
        let executor = ParallelExecutor::new(1);
        let grid = grid_of(&df, 4);
        assert!(grid
            .shuffle(&executor, &ShuffleKey::Positions(vec![9]), 2)
            .is_err());
    }

    #[test]
    fn range_sort_matches_reference_for_all_directions() {
        let df = mixed_frame(57);
        let executor = ParallelExecutor::new(3);
        for ascending in [vec![true], vec![false], vec![false, true]] {
            let spec = SortSpec {
                by: vec![cell("k"), cell("v")],
                ascending,
                stable: true,
            };
            let expected = group::sort(&df, &spec).unwrap();
            let sorted = parallel_sort(&executor, grid_of(&df, 9), &spec, 4)
                .unwrap()
                .assemble()
                .unwrap();
            assert!(
                sorted.same_data(&expected),
                "parallel sort diverged for {spec:?}"
            );
        }
    }

    #[test]
    fn shuffle_join_and_broadcast_join_agree_with_reference() {
        let left = mixed_frame(40);
        let right = {
            let k: Vec<Cell> = (0..12).map(|i| cell((i % 6) as i64)).collect();
            let w: Vec<Cell> = (0..12).map(|i| cell(i as i64 * 10)).collect();
            DataFrame::from_columns(vec!["k", "w"], vec![k, w]).unwrap()
        };
        let on = JoinOn::Columns(vec![cell("k")]);
        let executor = ParallelExecutor::new(2);
        for how in [JoinType::Inner, JoinType::Left, JoinType::Outer] {
            let expected = setops::join(&left, &right, &on, how).unwrap();
            for broadcast_rows in [usize::MAX, 0] {
                let joined = parallel_join(
                    &executor,
                    grid_of(&left, 7),
                    grid_of(&right, 5),
                    &on,
                    how,
                    opts(3, 10, broadcast_rows),
                )
                .unwrap()
                .assemble()
                .unwrap();
                assert!(
                    joined.same_data(&expected),
                    "join {how:?} (broadcast_rows={broadcast_rows}) diverged\nexpected:\n{expected}\ngot:\n{joined}"
                );
            }
        }
    }

    #[test]
    fn label_join_takes_both_paths() {
        let left = mixed_frame(12)
            .with_row_labels((0..12).map(|i| format!("r{}", i % 7)).collect::<Vec<_>>())
            .unwrap();
        let right = mixed_frame(9)
            .with_row_labels((0..9).map(|i| format!("r{i}")).collect::<Vec<_>>())
            .unwrap();
        let executor = ParallelExecutor::new(2);
        for how in [JoinType::Inner, JoinType::Left, JoinType::Outer] {
            let expected = setops::join(&left, &right, &JoinOn::RowLabels, how).unwrap();
            for broadcast_rows in [usize::MAX, 0] {
                let joined = parallel_join(
                    &executor,
                    grid_of(&left, 5),
                    grid_of(&right, 4),
                    &JoinOn::RowLabels,
                    how,
                    opts(3, 10, broadcast_rows),
                )
                .unwrap()
                .assemble()
                .unwrap();
                assert!(joined.same_data(&expected), "label join {how:?} diverged");
            }
        }
    }

    #[test]
    fn drop_duplicates_and_difference_agree_with_reference() {
        let df = mixed_frame(50);
        // Duplicate-heavy frame: repeat the first 10 rows a few times.
        let dup = setops::union_all(vec![df.head(10), df.head(25), df.clone()]).unwrap();
        let executor = ParallelExecutor::new(2);
        let expected = group::drop_duplicates(&dup).unwrap();
        let deduped = parallel_drop_duplicates(&executor, grid_of(&dup, 11), opts(4, 10, 0))
            .unwrap()
            .assemble()
            .unwrap();
        assert!(deduped.same_data(&expected), "drop_duplicates diverged");

        let right = df.slice_rows(5, 30);
        let expected = setops::difference(&df, &right).unwrap();
        for broadcast_rows in [usize::MAX, 0] {
            let out = parallel_difference(
                &executor,
                grid_of(&df, 11),
                grid_of(&right, 7),
                opts(4, 10, broadcast_rows),
            )
            .unwrap()
            .assemble()
            .unwrap();
            assert!(
                out.same_data(&expected),
                "difference (broadcast_rows={broadcast_rows}) diverged"
            );
        }
    }

    #[test]
    fn user_columns_may_share_the_tag_labels() {
        // Tag columns are resolved by position, so frames whose own columns carry the
        // sentinel labels still round-trip correctly through every shuffle operator.
        let n = 30usize;
        let a: Vec<Cell> = (0..n).map(|i| cell((i % 4) as i64)).collect();
        let b: Vec<Cell> = (0..n).map(|i| cell((n - i) as i64)).collect();
        let c: Vec<Cell> = (0..n).map(|i| cell(format!("x{}", i % 3))).collect();
        let df = DataFrame::from_columns(vec![POS_LABEL, RIGHT_POS_LABEL, "key"], vec![a, b, c])
            .unwrap();
        let dup = setops::union_all(vec![df.head(8), df.clone()]).unwrap();
        let executor = ParallelExecutor::new(2);

        let deduped = parallel_drop_duplicates(&executor, grid_of(&dup, 7), opts(4, 10, 0))
            .unwrap()
            .assemble()
            .unwrap();
        assert!(deduped.same_data(&group::drop_duplicates(&dup).unwrap()));

        let right = df.slice_rows(3, 17);
        let out = parallel_difference(
            &executor,
            grid_of(&df, 7),
            grid_of(&right, 5),
            opts(4, 10, 0),
        )
        .unwrap()
        .assemble()
        .unwrap();
        assert!(out.same_data(&setops::difference(&df, &right).unwrap()));

        let on = JoinOn::Columns(vec![cell("key")]);
        for how in [JoinType::Inner, JoinType::Left, JoinType::Outer] {
            let expected = setops::join(&df, &right, &on, how).unwrap();
            let joined = parallel_join(
                &executor,
                grid_of(&df, 7),
                grid_of(&right, 5),
                &on,
                how,
                opts(3, 10, 0),
            )
            .unwrap()
            .assemble()
            .unwrap();
            assert!(
                joined.same_data(&expected),
                "join {how:?} with colliding labels diverged"
            );
        }
    }

    #[test]
    fn shuffle_operators_keep_results_banded() {
        // Order restoration re-bands its output so downstream operators stay
        // partition-parallel instead of degenerating to one giant band.
        let df = mixed_frame(64);
        let executor = ParallelExecutor::new(2);
        let deduped = parallel_drop_duplicates(&executor, grid_of(&df, 8), opts(4, 16, 0)).unwrap();
        assert!(deduped.n_row_bands() >= 4);
        assert_eq!(deduped.shape(), (64, 3));
        for band in deduped.row_bands().unwrap().iter().take(3) {
            assert_eq!(band.n_rows(), 16);
        }
        // Empty results keep their column structure in a single empty band.
        let empty =
            parallel_difference(&executor, grid_of(&df, 8), grid_of(&df, 8), opts(4, 16, 0))
                .unwrap()
                .assemble()
                .unwrap();
        assert_eq!(empty.shape(), (0, 3));
    }

    #[test]
    fn results_are_identical_across_thread_and_bucket_counts() {
        let df = mixed_frame(80);
        let spec = SortSpec::ascending(vec![cell("s"), cell("k")]);
        let reference = group::sort(&df, &spec).unwrap();
        for threads in [1, 4] {
            for buckets in [1, 3, 8] {
                let executor = ParallelExecutor::new(threads);
                let sorted = parallel_sort(&executor, grid_of(&df, 16), &spec, buckets)
                    .unwrap()
                    .assemble()
                    .unwrap();
                assert!(sorted.same_data(&reference));
                let deduped =
                    parallel_drop_duplicates(&executor, grid_of(&df, 16), opts(buckets, 9, 0))
                        .unwrap()
                        .assemble()
                        .unwrap();
                assert!(deduped.same_data(&df));
            }
        }
    }

    #[test]
    fn shuffle_operators_match_under_a_tight_spill_store() {
        // Every operator runs once without a store and once with a store whose budget
        // is a small fraction of the working set; the results must be identical and
        // the tight run must actually spill.
        let left = mixed_frame(96);
        let right = mixed_frame(40);
        let budget = left.approx_size_bytes() / 8;
        let spec = SortSpec::ascending(vec![cell("v")]);
        let on = JoinOn::Columns(vec![cell("k")]);

        let plain = ParallelExecutor::new(2);
        let store = Arc::new(SpillStore::new(budget).unwrap());
        let spilled = ParallelExecutor::new(2).with_store(Some(Arc::clone(&store)));

        let pairs: Vec<(DataFrame, DataFrame)> = vec![
            (
                parallel_sort(&plain, grid_of(&left, 12), &spec, 4)
                    .unwrap()
                    .assemble()
                    .unwrap(),
                parallel_sort(&spilled, grid_of(&left, 12), &spec, 4)
                    .unwrap()
                    .assemble()
                    .unwrap(),
            ),
            (
                parallel_drop_duplicates(&plain, grid_of(&left, 12), opts(4, 10, 0))
                    .unwrap()
                    .assemble()
                    .unwrap(),
                parallel_drop_duplicates(&spilled, grid_of(&left, 12), opts(4, 10, 0))
                    .unwrap()
                    .assemble()
                    .unwrap(),
            ),
            (
                parallel_join(
                    &plain,
                    grid_of(&left, 12),
                    grid_of(&right, 9),
                    &on,
                    JoinType::Outer,
                    opts(4, 10, 0),
                )
                .unwrap()
                .assemble()
                .unwrap(),
                parallel_join(
                    &spilled,
                    grid_of(&left, 12),
                    grid_of(&right, 9),
                    &on,
                    JoinType::Outer,
                    opts(4, 10, 0),
                )
                .unwrap()
                .assemble()
                .unwrap(),
            ),
            (
                parallel_difference(
                    &plain,
                    grid_of(&left, 12),
                    grid_of(&right, 9),
                    opts(4, 10, 0),
                )
                .unwrap()
                .assemble()
                .unwrap(),
                parallel_difference(
                    &spilled,
                    grid_of(&left, 12),
                    grid_of(&right, 9),
                    opts(4, 10, 0),
                )
                .unwrap()
                .assemble()
                .unwrap(),
            ),
        ];
        for (expected, got) in pairs {
            assert!(got.same_data(&expected), "out-of-core run diverged");
        }
        let stats = store.stats();
        assert!(
            stats.spill_outs > 0,
            "tight budget never spilled: {stats:?}"
        );
        assert!(
            stats.memory_bytes <= budget,
            "resident bytes exceed the budget at rest: {stats:?}"
        );
    }
}
