//! Hash and range shuffles: partition-parallel JOIN, SORT, DROP DUPLICATES and
//! DIFFERENCE.
//!
//! Paper §3.1 calls these the expensive operators of Table 1, and §3.3 runs them on a
//! task-parallel engine by *exchanging* rows between partitions so that every key
//! lands in exactly one partition. This module is that exchange layer:
//!
//! * [`PartitionGrid::shuffle`] is the primitive: every row band is split into `P`
//!   key-hashed buckets in parallel (via [`ParallelExecutor::par_map`]), and bucket
//!   `b` of the output concatenates the `b`-th slice of every band, so equal keys are
//!   co-located while rows within a bucket keep their global order.
//! * [`parallel_join`] hash-joins co-partitioned buckets (or broadcasts the build side
//!   when it is small), [`parallel_drop_duplicates`] and [`parallel_difference`]
//!   deduplicate/anti-join per bucket, and [`parallel_sort`] runs per-band sorts, a
//!   sampled range partitioning, and a stable k-way merge per range.
//!
//! The dataframe algebra is *ordered* (Table 1: result order comes from the parent or
//! the left argument), so the hash operators restore order afterwards: inputs are
//! tagged with their global row position before the shuffle, and the combined result
//! is sorted back by that tag and the tag projected away. Bucket hashing uses
//! [`Cell::hash_key`] through the deterministic [`StableHasher`], which makes results
//! identical across thread counts and runs.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::Hasher;

use df_types::cell::{Cell, StableHasher};
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use df_core::algebra::{JoinOn, JoinType, SortSpec};
use df_core::dataframe::{Column, DataFrame};
use df_core::ops::{group, setops};

use crate::executor::ParallelExecutor;
use crate::partition::PartitionGrid;

/// Column label used to tag the left/only input's global row positions.
const POS_LABEL: &str = "__shuffle:pos";
/// Column label used to tag the right input's global row positions in joins.
const RIGHT_POS_LABEL: &str = "__shuffle:rpos";

/// Tuning knobs threaded from the engine configuration into the shuffle operators.
#[derive(Debug, Clone, Copy)]
pub struct ShuffleOptions {
    /// Number of hash/range buckets rows are exchanged into.
    pub buckets: usize,
    /// Target rows per output band when re-banding order-restored results.
    pub band_rows: usize,
    /// JOIN / DIFFERENCE build sides up to this many rows are broadcast instead of
    /// shuffled.
    pub broadcast_rows: usize,
}

/// What a shuffle (or a per-bucket hash table) keys rows on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleKey {
    /// Hash the cells at these column positions.
    Positions(Vec<usize>),
    /// Hash the row label (JOIN on row labels).
    RowLabels,
}

impl PartitionGrid {
    /// The hash-shuffle primitive: redistribute rows into `buckets` row bands keyed by
    /// the hash of `key`, splitting every existing band in parallel and concatenating
    /// bucket-wise. Rows that share a key land in the same output band; rows within a
    /// band keep their global relative order.
    pub fn shuffle(
        &self,
        executor: &ParallelExecutor,
        key: &ShuffleKey,
        buckets: usize,
    ) -> DfResult<PartitionGrid> {
        let bands = shuffle_bands(executor, self.row_bands()?, key, buckets)?;
        Ok(PartitionGrid::from_row_bands(bands))
    }
}

/// Hash one row's key cells into a stable bucket hash.
fn row_hash(frame: &DataFrame, i: usize, key: &ShuffleKey) -> u64 {
    let mut hasher = StableHasher::default();
    match key {
        ShuffleKey::Positions(positions) => {
            for &j in positions {
                frame.columns()[j].cells()[i].hash_key(&mut hasher);
            }
        }
        ShuffleKey::RowLabels => {
            if let Some(label) = frame.row_labels().get(i) {
                label.hash_key(&mut hasher);
            }
        }
    }
    hasher.finish()
}

/// Group-key equality of two rows' key cells (the verification step behind the hash).
fn keys_match(
    a: &DataFrame,
    ai: usize,
    a_key: &ShuffleKey,
    b: &DataFrame,
    bi: usize,
    b_key: &ShuffleKey,
) -> bool {
    match (a_key, b_key) {
        (ShuffleKey::Positions(ap), ShuffleKey::Positions(bp)) => {
            ap.len() == bp.len()
                && ap.iter().zip(bp.iter()).all(|(&aj, &bj)| {
                    a.columns()[aj].cells()[ai].key_eq(&b.columns()[bj].cells()[bi])
                })
        }
        (ShuffleKey::RowLabels, ShuffleKey::RowLabels) => {
            match (a.row_labels().get(ai), b.row_labels().get(bi)) {
                (Some(x), Some(y)) => x.key_eq(y),
                _ => false,
            }
        }
        _ => false,
    }
}

fn validate_key(frame: &DataFrame, key: &ShuffleKey) -> DfResult<()> {
    if let ShuffleKey::Positions(positions) = key {
        for &j in positions {
            if j >= frame.n_cols() {
                return Err(DfError::IndexOutOfBounds {
                    axis: "column",
                    index: j,
                    len: frame.n_cols(),
                });
            }
        }
    }
    Ok(())
}

/// Shuffle full-width row bands into `buckets` key-hashed bands.
fn shuffle_bands(
    executor: &ParallelExecutor,
    bands: Vec<DataFrame>,
    key: &ShuffleKey,
    buckets: usize,
) -> DfResult<Vec<DataFrame>> {
    let p = buckets.max(1);
    executor.record_shuffle();
    let split = executor.par_map(bands, |_, band| split_band(&band, key, p))?;
    let mut per_bucket: Vec<Vec<DataFrame>> =
        (0..p).map(|_| Vec::with_capacity(split.len())).collect();
    for band_buckets in split {
        for (b, frame) in band_buckets.into_iter().enumerate() {
            per_bucket[b].push(frame);
        }
    }
    executor.par_map(per_bucket, |_, frames| setops::union_all(frames))
}

/// Split one band into `p` key-hashed bucket slices, preserving row order per bucket.
fn split_band(band: &DataFrame, key: &ShuffleKey, p: usize) -> DfResult<Vec<DataFrame>> {
    validate_key(band, key)?;
    if p == 1 {
        return Ok(vec![band.clone()]);
    }
    let mut bucket_rows: Vec<Vec<usize>> = vec![Vec::new(); p];
    for i in 0..band.n_rows() {
        let bucket = (row_hash(band, i, key) % p as u64) as usize;
        bucket_rows[bucket].push(i);
    }
    bucket_rows
        .into_iter()
        .map(|rows| band.take_rows(&rows))
        .collect()
}

/// Hash index over one frame's rows: bucket hash -> row positions (verified against
/// [`keys_match`] before use, because distinct keys may share a hash).
struct RowIndex {
    map: HashMap<u64, Vec<usize>>,
}

impl RowIndex {
    fn build(frame: &DataFrame, key: &ShuffleKey) -> DfResult<RowIndex> {
        validate_key(frame, key)?;
        let mut map: HashMap<u64, Vec<usize>> = HashMap::with_capacity(frame.n_rows());
        for i in 0..frame.n_rows() {
            map.entry(row_hash(frame, i, key)).or_default().push(i);
        }
        Ok(RowIndex { map })
    }

    fn candidates(&self, hash: u64) -> &[usize] {
        self.map.get(&hash).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Tag every band with a trailing column of global row positions so order can be
/// restored after a hash shuffle scatters the rows.
fn tag_bands(
    executor: &ParallelExecutor,
    bands: Vec<DataFrame>,
    label: &Cell,
) -> DfResult<Vec<DataFrame>> {
    let mut offset = 0usize;
    let items: Vec<(DataFrame, usize)> = bands
        .into_iter()
        .map(|band| {
            let start = offset;
            offset += band.n_rows();
            (band, start)
        })
        .collect();
    executor.par_map(items, |_, (mut band, start)| {
        let cells: Vec<Cell> = (0..band.n_rows())
            .map(|i| Cell::Int((start + i) as i64))
            .collect();
        band.push_column(label.clone(), Column::new(cells))?;
        Ok(band)
    })
}

/// Sort a combined frame back into input order by its integer position-tag columns
/// (identified by *position*, never by label — user columns are free to share the
/// sentinel labels), project the tags away, and emit the result as row bands of at
/// most `band_rows` rows so downstream operators keep their partition parallelism.
/// Null tags (the OUTER join's unmatched-right block) sort last, minor tags breaking
/// the tie.
fn restore_order(
    executor: &ParallelExecutor,
    frame: DataFrame,
    tag_positions: &[usize],
    band_rows: usize,
) -> DfResult<Vec<DataFrame>> {
    let tag = |j: usize, i: usize| frame.columns()[j].cells()[i].as_i64();
    let mut order: Vec<usize> = (0..frame.n_rows()).collect();
    // Tag tuples are unique by construction, so an unstable sort is deterministic.
    order.sort_unstable_by(|&a, &b| {
        for &j in tag_positions {
            let ord = match (tag(j, a), tag(j, b)) {
                (Some(x), Some(y)) => x.cmp(&y),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => Ordering::Equal,
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    let keep: Vec<usize> = (0..frame.n_cols())
        .filter(|j| !tag_positions.contains(j))
        .collect();
    let col_labels = Labels::new(
        keep.iter()
            .map(|&j| frame.col_labels().get(j).cloned().unwrap_or(Cell::Null))
            .collect(),
    );
    let mut chunks: Vec<Vec<usize>> = order
        .chunks(band_rows.max(1))
        .map(<[usize]>::to_vec)
        .collect();
    if chunks.is_empty() {
        // Keep an explicit empty band so the grid preserves the column structure.
        chunks.push(Vec::new());
    }
    executor.par_map(chunks, |_, positions| {
        let columns: Vec<Column> = keep
            .iter()
            .map(|&j| gather(&frame.columns()[j], &positions))
            .collect();
        let row_labels = frame.row_labels().select(&positions)?;
        DataFrame::from_parts(columns, row_labels, col_labels.clone())
    })
}

/// Clone the cells of `column` at `positions` into a new column, keeping a known
/// domain (row selection cannot change a column's domain).
fn gather(column: &Column, positions: &[usize]) -> Column {
    let cells: Vec<Cell> = positions
        .iter()
        .map(|&i| column.cells()[i].clone())
        .collect();
    preserve_domain(column, cells)
}

/// Like [`gather`], but `None` positions produce nulls (null-extension of unmatched
/// join rows). Null belongs to every domain, so a known domain still survives.
fn gather_optional(column: &Column, positions: &[Option<usize>]) -> Column {
    let cells: Vec<Cell> = positions
        .iter()
        .map(|p| match p {
            Some(i) => column.cells()[*i].clone(),
            None => Cell::Null,
        })
        .collect();
    preserve_domain(column, cells)
}

fn preserve_domain(source: &Column, cells: Vec<Cell>) -> Column {
    match source.known_domain() {
        Some(domain) => Column::with_domain(cells, domain),
        None => Column::new(cells),
    }
}

// ---------------------------------------------------------------------------
// JOIN
// ---------------------------------------------------------------------------

/// Resolved key/value column layout of one join.
struct JoinLayout {
    left_key: ShuffleKey,
    right_key: ShuffleKey,
    /// Right columns emitted after the left columns (all of them for a label join,
    /// the non-key ones for a column join).
    right_value_positions: Vec<usize>,
}

fn join_layout(left: &DataFrame, right: &DataFrame, on: &JoinOn) -> DfResult<JoinLayout> {
    match on {
        JoinOn::RowLabels => Ok(JoinLayout {
            left_key: ShuffleKey::RowLabels,
            right_key: ShuffleKey::RowLabels,
            right_value_positions: (0..right.n_cols()).collect(),
        }),
        JoinOn::Columns(keys) => {
            let left_positions: Vec<usize> = keys
                .iter()
                .map(|k| left.col_position(k))
                .collect::<DfResult<_>>()?;
            let right_positions: Vec<usize> = keys
                .iter()
                .map(|k| right.col_position(k))
                .collect::<DfResult<_>>()?;
            let right_value_positions: Vec<usize> = (0..right.n_cols())
                .filter(|j| !right_positions.contains(j))
                .collect();
            Ok(JoinLayout {
                left_key: ShuffleKey::Positions(left_positions),
                right_key: ShuffleKey::Positions(right_positions),
                right_value_positions,
            })
        }
    }
}

/// Hash-join one left band against an indexed right frame, preserving left order.
/// Returns the joined band plus the set of matched right rows (for OUTER joins).
fn join_band(
    band: &DataFrame,
    right: &DataFrame,
    index: &RowIndex,
    layout: &JoinLayout,
    how: JoinType,
) -> DfResult<(DataFrame, Vec<bool>)> {
    let mut left_take: Vec<usize> = Vec::new();
    let mut right_take: Vec<Option<usize>> = Vec::new();
    let mut matched = vec![false; right.n_rows()];
    for i in 0..band.n_rows() {
        let mut any = false;
        for &rp in index.candidates(row_hash(band, i, &layout.left_key)) {
            if keys_match(band, i, &layout.left_key, right, rp, &layout.right_key) {
                any = true;
                matched[rp] = true;
                left_take.push(i);
                right_take.push(Some(rp));
            }
        }
        if !any && matches!(how, JoinType::Left | JoinType::Outer) {
            left_take.push(i);
            right_take.push(None);
        }
    }
    let mut columns: Vec<Column> =
        Vec::with_capacity(band.n_cols() + layout.right_value_positions.len());
    for column in band.columns() {
        columns.push(gather(column, &left_take));
    }
    for &j in &layout.right_value_positions {
        columns.push(gather_optional(&right.columns()[j], &right_take));
    }
    let col_labels = joined_col_labels(band.col_labels(), right, layout);
    let row_labels = band.row_labels().select(&left_take)?;
    Ok((
        DataFrame::from_parts(columns, row_labels, col_labels)?,
        matched,
    ))
}

fn joined_col_labels(left_labels: &Labels, right: &DataFrame, layout: &JoinLayout) -> Labels {
    let value_labels = Labels::new(
        layout
            .right_value_positions
            .iter()
            .map(|&j| right.col_labels().get(j).cloned().unwrap_or(Cell::Null))
            .collect(),
    );
    left_labels.concat(&value_labels)
}

/// The OUTER-join tail: right rows nobody matched, null-extended on the left side
/// (with right key values pulled into the left key columns for column joins), in
/// right order. `left_labels` are the pre-join left column labels.
fn unmatched_right_frame(
    left_labels: &Labels,
    right: &DataFrame,
    layout: &JoinLayout,
    matched: &[bool],
) -> DfResult<DataFrame> {
    let positions: Vec<usize> = (0..right.n_rows()).filter(|&i| !matched[i]).collect();
    let mut columns: Vec<Column> =
        Vec::with_capacity(left_labels.len() + layout.right_value_positions.len());
    for j in 0..left_labels.len() {
        let from_right_key = match (&layout.left_key, &layout.right_key) {
            (ShuffleKey::Positions(lp), ShuffleKey::Positions(rp)) => {
                lp.iter().position(|&p| p == j).map(|k| rp[k])
            }
            _ => None,
        };
        match from_right_key {
            Some(rj) => columns.push(gather(&right.columns()[rj], &positions)),
            None => columns.push(Column::new(vec![Cell::Null; positions.len()])),
        }
    }
    for &j in &layout.right_value_positions {
        columns.push(gather(&right.columns()[j], &positions));
    }
    let col_labels = joined_col_labels(left_labels, right, layout);
    let row_labels = right.row_labels().select(&positions)?;
    DataFrame::from_parts(columns, row_labels, col_labels)
}

/// Partition-parallel ordered JOIN.
///
/// When the right (build) side has at most `broadcast_rows` rows it is assembled once
/// and broadcast: every left band probes the shared index in parallel and the output
/// keeps left order for free. Larger build sides take the shuffle path: both inputs
/// are tagged with their global positions, hash-shuffled on the join key into
/// co-partitioned buckets, joined bucket-by-bucket in parallel, and the combined
/// result is sorted back by the position tags (left first, then right — exactly the
/// reference order, including the trailing unmatched-right block of OUTER joins).
pub fn parallel_join(
    executor: &ParallelExecutor,
    left: PartitionGrid,
    right: PartitionGrid,
    on: &JoinOn,
    how: JoinType,
    options: ShuffleOptions,
) -> DfResult<PartitionGrid> {
    let (right_rows, _) = right.shape();
    if right_rows <= options.broadcast_rows {
        return broadcast_join(executor, left, right, on, how);
    }
    shuffle_join(executor, left, right, on, how, options)
}

fn broadcast_join(
    executor: &ParallelExecutor,
    left: PartitionGrid,
    right: PartitionGrid,
    on: &JoinOn,
    how: JoinType,
) -> DfResult<PartitionGrid> {
    let right_frame = right.into_dataframe()?;
    let bands = left.into_row_bands()?;
    let left_labels = bands[0].col_labels().clone();
    let layout = join_layout(&bands[0], &right_frame, on)?;
    let index = RowIndex::build(&right_frame, &layout.right_key)?;
    let results = executor.par_map(bands, |_, band| {
        join_band(&band, &right_frame, &index, &layout, how)
    })?;
    let mut matched = vec![false; right_frame.n_rows()];
    let mut frames = Vec::with_capacity(results.len() + 1);
    for (frame, band_matched) in results {
        for (slot, hit) in matched.iter_mut().zip(band_matched) {
            *slot |= hit;
        }
        frames.push(frame);
    }
    if matches!(how, JoinType::Outer) {
        frames.push(unmatched_right_frame(
            &left_labels,
            &right_frame,
            &layout,
            &matched,
        )?);
    }
    Ok(PartitionGrid::from_row_bands(frames))
}

fn shuffle_join(
    executor: &ParallelExecutor,
    left: PartitionGrid,
    right: PartitionGrid,
    on: &JoinOn,
    how: JoinType,
    options: ShuffleOptions,
) -> DfResult<PartitionGrid> {
    let lpos = Cell::Str(POS_LABEL.to_string());
    let rpos = Cell::Str(RIGHT_POS_LABEL.to_string());
    let left_bands = tag_bands(executor, left.into_row_bands()?, &lpos)?;
    let right_bands = tag_bands(executor, right.into_row_bands()?, &rpos)?;
    let left_tagged_cols = left_bands[0].n_cols();
    let layout = join_layout(&left_bands[0], &right_bands[0], on)?;
    let left_shuffled = shuffle_bands(executor, left_bands, &layout.left_key, options.buckets)?;
    let right_shuffled = shuffle_bands(executor, right_bands, &layout.right_key, options.buckets)?;
    let pairs: Vec<(DataFrame, DataFrame)> =
        left_shuffled.into_iter().zip(right_shuffled).collect();
    let joined = executor.par_map(pairs, |_, (left_bucket, right_bucket)| {
        let index = RowIndex::build(&right_bucket, &layout.right_key)?;
        let (frame, matched) = join_band(&left_bucket, &right_bucket, &index, &layout, how)?;
        if matches!(how, JoinType::Outer) {
            // Keys are co-partitioned, so a right row unmatched in its bucket is
            // unmatched globally.
            let tail =
                unmatched_right_frame(left_bucket.col_labels(), &right_bucket, &layout, &matched)?;
            return setops::union_all(vec![frame, tail]);
        }
        Ok(frame)
    })?;
    let combined = setops::union_all(joined)?;
    // The tags sit at structurally known positions: the left tag is the last left
    // column, the right tag is the last column overall (it is the right input's
    // trailing column, and value columns keep their relative order).
    let lpos_at = left_tagged_cols - 1;
    let rpos_at = combined.n_cols() - 1;
    let bands = restore_order(executor, combined, &[lpos_at, rpos_at], options.band_rows)?;
    Ok(PartitionGrid::from_row_bands(bands))
}

// ---------------------------------------------------------------------------
// DROP DUPLICATES and DIFFERENCE
// ---------------------------------------------------------------------------

/// Partition-parallel ordered DROP DUPLICATES: shuffle on the full-row hash so every
/// duplicate family is co-located (still in global order within its bucket), keep each
/// bucket's first occurrences in parallel, then restore global order via the position
/// tag.
pub fn parallel_drop_duplicates(
    executor: &ParallelExecutor,
    grid: PartitionGrid,
    options: ShuffleOptions,
) -> DfResult<PartitionGrid> {
    let (_, n_cols) = grid.shape();
    let pos = Cell::Str(POS_LABEL.to_string());
    let tagged = tag_bands(executor, grid.into_row_bands()?, &pos)?;
    let key = ShuffleKey::Positions((0..n_cols).collect());
    let shuffled = shuffle_bands(executor, tagged, &key, options.buckets)?;
    let kept = executor.par_map(shuffled, |_, bucket| {
        let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut keep: Vec<usize> = Vec::new();
        for i in 0..bucket.n_rows() {
            let candidates = seen.entry(row_hash(&bucket, i, &key)).or_default();
            let duplicate = candidates
                .iter()
                .any(|&j| keys_match(&bucket, i, &key, &bucket, j, &key));
            if !duplicate {
                candidates.push(i);
                keep.push(i);
            }
        }
        bucket.take_rows(&keep)
    })?;
    let combined = setops::union_all(kept)?;
    // The position tag is the trailing column appended by tag_bands.
    let pos_at = combined.n_cols() - 1;
    let bands = restore_order(executor, combined, &[pos_at], options.band_rows)?;
    Ok(PartitionGrid::from_row_bands(bands))
}

/// Partition-parallel ordered DIFFERENCE (anti-join on whole rows). Small right sides
/// are broadcast — each left band filters against the shared row index in parallel and
/// band order is preserved outright; larger right sides are co-partitioned by row hash
/// and order is restored via the position tag.
pub fn parallel_difference(
    executor: &ParallelExecutor,
    left: PartitionGrid,
    right: PartitionGrid,
    options: ShuffleOptions,
) -> DfResult<PartitionGrid> {
    let (right_rows, n_cols) = right.shape();
    let key = ShuffleKey::Positions((0..n_cols).collect());
    if right_rows <= options.broadcast_rows {
        let right_frame = right.into_dataframe()?;
        let index = RowIndex::build(&right_frame, &key)?;
        let filtered = executor.par_map(left.into_row_bands()?, |_, band| {
            let keep: Vec<usize> = (0..band.n_rows())
                .filter(|&i| {
                    !index
                        .candidates(row_hash(&band, i, &key))
                        .iter()
                        .any(|&rp| keys_match(&band, i, &key, &right_frame, rp, &key))
                })
                .collect();
            band.take_rows(&keep)
        })?;
        return Ok(PartitionGrid::from_row_bands(filtered));
    }
    let pos = Cell::Str(POS_LABEL.to_string());
    let tagged = tag_bands(executor, left.into_row_bands()?, &pos)?;
    let left_shuffled = shuffle_bands(executor, tagged, &key, options.buckets)?;
    let right_shuffled = shuffle_bands(executor, right.into_row_bands()?, &key, options.buckets)?;
    let pairs: Vec<(DataFrame, DataFrame)> =
        left_shuffled.into_iter().zip(right_shuffled).collect();
    let filtered = executor.par_map(pairs, |_, (left_bucket, right_bucket)| {
        let index = RowIndex::build(&right_bucket, &key)?;
        let keep: Vec<usize> = (0..left_bucket.n_rows())
            .filter(|&i| {
                !index
                    .candidates(row_hash(&left_bucket, i, &key))
                    .iter()
                    .any(|&rp| keys_match(&left_bucket, i, &key, &right_bucket, rp, &key))
            })
            .collect();
        left_bucket.take_rows(&keep)
    })?;
    let combined = setops::union_all(filtered)?;
    let pos_at = combined.n_cols() - 1;
    let bands = restore_order(executor, combined, &[pos_at], options.band_rows)?;
    Ok(PartitionGrid::from_row_bands(bands))
}

// ---------------------------------------------------------------------------
// SORT
// ---------------------------------------------------------------------------

/// Partition-parallel stable SORT: sort every band in parallel, pick range splitters
/// from a sorted sample of band keys, carve each sorted band into contiguous
/// per-range runs, and k-way-merge each range's runs in parallel. The output grid's
/// bands are the sorted ranges in order, so assembly is a plain concatenation.
pub fn parallel_sort(
    executor: &ParallelExecutor,
    grid: PartitionGrid,
    spec: &SortSpec,
    buckets: usize,
) -> DfResult<PartitionGrid> {
    let bands = grid.into_row_bands()?;
    let key_positions: Vec<usize> = spec
        .by
        .iter()
        .map(|k| bands[0].col_position(k))
        .collect::<DfResult<_>>()?;
    let sorted_bands = executor.par_map(bands, |_, band| group::sort(&band, spec))?;
    let p = buckets.max(1);
    let splitters = choose_splitters(&sorted_bands, &key_positions, spec, p);
    executor.record_shuffle();
    let ranged = executor.par_map(sorted_bands, |_, band| {
        Ok(split_sorted_band(&band, &key_positions, spec, &splitters))
    })?;
    let n_ranges = splitters.len() + 1;
    let mut per_range: Vec<Vec<DataFrame>> = (0..n_ranges)
        .map(|_| Vec::with_capacity(ranged.len()))
        .collect();
    for band_ranges in ranged {
        for (r, run) in band_ranges.into_iter().enumerate() {
            per_range[r].push(run);
        }
    }
    let merged = executor.par_map(per_range, |_, runs| {
        merge_sorted_runs(runs, &key_positions, spec)
    })?;
    Ok(PartitionGrid::from_row_bands(merged))
}

/// Compare two key tuples under the sort spec's per-key direction.
fn compare_keys(a: &[Cell], b: &[Cell], spec: &SortSpec) -> Ordering {
    for (idx, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let mut ord = x.total_cmp(y);
        if !spec.is_ascending(idx) {
            ord = ord.reverse();
        }
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Compare a key tuple against row `i` of `frame` under the sort spec.
fn compare_key_to_row(
    key: &[Cell],
    frame: &DataFrame,
    i: usize,
    key_positions: &[usize],
    spec: &SortSpec,
) -> Ordering {
    for (idx, (k, &j)) in key.iter().zip(key_positions.iter()).enumerate() {
        let mut ord = k.total_cmp(&frame.columns()[j].cells()[i]);
        if !spec.is_ascending(idx) {
            ord = ord.reverse();
        }
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Compare row `ai` of `a` against row `bi` of `b` under the sort spec.
fn compare_rows(
    a: &DataFrame,
    ai: usize,
    b: &DataFrame,
    bi: usize,
    key_positions: &[usize],
    spec: &SortSpec,
) -> Ordering {
    for (idx, &j) in key_positions.iter().enumerate() {
        let mut ord = a.columns()[j].cells()[ai].total_cmp(&b.columns()[j].cells()[bi]);
        if !spec.is_ascending(idx) {
            ord = ord.reverse();
        }
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sample each sorted band at regular intervals and pick `p - 1` splitter keys at even
/// quantiles of the sorted sample. Splitters define a pure function of the key, so all
/// rows of one key family land in the same range regardless of band or thread count.
fn choose_splitters(
    bands: &[DataFrame],
    key_positions: &[usize],
    spec: &SortSpec,
    p: usize,
) -> Vec<Vec<Cell>> {
    if p <= 1 {
        return Vec::new();
    }
    const OVERSAMPLE: usize = 8;
    let per_band = p * OVERSAMPLE;
    let mut samples: Vec<Vec<Cell>> = Vec::new();
    for band in bands {
        let n = band.n_rows();
        if n == 0 {
            continue;
        }
        let take = per_band.min(n);
        for s in 0..take {
            let i = s * n / take;
            samples.push(
                key_positions
                    .iter()
                    .map(|&j| band.columns()[j].cells()[i].clone())
                    .collect(),
            );
        }
    }
    if samples.is_empty() {
        return Vec::new();
    }
    samples.sort_by(|a, b| compare_keys(a, b, spec));
    (1..p)
        .map(|b| samples[(b * samples.len() / p).min(samples.len() - 1)].clone())
        .collect()
}

/// Carve a sorted band into `splitters.len() + 1` contiguous range slices: range `r`
/// holds the rows greater than splitter `r - 1` and at most splitter `r`.
fn split_sorted_band(
    band: &DataFrame,
    key_positions: &[usize],
    spec: &SortSpec,
    splitters: &[Vec<Cell>],
) -> Vec<DataFrame> {
    if splitters.is_empty() {
        return vec![band.clone()];
    }
    let mut bounds = Vec::with_capacity(splitters.len() + 2);
    bounds.push(0usize);
    let mut start = 0usize;
    for splitter in splitters {
        // First index (>= start) whose row sorts strictly after the splitter.
        let mut lo = start;
        let mut hi = band.n_rows();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if compare_key_to_row(splitter, band, mid, key_positions, spec) == Ordering::Less {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        bounds.push(lo);
        start = lo;
    }
    bounds.push(band.n_rows());
    bounds
        .windows(2)
        .map(|w| band.slice_rows(w[0], w[1]))
        .collect()
}

/// Stable k-way merge of per-band sorted runs: ties resolve to the lowest band index,
/// which — combined with stable per-band sorts — preserves the original global order
/// of equal keys.
fn merge_sorted_runs(
    runs: Vec<DataFrame>,
    key_positions: &[usize],
    spec: &SortSpec,
) -> DfResult<DataFrame> {
    let mut runs = runs;
    if runs.len() <= 1 {
        return Ok(runs.pop().unwrap_or_else(DataFrame::empty));
    }
    let total: usize = runs.iter().map(DataFrame::n_rows).sum();
    let mut heads = vec![0usize; runs.len()];
    let mut order: Vec<(usize, usize)> = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (r, run) in runs.iter().enumerate() {
            if heads[r] >= run.n_rows() {
                continue;
            }
            best = Some(match best {
                None => r,
                Some(b) => {
                    if compare_rows(run, heads[r], &runs[b], heads[b], key_positions, spec)
                        == Ordering::Less
                    {
                        r
                    } else {
                        b
                    }
                }
            });
        }
        match best {
            Some(r) => {
                order.push((r, heads[r]));
                heads[r] += 1;
            }
            None => break,
        }
    }
    let n_cols = runs[0].n_cols();
    let mut columns: Vec<Column> = Vec::with_capacity(n_cols);
    for j in 0..n_cols {
        let mut cells = Vec::with_capacity(total);
        for &(r, i) in &order {
            cells.push(runs[r].columns()[j].cells()[i].clone());
        }
        let mut domain = runs[0].columns()[j].known_domain();
        for run in runs.iter().skip(1) {
            if run.columns()[j].known_domain() != domain {
                domain = None;
            }
        }
        columns.push(match domain {
            Some(domain) => Column::with_domain(cells, domain),
            None => Column::new(cells),
        });
    }
    let mut labels = Vec::with_capacity(total);
    for &(r, i) in &order {
        labels.push(runs[r].row_labels().as_slice()[i].clone());
    }
    DataFrame::from_parts(columns, Labels::new(labels), runs[0].col_labels().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionConfig, PartitionScheme};
    use df_types::cell::cell;

    fn opts(buckets: usize, band_rows: usize, broadcast_rows: usize) -> ShuffleOptions {
        ShuffleOptions {
            buckets,
            band_rows,
            broadcast_rows,
        }
    }

    fn grid_of(df: &DataFrame, rows: usize) -> PartitionGrid {
        PartitionGrid::from_dataframe(
            df,
            PartitionScheme::Row,
            PartitionConfig {
                target_rows: rows,
                target_cols: 8,
            },
        )
        .unwrap()
    }

    fn mixed_frame(rows: usize) -> DataFrame {
        let k: Vec<Cell> = (0..rows)
            .map(|i| {
                if i % 11 == 0 {
                    Cell::Null
                } else {
                    cell((i % 5) as i64)
                }
            })
            .collect();
        let v: Vec<Cell> = (0..rows).map(|i| cell((i as f64) * 0.5)).collect();
        let s: Vec<Cell> = (0..rows).map(|i| cell(format!("s{}", i % 3))).collect();
        DataFrame::from_columns(vec!["k", "v", "s"], vec![k, v, s]).unwrap()
    }

    #[test]
    fn shuffle_co_locates_keys_and_preserves_per_bucket_order() {
        let df = mixed_frame(60);
        let executor = ParallelExecutor::new(2);
        let grid = grid_of(&df, 13);
        let key = ShuffleKey::Positions(vec![0]);
        let shuffled = grid.shuffle(&executor, &key, 4).unwrap();
        assert_eq!(shuffled.n_row_bands(), 4);
        assert_eq!(shuffled.shape(), (60, 3));
        assert!(executor.shuffles_run() >= 1);
        // Every key family lives in exactly one bucket, and position tags (column v
        // doubles as one: v = row / 2) are increasing within each bucket.
        let mut homes: HashMap<u64, usize> = HashMap::new();
        for (b, band) in shuffled.row_bands().unwrap().iter().enumerate() {
            let mut last_v = f64::NEG_INFINITY;
            for i in 0..band.n_rows() {
                let h = row_hash(band, i, &key);
                assert_eq!(*homes.entry(h).or_insert(b), b, "key split across buckets");
                let v = band.columns()[1].cells()[i].as_f64().unwrap();
                assert!(v > last_v, "bucket broke global row order");
                last_v = v;
            }
        }
    }

    #[test]
    fn shuffle_validates_key_positions() {
        let df = mixed_frame(10);
        let executor = ParallelExecutor::new(1);
        let grid = grid_of(&df, 4);
        assert!(grid
            .shuffle(&executor, &ShuffleKey::Positions(vec![9]), 2)
            .is_err());
    }

    #[test]
    fn range_sort_matches_reference_for_all_directions() {
        let df = mixed_frame(57);
        let executor = ParallelExecutor::new(3);
        for ascending in [vec![true], vec![false], vec![false, true]] {
            let spec = SortSpec {
                by: vec![cell("k"), cell("v")],
                ascending,
                stable: true,
            };
            let expected = group::sort(&df, &spec).unwrap();
            let sorted = parallel_sort(&executor, grid_of(&df, 9), &spec, 4)
                .unwrap()
                .assemble()
                .unwrap();
            assert!(
                sorted.same_data(&expected),
                "parallel sort diverged for {spec:?}"
            );
        }
    }

    #[test]
    fn shuffle_join_and_broadcast_join_agree_with_reference() {
        let left = mixed_frame(40);
        let right = {
            let k: Vec<Cell> = (0..12).map(|i| cell((i % 6) as i64)).collect();
            let w: Vec<Cell> = (0..12).map(|i| cell(i as i64 * 10)).collect();
            DataFrame::from_columns(vec!["k", "w"], vec![k, w]).unwrap()
        };
        let on = JoinOn::Columns(vec![cell("k")]);
        let executor = ParallelExecutor::new(2);
        for how in [JoinType::Inner, JoinType::Left, JoinType::Outer] {
            let expected = setops::join(&left, &right, &on, how).unwrap();
            for broadcast_rows in [usize::MAX, 0] {
                let joined = parallel_join(
                    &executor,
                    grid_of(&left, 7),
                    grid_of(&right, 5),
                    &on,
                    how,
                    opts(3, 10, broadcast_rows),
                )
                .unwrap()
                .assemble()
                .unwrap();
                assert!(
                    joined.same_data(&expected),
                    "join {how:?} (broadcast_rows={broadcast_rows}) diverged\nexpected:\n{expected}\ngot:\n{joined}"
                );
            }
        }
    }

    #[test]
    fn label_join_takes_both_paths() {
        let left = mixed_frame(12)
            .with_row_labels((0..12).map(|i| format!("r{}", i % 7)).collect::<Vec<_>>())
            .unwrap();
        let right = mixed_frame(9)
            .with_row_labels((0..9).map(|i| format!("r{i}")).collect::<Vec<_>>())
            .unwrap();
        let executor = ParallelExecutor::new(2);
        for how in [JoinType::Inner, JoinType::Left, JoinType::Outer] {
            let expected = setops::join(&left, &right, &JoinOn::RowLabels, how).unwrap();
            for broadcast_rows in [usize::MAX, 0] {
                let joined = parallel_join(
                    &executor,
                    grid_of(&left, 5),
                    grid_of(&right, 4),
                    &JoinOn::RowLabels,
                    how,
                    opts(3, 10, broadcast_rows),
                )
                .unwrap()
                .assemble()
                .unwrap();
                assert!(joined.same_data(&expected), "label join {how:?} diverged");
            }
        }
    }

    #[test]
    fn drop_duplicates_and_difference_agree_with_reference() {
        let df = mixed_frame(50);
        // Duplicate-heavy frame: repeat the first 10 rows a few times.
        let dup = setops::union_all(vec![df.head(10), df.head(25), df.clone()]).unwrap();
        let executor = ParallelExecutor::new(2);
        let expected = group::drop_duplicates(&dup).unwrap();
        let deduped = parallel_drop_duplicates(&executor, grid_of(&dup, 11), opts(4, 10, 0))
            .unwrap()
            .assemble()
            .unwrap();
        assert!(deduped.same_data(&expected), "drop_duplicates diverged");

        let right = df.slice_rows(5, 30);
        let expected = setops::difference(&df, &right).unwrap();
        for broadcast_rows in [usize::MAX, 0] {
            let out = parallel_difference(
                &executor,
                grid_of(&df, 11),
                grid_of(&right, 7),
                opts(4, 10, broadcast_rows),
            )
            .unwrap()
            .assemble()
            .unwrap();
            assert!(
                out.same_data(&expected),
                "difference (broadcast_rows={broadcast_rows}) diverged"
            );
        }
    }

    #[test]
    fn user_columns_may_share_the_tag_labels() {
        // Tag columns are resolved by position, so frames whose own columns carry the
        // sentinel labels still round-trip correctly through every shuffle operator.
        let n = 30usize;
        let a: Vec<Cell> = (0..n).map(|i| cell((i % 4) as i64)).collect();
        let b: Vec<Cell> = (0..n).map(|i| cell((n - i) as i64)).collect();
        let c: Vec<Cell> = (0..n).map(|i| cell(format!("x{}", i % 3))).collect();
        let df = DataFrame::from_columns(vec![POS_LABEL, RIGHT_POS_LABEL, "key"], vec![a, b, c])
            .unwrap();
        let dup = setops::union_all(vec![df.head(8), df.clone()]).unwrap();
        let executor = ParallelExecutor::new(2);

        let deduped = parallel_drop_duplicates(&executor, grid_of(&dup, 7), opts(4, 10, 0))
            .unwrap()
            .assemble()
            .unwrap();
        assert!(deduped.same_data(&group::drop_duplicates(&dup).unwrap()));

        let right = df.slice_rows(3, 17);
        let out = parallel_difference(
            &executor,
            grid_of(&df, 7),
            grid_of(&right, 5),
            opts(4, 10, 0),
        )
        .unwrap()
        .assemble()
        .unwrap();
        assert!(out.same_data(&setops::difference(&df, &right).unwrap()));

        let on = JoinOn::Columns(vec![cell("key")]);
        for how in [JoinType::Inner, JoinType::Left, JoinType::Outer] {
            let expected = setops::join(&df, &right, &on, how).unwrap();
            let joined = parallel_join(
                &executor,
                grid_of(&df, 7),
                grid_of(&right, 5),
                &on,
                how,
                opts(3, 10, 0),
            )
            .unwrap()
            .assemble()
            .unwrap();
            assert!(
                joined.same_data(&expected),
                "join {how:?} with colliding labels diverged"
            );
        }
    }

    #[test]
    fn shuffle_operators_keep_results_banded() {
        // Order restoration re-bands its output so downstream operators stay
        // partition-parallel instead of degenerating to one giant band.
        let df = mixed_frame(64);
        let executor = ParallelExecutor::new(2);
        let deduped = parallel_drop_duplicates(&executor, grid_of(&df, 8), opts(4, 16, 0)).unwrap();
        assert!(deduped.n_row_bands() >= 4);
        assert_eq!(deduped.shape(), (64, 3));
        for band in deduped.row_bands().unwrap().iter().take(3) {
            assert_eq!(band.n_rows(), 16);
        }
        // Empty results keep their column structure in a single empty band.
        let empty =
            parallel_difference(&executor, grid_of(&df, 8), grid_of(&df, 8), opts(4, 16, 0))
                .unwrap()
                .assemble()
                .unwrap();
        assert_eq!(empty.shape(), (0, 3));
    }

    #[test]
    fn results_are_identical_across_thread_and_bucket_counts() {
        let df = mixed_frame(80);
        let spec = SortSpec::ascending(vec![cell("s"), cell("k")]);
        let reference = group::sort(&df, &spec).unwrap();
        for threads in [1, 4] {
            for buckets in [1, 3, 8] {
                let executor = ParallelExecutor::new(threads);
                let sorted = parallel_sort(&executor, grid_of(&df, 16), &spec, buckets)
                    .unwrap()
                    .assemble()
                    .unwrap();
                assert!(sorted.same_data(&reference));
                let deduped =
                    parallel_drop_duplicates(&executor, grid_of(&df, 16), opts(buckets, 9, 0))
                        .unwrap()
                        .assemble()
                        .unwrap();
                assert!(deduped.same_data(&group::drop_duplicates(&df).unwrap()));
            }
        }
    }
}
