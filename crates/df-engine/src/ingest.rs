//! Partition-parallel, budget-aware CSV ingest.
//!
//! The paper's flagship end-user win is parallelised dataframe I/O: `read_csv` is the
//! first statement of nearly every workflow, yet a serial reader that materialises
//! the whole frame before partitioning blows a memory-budgeted session on line one
//! and leaves the worker pool idle. This module drives the chunked reader of
//! `df-storage` (see [`df_storage::csv`]) over the engine's [`ParallelExecutor`]:
//!
//! 1. **Plan** — one streaming, quote-aware pass cuts the file's byte range into
//!    band-sized chunks at record boundaries, counting rows per chunk
//!    ([`df_storage::csv::plan_csv_chunks`]). No cells are allocated.
//! 2. **Parse** — each worker seeks to its chunk, parses it into a raw (`Σ*`) band,
//!    and checks the band straight into the session's [`SpillStore`] (when a memory
//!    budget is set). Peak residency therefore stays within *budget + one band per
//!    worker thread* — the same bound every other operator obeys — no matter how much
//!    larger than memory the file is.
//! 3. **Reconcile** — for `infer_schema` ingests, each worker also returns its band's
//!    composable induction summaries; the summaries are joined across bands and a
//!    second banded pass re-casts every band with the reconciled per-column domains,
//!    so the result is cell-for-cell identical to the serial reader.
//!
//! The produced [`PartitionGrid`] goes straight behind a `FrameHandle` — the file is
//! never resident as one `DataFrame` at any point of the ingest.

use std::path::Path;
use std::sync::Arc;

use df_core::algebra::ColumnSelector;
use df_core::columnar::ColumnBlock;
use df_core::ops;
use df_core::scan::{ChunkStats, ScanCsv, ScanStats};
use df_storage::csv::{self, CsvChunk, CsvIngestPlan, CsvOptions};
use df_storage::spill::SpillStore;
use df_types::cell::Cell;
use df_types::error::{DfError, DfResult};
use df_types::infer::InductionSummary;

use crate::backend::BandTask;
use crate::executor::ParallelExecutor;
use crate::partition::{Partition, PartitionConfig, PartitionGrid};

/// Cumulative ingest counters, surfaced by `ModinEngine::ingest_stats` next to the
/// spill and dispatch statistics (and asserted by the ingest equivalence suite).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Files ingested through the parallel path.
    pub files_ingested: u64,
    /// Bands parsed by worker tasks (one per planned chunk).
    pub bands_parsed: u64,
    /// Total bytes scanned by ingest plans.
    pub ingest_bytes: u64,
}

/// What one ingest run did — merged into the engine's [`IngestStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Bands parsed (0 for an empty file, which produces a single empty band).
    pub bands: u64,
    /// Bytes scanned (the file length).
    pub bytes: u64,
    /// Data rows ingested.
    pub rows: u64,
}

/// Ingest a CSV file into a row-banded [`PartitionGrid`], parsing chunks on the
/// executor's worker pool and storing each finished band through `store` (when the
/// session runs under a memory budget). The grid is cell-for-cell identical to
/// serially reading the file and partitioning the result — without the full frame
/// ever existing in memory.
pub fn ingest_csv_grid(
    executor: &ParallelExecutor,
    store: Option<&Arc<SpillStore>>,
    partitioning: PartitionConfig,
    path: &Path,
    options: &CsvOptions,
) -> DfResult<(PartitionGrid, IngestReport)> {
    let plan = csv::plan_csv_chunks(path, options, partitioning.target_rows)?;
    let report = IngestReport {
        bands: plan.chunks.len() as u64,
        bytes: plan.total_bytes,
        rows: plan.total_rows as u64,
    };
    if plan.chunks.is_empty() {
        // No data records: a single (possibly zero-column) empty band carrying the
        // plan's column labels, exactly what the serial reader returns.
        let mut empty = plan.empty_frame()?;
        if options.infer_schema {
            empty.parse_all();
        }
        return Ok((PartitionGrid::single_in(empty, store)?, report));
    }
    // Parse phase: every chunk independently, each worker seeking to its own byte
    // range and checking its band into the store before picking up the next chunk.
    // The parse itself is a self-contained [`BandTask::CsvChunk`] placed on the
    // executor's backend (worker processes parse from their own file descriptors on
    // the procs backend); the failpoint (`ingest.read`) and the retry policy stay
    // driver-side, so a transient fault costs a backoff, not the statement.
    let store_owned = store.cloned();
    let retry = df_types::retry::RetryPolicy::default();
    let parsed = executor.par_map(plan.chunks.clone(), |_, chunk| {
        let task = BandTask::CsvChunk {
            path: path.to_string_lossy().into_owned(),
            options: options.clone(),
            header: plan.header.clone(),
            n_cols: plan.n_cols,
            total_rows: plan.total_rows,
            total_bytes: plan.total_bytes,
            chunk,
        };
        let band = retry.run(|_| {
            df_types::fail::check("ingest.read")?;
            executor
                .run_task(&task, Vec::new())?
                .pop()
                .ok_or_else(|| DfError::internal("csv chunk task returned no band"))
        })?;
        let summaries = options
            .infer_schema
            .then(|| csv::band_induction_summaries(&band));
        // Typed columns straight out of the parser: each band is encoded once,
        // here, and checked in columnar — the store then accounts (and spills)
        // the compact typed buffers instead of tagged cells.
        let part = if df_types::column::columnar_enabled() {
            let block = ColumnBlock::from_frame(&band);
            Partition::new_columnar_in(block, chunk.start_row, 0, store_owned.as_ref())?
        } else {
            Partition::new_in(band, chunk.start_row, 0, store_owned.as_ref())?
        };
        Ok((part, summaries))
    })?;
    let (parts, summaries): (Vec<Partition>, Vec<Option<Vec<InductionSummary>>>) =
        parsed.into_iter().unzip();
    let mut grid = PartitionGrid::from_band_partitions(parts);
    if options.infer_schema {
        // Reconcile phase: join the per-band induction summaries in band order and
        // re-cast every band (load → cast → store) with the final domains — the
        // re-cast is a [`BandTask::ApplyDomains`] placed on the backend.
        let band_summaries: Vec<Vec<InductionSummary>> = summaries.into_iter().flatten().collect();
        let task = BandTask::ApplyDomains(csv::reconcile_domains(&band_summaries));
        grid = grid.map_bands(executor, store, move |_, band| {
            executor
                .run_task(&task, vec![band])?
                .pop()
                .ok_or_else(|| DfError::internal("domain task returned no band"))
        })?;
    }
    Ok((grid, report))
}

/// What one pushdown-aware scan did — merged into the engine's ingest and pushdown
/// counters, and asserted by the pushdown equivalence suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanReport {
    /// Bands parsed (surviving chunks only).
    pub bands: u64,
    /// Bytes actually read by the parse phase (skipped chunks read nothing).
    pub bytes: u64,
    /// Data rows emitted after the pushed predicate.
    pub rows: u64,
    /// Chunks proven row-free by their min/max statistics and never parsed.
    pub chunks_skipped: u64,
    /// File columns the parse loop never materialised (outside the pushed
    /// projection and the pushed predicate's reads).
    pub columns_pruned: u64,
}

/// Floor for the budget-tuned chunk size: below this, per-chunk overhead dominates.
const MIN_SCAN_BAND_ROWS: usize = 16;

/// Budget-aware band sizing (the scan's auto-tune): keep roughly one raw band per
/// worker — with 2× headroom for the parsed form — inside the session budget, so the
/// parse fan-out itself respects the budget even before any band reaches the store.
/// Returns `Some(rows)` only when the tuning *shrinks* the configured band size;
/// growing it would trade away parallelism for nothing.
fn tuned_band_rows(
    plan: &CsvIngestPlan,
    memory_budget: Option<usize>,
    threads: usize,
    configured: usize,
) -> Option<usize> {
    let budget = memory_budget?;
    if plan.total_rows == 0 || plan.total_bytes == 0 {
        return None;
    }
    let bytes_per_row = (plan.total_bytes as f64 / plan.total_rows as f64).max(1.0);
    let per_band_bytes = (budget as f64 / (2.0 * threads.max(1) as f64)).max(1.0);
    let tuned = ((per_band_bytes / bytes_per_row) as usize).max(MIN_SCAN_BAND_ROWS);
    (tuned < configured).then_some(tuned)
}

/// Collect per-chunk column statistics (and, for inferring scans, the reconciled
/// per-column domains) for a CSV file: plan the chunks — re-planning with a smaller
/// band when the memory budget and worker count call for it — then parse each chunk
/// transiently on the worker pool, folding its cells into
/// [`df_core::scan::ColumnChunkStats`]. Nothing is retained beyond the statistics;
/// the engine caches the result per scan identity so later statements pay nothing.
pub fn collect_scan_stats(
    executor: &ParallelExecutor,
    partitioning: PartitionConfig,
    memory_budget: Option<usize>,
    path: &Path,
    options: &CsvOptions,
) -> DfResult<ScanStats> {
    let mut plan = csv::plan_csv_chunks(path, options, partitioning.target_rows)?;
    if let Some(tuned) = tuned_band_rows(
        &plan,
        memory_budget,
        executor.threads(),
        partitioning.target_rows,
    ) {
        plan = csv::plan_csv_chunks(path, options, tuned)?;
    }
    let per_chunk = executor.par_map(plan.chunks.clone(), |_, chunk| {
        let band = csv::read_csv_chunk(path, options, &plan, &chunk)?;
        let columns = csv::chunk_column_stats(&band);
        let summaries = options
            .infer_schema
            .then(|| csv::band_induction_summaries(&band));
        Ok((chunk, columns, summaries))
    })?;
    let mut chunks = Vec::with_capacity(per_chunk.len());
    let mut band_summaries: Vec<Vec<InductionSummary>> = Vec::new();
    for (chunk, columns, summaries) in per_chunk {
        chunks.push(ChunkStats {
            start_byte: chunk.start_byte,
            end_byte: chunk.end_byte,
            start_row: chunk.start_row,
            rows: chunk.rows,
            columns,
        });
        band_summaries.extend(summaries);
    }
    let domains = (options.infer_schema && !band_summaries.is_empty())
        .then(|| csv::reconcile_domains(&band_summaries));
    Ok(ScanStats {
        labels: plan.col_labels().as_slice().to_vec(),
        n_cols: plan.n_cols,
        total_rows: plan.total_rows,
        total_bytes: plan.total_bytes,
        domains,
        chunks,
    })
}

/// Rebuild the chunk plan a statistics pass ran under, so the parse phase seeks the
/// exact byte ranges the statistics describe without re-planning the file.
fn rebuild_plan(stats: &ScanStats, options: &CsvOptions) -> CsvIngestPlan {
    CsvIngestPlan {
        header: options
            .has_header
            .then(|| stats.labels.iter().map(Cell::to_raw_string).collect()),
        n_cols: stats.n_cols,
        total_rows: stats.total_rows,
        total_bytes: stats.total_bytes,
        chunks: stats
            .chunks
            .iter()
            .map(|c| CsvChunk {
                start_byte: c.start_byte,
                end_byte: c.end_byte,
                rows: c.rows,
                start_row: c.start_row,
            })
            .collect(),
    }
}

/// Evaluate a [`ScanCsv`] leaf into a row-banded [`PartitionGrid`], applying the
/// pushdowns the optimizer folded into it:
///
/// * **chunk skipping** — chunks whose per-column min/max statistics prove no row
///   can match the pushed predicate are never read
///   ([`df_core::scan::ScanStats::surviving_chunks`]);
/// * **column pruning** — with a pushed projection, each worker splits and
///   materialises only the projected columns plus whatever extra columns the pushed
///   predicate reads ([`csv::read_csv_chunk_cols`]);
/// * **residual filtering** — the predicate runs over each parsed band *before* it
///   checks into the store, so filtered-out rows never occupy budget.
///
/// The grid is cell-for-cell identical to evaluating SELECTION and PROJECTION above
/// an unpushed scan of the whole file.
pub fn scan_csv_grid(
    executor: &ParallelExecutor,
    store: Option<&Arc<SpillStore>>,
    scan: &ScanCsv,
    options: &CsvOptions,
    stats: &ScanStats,
) -> DfResult<(PartitionGrid, ScanReport)> {
    let plan = rebuild_plan(stats, options);
    // Columns the parse loop must materialise, in file order: the pushed
    // projection's labels plus any extra columns the pushed predicate reads. The
    // output projection (which also fixes order and duplicates) is applied per band
    // after filtering.
    let pred_cols: Vec<Cell> = scan
        .predicate
        .as_ref()
        .and_then(|p| p.referenced_columns())
        .unwrap_or_default();
    let keep: Option<Vec<usize>> = scan.projection.as_ref().map(|proj| {
        stats
            .labels
            .iter()
            .enumerate()
            .filter(|(_, label)| proj.contains(label) || pred_cols.contains(label))
            .map(|(j, _)| j)
            .collect()
    });
    let columns_pruned = keep
        .as_ref()
        .map(|k| (stats.n_cols - k.len()) as u64)
        .unwrap_or(0);
    // Domains for the columns actually parsed (inferring scans recast in-worker with
    // the *file-wide* reconciled domains, so pruning chunks cannot change a dtype).
    let parse_domains: Option<Vec<df_types::domain::Domain>> = match (&stats.domains, &keep) {
        (Some(domains), Some(keep)) => Some(keep.iter().map(|&j| domains[j]).collect()),
        (Some(domains), None) => Some(domains.clone()),
        (None, _) => None,
    };
    let projection = scan.projection.clone().map(ColumnSelector::ByLabels);
    let survivors: Vec<CsvChunk> = stats
        .surviving_chunks(scan.predicate.as_ref())
        .into_iter()
        .map(|c| CsvChunk {
            start_byte: c.start_byte,
            end_byte: c.end_byte,
            rows: c.rows,
            start_row: c.start_row,
        })
        .collect();
    let chunks_skipped = (stats.chunks.len() - survivors.len()) as u64;
    let mut report = ScanReport {
        bands: survivors.len() as u64,
        bytes: survivors.iter().map(|c| c.end_byte - c.start_byte).sum(),
        rows: 0,
        chunks_skipped,
        columns_pruned,
    };
    if survivors.is_empty() {
        // No chunk can match (or the file holds no data records): one empty band
        // with the scan's output schema, exactly what the unpushed plan returns.
        let mut empty = plan.empty_frame()?;
        if options.infer_schema {
            match &stats.domains {
                Some(domains) => empty = csv::apply_domains(empty, domains)?,
                None => {
                    empty.parse_all();
                }
            }
        }
        let empty = match &scan.predicate {
            Some(pred) => ops::rowwise::selection(&empty, pred)?,
            None => empty,
        };
        let empty = match &projection {
            Some(proj) => ops::rowwise::projection(&empty, proj)?,
            None => empty,
        };
        let (rows, _) = empty.shape();
        report.rows = rows as u64;
        let grid = PartitionGrid::single_in(empty, store)?
            .with_scan_schema(scan_output_schema(stats, scan), scan.predicate.is_none());
        return Ok((grid, report));
    }
    let store_owned = store.cloned();
    let retry = df_types::retry::RetryPolicy::default();
    let parsed = executor.par_map(survivors, |_, chunk| {
        let band = retry.run(|_| {
            df_types::fail::check("ingest.read")?;
            match &keep {
                Some(keep) => csv::read_csv_chunk_cols(path_of(scan), options, &plan, &chunk, keep),
                None => csv::read_csv_chunk(path_of(scan), options, &plan, &chunk),
            }
        })?;
        let band = match &parse_domains {
            Some(domains) => csv::apply_domains(band, domains)?,
            None => band,
        };
        let band = match &scan.predicate {
            Some(pred) => ops::rowwise::selection(&band, pred)?,
            None => band,
        };
        let band = match &projection {
            Some(proj) => ops::rowwise::projection(&band, proj)?,
            None => band,
        };
        let rows = band.n_rows() as u64;
        // Mirror the plain ingest path's check-in: typed columnar blocks when the
        // columnar layout is enabled, tagged-cell bands otherwise.
        let part = if df_types::column::columnar_enabled() {
            let block = ColumnBlock::from_frame(&band);
            Partition::new_columnar_in(block, chunk.start_row, 0, store_owned.as_ref())?
        } else {
            Partition::new_in(band, chunk.start_row, 0, store_owned.as_ref())?
        };
        Ok((part, rows))
    })?;
    let mut parts = Vec::with_capacity(parsed.len());
    for (part, rows) in parsed {
        report.rows += rows;
        parts.push(part);
    }
    let grid = PartitionGrid::from_band_partitions(parts)
        .with_scan_schema(scan_output_schema(stats, scan), scan.predicate.is_none());
    Ok((grid, report))
}

fn path_of(scan: &ScanCsv) -> &Path {
    scan.path.as_path()
}

/// The scan's output schema — projected labels (or all file labels) paired with
/// their reconciled domains — carried onto the grid so `schema()` answers even when
/// a deferred transpose later hides the per-handle metadata.
fn scan_output_schema(stats: &ScanStats, scan: &ScanCsv) -> df_core::handle::FrameSchema {
    let domain_of = |label: &Cell| -> Option<df_types::domain::Domain> {
        let j = stats.col_position(label)?;
        stats.domains.as_ref().map(|d| d[j])
    };
    match &scan.projection {
        Some(proj) => proj
            .iter()
            .map(|label| (label.clone(), domain_of(label)))
            .collect(),
        None => stats
            .labels
            .iter()
            .map(|label| (label.clone(), domain_of(label)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_storage::csv::read_csv_str;
    use df_types::cell::cell;
    use df_types::domain::Domain;

    fn temp_csv(name: &str, content: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("df_engine_ingest_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    fn config(rows: usize) -> PartitionConfig {
        PartitionConfig {
            target_rows: rows,
            target_cols: 32,
        }
    }

    #[test]
    fn parallel_ingest_matches_serial_reader() {
        let mut content = String::from("id,name,score\n");
        for i in 0..53 {
            content.push_str(&format!("{i},row-{i},{}.5\n", i % 7));
        }
        let path = temp_csv("basic.csv", &content);
        for options in [
            CsvOptions::default(),
            CsvOptions {
                infer_schema: true,
                ..CsvOptions::default()
            },
        ] {
            let serial = read_csv_str(&content, &options).unwrap();
            for threads in [1usize, 4] {
                let executor = ParallelExecutor::new(threads);
                let (grid, report) =
                    ingest_csv_grid(&executor, None, config(10), &path, &options).unwrap();
                assert_eq!(report.rows, 53);
                assert_eq!(report.bands, 6);
                assert!(grid.n_row_bands() > 1, "ingest lost its partitioning");
                let assembled = grid.into_dataframe().unwrap();
                assert!(
                    assembled.same_data(&serial),
                    "threads={threads} infer={} diverged",
                    options.infer_schema
                );
                assert_eq!(assembled.schema(), serial.schema());
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn budgeted_ingest_spills_and_stays_identical() {
        let mut content = String::from("k,v\n");
        for i in 0..400 {
            content.push_str(&format!("{},payload-{i}-{}\n", i % 5, "x".repeat(20)));
        }
        let path = temp_csv("budgeted.csv", &content);
        let options = CsvOptions::default();
        let serial = read_csv_str(&content, &options).unwrap();
        let budget = serial.approx_size_bytes() / 4;
        let store = Arc::new(SpillStore::new(budget).unwrap());
        let executor = ParallelExecutor::new(4);
        let (grid, _) =
            ingest_csv_grid(&executor, Some(&store), config(32), &path, &options).unwrap();
        let stats = store.stats();
        assert!(stats.spill_outs > 0, "ws/4 budget never spilled: {stats:?}");
        assert!(
            stats.peak_memory_bytes <= budget + 4 * stats.max_insert_bytes,
            "peak blew the budget bound: {stats:?}"
        );
        assert!(grid.into_dataframe().unwrap().same_data(&serial));
        // Consumed handles drained their store entries.
        let drained = store.stats();
        assert_eq!(drained.in_memory + drained.spilled, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_and_header_only_files_ingest_like_serial() {
        let executor = ParallelExecutor::new(2);
        for (name, content) in [("empty.csv", ""), ("header.csv", "a,b\n")] {
            let path = temp_csv(name, content);
            for options in [
                CsvOptions::default(),
                CsvOptions {
                    infer_schema: true,
                    ..CsvOptions::default()
                },
            ] {
                let serial = read_csv_str(content, &options).unwrap();
                let (grid, report) =
                    ingest_csv_grid(&executor, None, config(8), &path, &options).unwrap();
                assert_eq!(report.bands, 0);
                let assembled = grid.into_dataframe().unwrap();
                assert!(assembled.same_data(&serial), "{name} diverged");
                assert_eq!(assembled.schema(), serial.schema(), "{name} schema");
            }
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn schema_reconciliation_recasts_minority_bands() {
        // Band 0 (rows 0–1) looks Int; band 1 introduces a float; band 2 is Int
        // again. The reconciled column must be Float everywhere.
        let content = "v\n1\n2\n2.5\n3\n4\n5\n";
        let path = temp_csv("minority.csv", content);
        let options = CsvOptions {
            infer_schema: true,
            ..CsvOptions::default()
        };
        let executor = ParallelExecutor::new(2);
        let (grid, _) = ingest_csv_grid(&executor, None, config(2), &path, &options).unwrap();
        let assembled = grid.into_dataframe().unwrap();
        assert_eq!(assembled.schema(), vec![Some(Domain::Float)]);
        assert_eq!(assembled.cell(0, 0).unwrap(), &cell(1.0));
        assert_eq!(assembled.cell(2, 0).unwrap(), &cell(2.5));
        let serial = read_csv_str(content, &options).unwrap();
        assert!(assembled.same_data(&serial));
        std::fs::remove_file(path).ok();
    }

    use df_core::algebra::{CmpOp, Predicate};
    use df_core::scan::ScanOptions;

    /// 60 rows of 4 columns with `id` sorted 0..60, so a range predicate on `id`
    /// is satisfiable in only a prefix of the chunk sequence.
    fn clustered_csv(name: &str) -> (std::path::PathBuf, String) {
        let mut content = String::from("id,name,score,tag\n");
        for i in 0..60 {
            content.push_str(&format!("{i},row-{i},{}.5,t{}\n", i % 7, i % 3));
        }
        let path = temp_csv(name, &content);
        (path, content)
    }

    fn id_lt(value: i64) -> Predicate {
        Predicate::ColCmp {
            column: cell("id"),
            op: CmpOp::Lt,
            value: cell(value),
        }
    }

    fn scan_options(infer: bool) -> (ScanOptions, CsvOptions) {
        let scan = ScanOptions {
            infer_schema: infer,
            ..ScanOptions::default()
        };
        let csv = CsvOptions {
            infer_schema: infer,
            ..CsvOptions::default()
        };
        (scan, csv)
    }

    #[test]
    fn scan_stats_cover_every_chunk_and_reconcile_domains() {
        let (path, _content) = clustered_csv("stats.csv");
        let (_, csv_opts) = scan_options(true);
        let executor = ParallelExecutor::new(2);
        let stats = collect_scan_stats(&executor, config(10), None, &path, &csv_opts).unwrap();
        assert_eq!(stats.total_rows, 60);
        assert_eq!(stats.n_cols, 4);
        assert_eq!(stats.chunks.len(), 6);
        assert_eq!(stats.chunks.iter().map(|c| c.rows).sum::<usize>(), 60);
        let domains = stats.domains.as_ref().expect("inferring scan has domains");
        assert_eq!(domains[0], Domain::Int);
        assert_eq!(domains[2], Domain::Float);
        // Chunk 0 holds ids 0..10: its min/max must say so.
        let first = &stats.chunks[0].columns[0];
        assert_eq!(first.numeric, Some((0.0, 9.0)));
        assert_eq!(first.nulls, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_grid_pushdown_matches_unpushed_and_skips_chunks() {
        let (path, content) = clustered_csv("pushdown.csv");
        for infer in [false, true] {
            let (scan_opts, csv_opts) = scan_options(infer);
            let serial = read_csv_str(&content, &csv_opts).unwrap();
            let filtered = ops::rowwise::selection(&serial, &id_lt(7)).unwrap();
            let expected = ops::rowwise::projection(
                &filtered,
                &ColumnSelector::ByLabels(vec![cell("score"), cell("id")]),
            )
            .unwrap();
            for threads in [1usize, 4] {
                let executor = ParallelExecutor::new(threads);
                let stats = Arc::new(
                    collect_scan_stats(&executor, config(10), None, &path, &csv_opts).unwrap(),
                );
                let scan = ScanCsv::new(&path, scan_opts, "pushdown-test")
                    .with_projection(vec![cell("score"), cell("id")])
                    .with_predicate(id_lt(7));
                let (grid, report) =
                    scan_csv_grid(&executor, None, &scan, &csv_opts, &stats).unwrap();
                if infer {
                    // Only chunk 0 (ids 0..10) can match id < 7; 5 of 6 chunks skip.
                    assert_eq!(report.chunks_skipped, 5, "threads={threads}");
                } else {
                    // Without inferred domains the raw cells stay strings, so
                    // numeric interval pruning must stand down to stay sound.
                    assert_eq!(report.chunks_skipped, 0, "threads={threads}");
                }
                // name and tag are outside the projection and the predicate.
                assert_eq!(report.columns_pruned, 2);
                assert_eq!(report.rows, expected.shape().0 as u64);
                let assembled = grid.into_dataframe().unwrap();
                assert!(
                    assembled.same_data(&expected),
                    "infer={infer} threads={threads} diverged"
                );
                assert_eq!(assembled.schema(), expected.schema());
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_grid_without_pushdowns_matches_plain_ingest() {
        let (path, content) = clustered_csv("plain_scan.csv");
        let (scan_opts, csv_opts) = scan_options(true);
        let serial = read_csv_str(&content, &csv_opts).unwrap();
        let executor = ParallelExecutor::new(4);
        let stats =
            Arc::new(collect_scan_stats(&executor, config(10), None, &path, &csv_opts).unwrap());
        let scan = ScanCsv::new(&path, scan_opts, "plain-scan-test");
        let (grid, report) = scan_csv_grid(&executor, None, &scan, &csv_opts, &stats).unwrap();
        assert_eq!(report.chunks_skipped, 0);
        assert_eq!(report.columns_pruned, 0);
        assert_eq!(report.rows, 60);
        assert!(grid.n_row_bands() > 1, "scan lost its partitioning");
        let assembled = grid.into_dataframe().unwrap();
        assert!(assembled.same_data(&serial));
        assert_eq!(assembled.schema(), serial.schema());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_grid_with_no_surviving_chunks_keeps_schema() {
        let (path, content) = clustered_csv("all_skipped.csv");
        let (scan_opts, csv_opts) = scan_options(true);
        let serial = read_csv_str(&content, &csv_opts).unwrap();
        let expected = ops::rowwise::selection(&serial, &id_lt(-1)).unwrap();
        let executor = ParallelExecutor::new(2);
        let stats =
            Arc::new(collect_scan_stats(&executor, config(10), None, &path, &csv_opts).unwrap());
        let scan = ScanCsv::new(&path, scan_opts, "all-skipped-test").with_predicate(id_lt(-1));
        let (grid, report) = scan_csv_grid(&executor, None, &scan, &csv_opts, &stats).unwrap();
        assert_eq!(report.chunks_skipped, 6);
        assert_eq!(report.rows, 0);
        let assembled = grid.into_dataframe().unwrap();
        assert!(assembled.same_data(&expected));
        assert_eq!(assembled.schema(), expected.schema());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_grid_budget_tuning_shrinks_bands() {
        let (path, content) = clustered_csv("tuned.csv");
        let (_, csv_opts) = scan_options(false);
        let executor = ParallelExecutor::new(2);
        let untuned = collect_scan_stats(&executor, config(1_000), None, &path, &csv_opts).unwrap();
        assert_eq!(untuned.chunks.len(), 1);
        // A budget of roughly a quarter of the file forces smaller bands.
        let budget = content.len() / 4;
        let tuned =
            collect_scan_stats(&executor, config(1_000), Some(budget), &path, &csv_opts).unwrap();
        assert!(
            tuned.chunks.len() > 1,
            "budget {budget} did not shrink bands: {} chunk(s)",
            tuned.chunks.len()
        );
        assert_eq!(tuned.chunks.iter().map(|c| c.rows).sum::<usize>(), 60);
        std::fs::remove_file(path).ok();
    }
}
