//! Partition-parallel, budget-aware CSV ingest.
//!
//! The paper's flagship end-user win is parallelised dataframe I/O: `read_csv` is the
//! first statement of nearly every workflow, yet a serial reader that materialises
//! the whole frame before partitioning blows a memory-budgeted session on line one
//! and leaves the worker pool idle. This module drives the chunked reader of
//! `df-storage` (see [`df_storage::csv`]) over the engine's [`ParallelExecutor`]:
//!
//! 1. **Plan** — one streaming, quote-aware pass cuts the file's byte range into
//!    band-sized chunks at record boundaries, counting rows per chunk
//!    ([`df_storage::csv::plan_csv_chunks`]). No cells are allocated.
//! 2. **Parse** — each worker seeks to its chunk, parses it into a raw (`Σ*`) band,
//!    and checks the band straight into the session's [`SpillStore`] (when a memory
//!    budget is set). Peak residency therefore stays within *budget + one band per
//!    worker thread* — the same bound every other operator obeys — no matter how much
//!    larger than memory the file is.
//! 3. **Reconcile** — for `infer_schema` ingests, each worker also returns its band's
//!    composable induction summaries; the summaries are joined across bands and a
//!    second banded pass re-casts every band with the reconciled per-column domains,
//!    so the result is cell-for-cell identical to the serial reader.
//!
//! The produced [`PartitionGrid`] goes straight behind a `FrameHandle` — the file is
//! never resident as one `DataFrame` at any point of the ingest.

use std::path::Path;
use std::sync::Arc;

use df_core::columnar::ColumnBlock;
use df_storage::csv::{self, CsvOptions};
use df_storage::spill::SpillStore;
use df_types::error::DfResult;
use df_types::infer::InductionSummary;

use crate::executor::ParallelExecutor;
use crate::partition::{Partition, PartitionConfig, PartitionGrid};

/// Cumulative ingest counters, surfaced by `ModinEngine::ingest_stats` next to the
/// spill and dispatch statistics (and asserted by the ingest equivalence suite).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Files ingested through the parallel path.
    pub files_ingested: u64,
    /// Bands parsed by worker tasks (one per planned chunk).
    pub bands_parsed: u64,
    /// Total bytes scanned by ingest plans.
    pub ingest_bytes: u64,
}

/// What one ingest run did — merged into the engine's [`IngestStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Bands parsed (0 for an empty file, which produces a single empty band).
    pub bands: u64,
    /// Bytes scanned (the file length).
    pub bytes: u64,
    /// Data rows ingested.
    pub rows: u64,
}

/// Ingest a CSV file into a row-banded [`PartitionGrid`], parsing chunks on the
/// executor's worker pool and storing each finished band through `store` (when the
/// session runs under a memory budget). The grid is cell-for-cell identical to
/// serially reading the file and partitioning the result — without the full frame
/// ever existing in memory.
pub fn ingest_csv_grid(
    executor: &ParallelExecutor,
    store: Option<&Arc<SpillStore>>,
    partitioning: PartitionConfig,
    path: &Path,
    options: &CsvOptions,
) -> DfResult<(PartitionGrid, IngestReport)> {
    let plan = csv::plan_csv_chunks(path, options, partitioning.target_rows)?;
    let report = IngestReport {
        bands: plan.chunks.len() as u64,
        bytes: plan.total_bytes,
        rows: plan.total_rows as u64,
    };
    if plan.chunks.is_empty() {
        // No data records: a single (possibly zero-column) empty band carrying the
        // plan's column labels, exactly what the serial reader returns.
        let mut empty = plan.empty_frame()?;
        if options.infer_schema {
            empty.parse_all();
        }
        return Ok((PartitionGrid::single_in(empty, store)?, report));
    }
    // Parse phase: every chunk independently, each worker seeking to its own byte
    // range and checking its band into the store before picking up the next chunk.
    // The chunk read is failpoint-instrumented (`ingest.read`) and retried under the
    // default policy, so a transient read fault costs a backoff, not the statement.
    let store_owned = store.cloned();
    let retry = df_types::retry::RetryPolicy::default();
    let parsed = executor.par_map(plan.chunks.clone(), |_, chunk| {
        let band = retry.run(|_| {
            df_types::fail::check("ingest.read")?;
            csv::read_csv_chunk(path, options, &plan, &chunk)
        })?;
        let summaries = options
            .infer_schema
            .then(|| csv::band_induction_summaries(&band));
        // Typed columns straight out of the parser: each band is encoded once,
        // here, and checked in columnar — the store then accounts (and spills)
        // the compact typed buffers instead of tagged cells.
        let part = if df_types::column::columnar_enabled() {
            let block = ColumnBlock::from_frame(&band);
            Partition::new_columnar_in(block, chunk.start_row, 0, store_owned.as_ref())?
        } else {
            Partition::new_in(band, chunk.start_row, 0, store_owned.as_ref())?
        };
        Ok((part, summaries))
    })?;
    let (parts, summaries): (Vec<Partition>, Vec<Option<Vec<InductionSummary>>>) =
        parsed.into_iter().unzip();
    let mut grid = PartitionGrid::from_band_partitions(parts);
    if options.infer_schema {
        // Reconcile phase: join the per-band induction summaries in band order and
        // re-cast every band (load → cast → store) with the final domains.
        let band_summaries: Vec<Vec<InductionSummary>> = summaries.into_iter().flatten().collect();
        let domains = csv::reconcile_domains(&band_summaries);
        grid = grid.map_bands(executor, store, move |_, band| {
            csv::apply_domains(band, &domains)
        })?;
    }
    Ok((grid, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_storage::csv::read_csv_str;
    use df_types::cell::cell;
    use df_types::domain::Domain;

    fn temp_csv(name: &str, content: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("df_engine_ingest_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    fn config(rows: usize) -> PartitionConfig {
        PartitionConfig {
            target_rows: rows,
            target_cols: 32,
        }
    }

    #[test]
    fn parallel_ingest_matches_serial_reader() {
        let mut content = String::from("id,name,score\n");
        for i in 0..53 {
            content.push_str(&format!("{i},row-{i},{}.5\n", i % 7));
        }
        let path = temp_csv("basic.csv", &content);
        for options in [
            CsvOptions::default(),
            CsvOptions {
                infer_schema: true,
                ..CsvOptions::default()
            },
        ] {
            let serial = read_csv_str(&content, &options).unwrap();
            for threads in [1usize, 4] {
                let executor = ParallelExecutor::new(threads);
                let (grid, report) =
                    ingest_csv_grid(&executor, None, config(10), &path, &options).unwrap();
                assert_eq!(report.rows, 53);
                assert_eq!(report.bands, 6);
                assert!(grid.n_row_bands() > 1, "ingest lost its partitioning");
                let assembled = grid.into_dataframe().unwrap();
                assert!(
                    assembled.same_data(&serial),
                    "threads={threads} infer={} diverged",
                    options.infer_schema
                );
                assert_eq!(assembled.schema(), serial.schema());
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn budgeted_ingest_spills_and_stays_identical() {
        let mut content = String::from("k,v\n");
        for i in 0..400 {
            content.push_str(&format!("{},payload-{i}-{}\n", i % 5, "x".repeat(20)));
        }
        let path = temp_csv("budgeted.csv", &content);
        let options = CsvOptions::default();
        let serial = read_csv_str(&content, &options).unwrap();
        let budget = serial.approx_size_bytes() / 4;
        let store = Arc::new(SpillStore::new(budget).unwrap());
        let executor = ParallelExecutor::new(4);
        let (grid, _) =
            ingest_csv_grid(&executor, Some(&store), config(32), &path, &options).unwrap();
        let stats = store.stats();
        assert!(stats.spill_outs > 0, "ws/4 budget never spilled: {stats:?}");
        assert!(
            stats.peak_memory_bytes <= budget + 4 * stats.max_insert_bytes,
            "peak blew the budget bound: {stats:?}"
        );
        assert!(grid.into_dataframe().unwrap().same_data(&serial));
        // Consumed handles drained their store entries.
        let drained = store.stats();
        assert_eq!(drained.in_memory + drained.spilled, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_and_header_only_files_ingest_like_serial() {
        let executor = ParallelExecutor::new(2);
        for (name, content) in [("empty.csv", ""), ("header.csv", "a,b\n")] {
            let path = temp_csv(name, content);
            for options in [
                CsvOptions::default(),
                CsvOptions {
                    infer_schema: true,
                    ..CsvOptions::default()
                },
            ] {
                let serial = read_csv_str(content, &options).unwrap();
                let (grid, report) =
                    ingest_csv_grid(&executor, None, config(8), &path, &options).unwrap();
                assert_eq!(report.bands, 0);
                let assembled = grid.into_dataframe().unwrap();
                assert!(assembled.same_data(&serial), "{name} diverged");
                assert_eq!(assembled.schema(), serial.schema(), "{name} schema");
            }
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn schema_reconciliation_recasts_minority_bands() {
        // Band 0 (rows 0–1) looks Int; band 1 introduces a float; band 2 is Int
        // again. The reconciled column must be Float everywhere.
        let content = "v\n1\n2\n2.5\n3\n4\n5\n";
        let path = temp_csv("minority.csv", content);
        let options = CsvOptions {
            infer_schema: true,
            ..CsvOptions::default()
        };
        let executor = ParallelExecutor::new(2);
        let (grid, _) = ingest_csv_grid(&executor, None, config(2), &path, &options).unwrap();
        let assembled = grid.into_dataframe().unwrap();
        assert_eq!(assembled.schema(), vec![Some(Domain::Float)]);
        assert_eq!(assembled.cell(0, 0).unwrap(), &cell(1.0));
        assert_eq!(assembled.cell(2, 0).unwrap(), &cell(2.5));
        let serial = read_csv_str(content, &options).unwrap();
        assert!(assembled.same_data(&serial));
        std::fs::remove_file(path).ok();
    }
}
