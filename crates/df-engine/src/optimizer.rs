//! Logical rewrite rules over [`AlgebraExpr`] trees.
//!
//! These implement the planner-side ideas of paper §5 and §6:
//!
//! * **Transpose cancellation / pull-up** (§5.2.2) — `TRANSPOSE(TRANSPOSE(x)) → x`, and
//!   per-cell MAPs commute with TRANSPOSE so the transpose can be pulled up (delaying
//!   or eliminating physical reorientation).
//! * **Selection fusion** — adjacent SELECTIONs combine into one conjunctive predicate,
//!   so incrementally composed statements (§6.2) do not pay one pass per statement.
//! * **Limit push-down** (§6.1.2) — a LIMIT (the `head`/`tail` inspection) pushes below
//!   arity-preserving row-wise operators, so prefix inspection of a long pipeline only
//!   computes the rows that will be displayed.
//! * **Schema-induction deferral accounting** (§5.1.1) — the optimizer marks which
//!   operators are type-agnostic so the engine can skip induction between them.
//! * **Scan pushdown** — a SELECTION or PROJECTION sitting directly on a
//!   [`ScanCsv`](df_core::scan::ScanCsv) leaf folds *into* the leaf, so the parse loop
//!   only materialises referenced columns and can skip whole chunks whose statistics
//!   prove no row can match ([`df_core::scan::chunk_may_match`]).
//! * **Pivot axis choice** (Figure 8) — choose between pivoting on the requested column
//!   or pivoting on the other axis and transposing the (much smaller) result.

use df_core::algebra::{AlgebraExpr, ColumnSelector, MapFunc, Predicate, WindowFunc};

/// Statistics about one optimization pass, reported by benchmarks and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// `TRANSPOSE(TRANSPOSE(x))` pairs removed.
    pub transpose_pairs_eliminated: usize,
    /// Adjacent SELECTION pairs fused.
    pub selections_fused: usize,
    /// LIMIT nodes pushed below row-wise operators.
    pub limits_pushed: usize,
    /// SELECTION predicates folded into a `ScanCsv` leaf.
    pub predicates_pushed: usize,
    /// PROJECTION column lists folded into a `ScanCsv` leaf.
    pub projections_pushed: usize,
    /// Operators identified as type-agnostic (schema induction can be skipped before
    /// them).
    pub induction_skippable: usize,
}

impl RewriteStats {
    /// Total number of rewrites applied.
    pub fn total(&self) -> usize {
        self.transpose_pairs_eliminated
            + self.selections_fused
            + self.limits_pushed
            + self.predicates_pushed
            + self.projections_pushed
    }
}

/// Which rewrite rules an optimization pass may apply. Ablation benches toggle these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Enable `TRANSPOSE(TRANSPOSE(x)) → x`.
    pub eliminate_double_transpose: bool,
    /// Enable SELECTION fusion.
    pub fuse_selections: bool,
    /// Enable LIMIT push-down.
    pub push_limits: bool,
    /// Enable folding sargable SELECTION predicates into `ScanCsv` leaves.
    pub push_scan_predicates: bool,
    /// Enable folding by-label PROJECTIONs into `ScanCsv` leaves.
    pub push_scan_projections: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            eliminate_double_transpose: true,
            fuse_selections: true,
            push_limits: true,
            push_scan_predicates: true,
            push_scan_projections: true,
        }
    }
}

impl OptimizerConfig {
    /// A configuration with every rule disabled (the "no optimizer" ablation arm).
    pub fn disabled() -> Self {
        OptimizerConfig {
            eliminate_double_transpose: false,
            fuse_selections: false,
            push_limits: false,
            push_scan_predicates: false,
            push_scan_projections: false,
        }
    }
}

/// Run the rewrite pipeline to fixpoint (bounded) and report what was done.
pub fn optimize(expr: &AlgebraExpr, config: OptimizerConfig) -> (AlgebraExpr, RewriteStats) {
    let mut stats = RewriteStats::default();
    let mut current = expr.clone();
    // Rules only ever shrink or reorder the tree, so a small bounded loop reaches a
    // fixpoint; the bound guards against pathological interactions.
    for _ in 0..8 {
        let mut changed = false;
        if config.eliminate_double_transpose {
            let (next, hits) = eliminate_double_transpose(&current);
            if hits > 0 {
                stats.transpose_pairs_eliminated += hits;
                current = next;
                changed = true;
            }
        }
        if config.fuse_selections {
            let (next, hits) = fuse_selections(&current);
            if hits > 0 {
                stats.selections_fused += hits;
                current = next;
                changed = true;
            }
        }
        if config.push_limits {
            let (next, hits) = push_limits(&current);
            if hits > 0 {
                stats.limits_pushed += hits;
                current = next;
                changed = true;
            }
        }
        if config.push_scan_predicates {
            let (next, hits) = push_scan_predicates(&current);
            if hits > 0 {
                stats.predicates_pushed += hits;
                current = next;
                changed = true;
            }
        }
        if config.push_scan_projections {
            let (next, hits) = push_scan_projections(&current);
            if hits > 0 {
                stats.projections_pushed += hits;
                current = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    stats.induction_skippable = count_induction_skippable(&current);
    (current, stats)
}

/// Rewrite children with `f`, preserving the operator at the root.
fn map_children(
    expr: &AlgebraExpr,
    f: &mut impl FnMut(&AlgebraExpr) -> AlgebraExpr,
) -> AlgebraExpr {
    let mut out = expr.clone();
    match &mut out {
        AlgebraExpr::Literal(_) | AlgebraExpr::Handle(_) | AlgebraExpr::ScanCsv(_) => {}
        AlgebraExpr::Selection { input, .. }
        | AlgebraExpr::Projection { input, .. }
        | AlgebraExpr::DropDuplicates { input }
        | AlgebraExpr::GroupBy { input, .. }
        | AlgebraExpr::Sort { input, .. }
        | AlgebraExpr::Rename { input, .. }
        | AlgebraExpr::Window { input, .. }
        | AlgebraExpr::Transpose { input }
        | AlgebraExpr::Map { input, .. }
        | AlgebraExpr::ToLabels { input, .. }
        | AlgebraExpr::FromLabels { input, .. }
        | AlgebraExpr::Limit { input, .. } => {
            **input = f(input);
        }
        AlgebraExpr::Union { left, right }
        | AlgebraExpr::Difference { left, right }
        | AlgebraExpr::CrossProduct { left, right }
        | AlgebraExpr::Join { left, right, .. } => {
            **left = f(left);
            **right = f(right);
        }
    }
    out
}

fn eliminate_double_transpose(expr: &AlgebraExpr) -> (AlgebraExpr, usize) {
    fn walk(expr: &AlgebraExpr, hits: &mut usize) -> AlgebraExpr {
        if let AlgebraExpr::Transpose { input } = expr {
            if let AlgebraExpr::Transpose { input: inner } = input.as_ref() {
                *hits += 1;
                return walk(inner, hits);
            }
        }
        map_children(expr, &mut |child| walk(child, hits))
    }
    let mut hits = 0;
    let out = walk(expr, &mut hits);
    (out, hits)
}

fn fuse_selections(expr: &AlgebraExpr) -> (AlgebraExpr, usize) {
    fn walk(expr: &AlgebraExpr, hits: &mut usize) -> AlgebraExpr {
        if let AlgebraExpr::Selection { input, predicate } = expr {
            if let AlgebraExpr::Selection {
                input: inner_input,
                predicate: inner_predicate,
            } = input.as_ref()
            {
                *hits += 1;
                // Inner predicate applies first, so it goes on the left of the AND.
                let fused = AlgebraExpr::Selection {
                    input: inner_input.clone(),
                    predicate: Predicate::And(
                        Box::new(inner_predicate.clone()),
                        Box::new(predicate.clone()),
                    ),
                };
                return walk(&fused, hits);
            }
        }
        map_children(expr, &mut |child| walk(child, hits))
    }
    let mut hits = 0;
    let out = walk(expr, &mut hits);
    (out, hits)
}

/// True when a prefix/suffix of the operator's output only needs the same prefix/suffix
/// of its input (so LIMIT can move below it).
fn limit_transparent(expr: &AlgebraExpr, from_end: bool) -> bool {
    match expr {
        AlgebraExpr::Map { func, .. } => func.preserves_arity(),
        AlgebraExpr::Projection { .. } | AlgebraExpr::Rename { .. } => true,
        // Prefix-only: cumulative / trailing windows depend only on earlier rows, so a
        // head() needs just the head of the input. A tail() would need the full prefix,
        // so suffix limits never push below windows.
        AlgebraExpr::Window { func, .. } => {
            !from_end
                && matches!(
                    func,
                    WindowFunc::CumSum
                        | WindowFunc::CumMax
                        | WindowFunc::CumMin
                        | WindowFunc::Diff { .. }
                        | WindowFunc::RollingMean { .. }
                        | WindowFunc::RollingSum { .. }
                        | WindowFunc::Shift { offset: 0.. }
                )
        }
        _ => false,
    }
}

fn push_limits(expr: &AlgebraExpr) -> (AlgebraExpr, usize) {
    fn walk(expr: &AlgebraExpr, hits: &mut usize) -> AlgebraExpr {
        if let AlgebraExpr::Limit { input, k, from_end } = expr {
            if limit_transparent(input, *from_end) {
                *hits += 1;
                // Swap: LIMIT(op(x)) → op(LIMIT(x)).
                let mut swapped = input.as_ref().clone();
                match &mut swapped {
                    AlgebraExpr::Map { input: inner, .. }
                    | AlgebraExpr::Projection { input: inner, .. }
                    | AlgebraExpr::Rename { input: inner, .. }
                    | AlgebraExpr::Window { input: inner, .. } => {
                        let limited = AlgebraExpr::Limit {
                            input: inner.clone(),
                            k: *k,
                            from_end: *from_end,
                        };
                        **inner = limited;
                    }
                    _ => unreachable!("limit_transparent covers only unary row-wise ops"),
                }
                return walk(&swapped, hits);
            }
        }
        map_children(expr, &mut |child| walk(child, hits))
    }
    let mut hits = 0;
    let out = walk(expr, &mut hits);
    (out, hits)
}

/// Fold a SELECTION sitting directly on a `ScanCsv` leaf into the leaf, so the scan
/// evaluates the predicate during its parse loop (and can skip whole chunks via
/// min/max statistics) instead of materialising every row first.
///
/// Soundness guards:
/// * the scan must not already carry a predicate (fusion produces one SELECTION, so
///   this only occurs across separate optimize calls — stay conservative);
/// * the predicate must be [`Predicate::scan_pushable`] (no position- or
///   closure-dependent parts) with statically known referenced columns;
/// * when the scan already has a projection pushed, every referenced column must
///   survive it. The algebra evaluates a predicate on a *missing* column as
///   all-false, so pushing a predicate below the projection that dropped its column
///   would resurrect rows the unpushed plan filters out.
fn push_scan_predicates(expr: &AlgebraExpr) -> (AlgebraExpr, usize) {
    fn walk(expr: &AlgebraExpr, hits: &mut usize) -> AlgebraExpr {
        if let AlgebraExpr::Selection { input, predicate } = expr {
            if let AlgebraExpr::ScanCsv(scan) = input.as_ref() {
                if scan.predicate.is_none() && predicate.scan_pushable() {
                    if let Some(cols) = predicate.referenced_columns() {
                        let survives_projection = match &scan.projection {
                            None => true,
                            Some(proj) => cols.iter().all(|c| proj.contains(c)),
                        };
                        if survives_projection {
                            *hits += 1;
                            return AlgebraExpr::scan_csv(scan.with_predicate(predicate.clone()));
                        }
                    }
                }
            }
        }
        map_children(expr, &mut |child| walk(child, hits))
    }
    let mut hits = 0;
    let out = walk(expr, &mut hits);
    (out, hits)
}

/// Fold a by-label PROJECTION sitting directly on a `ScanCsv` leaf into the leaf, so
/// the parse loop only splits, allocates, and encodes the referenced columns. The scan
/// still parses (but does not emit) any extra columns its own pushed predicate needs,
/// which keeps `PROJECT(SELECT(scan))` pipelines fully foldable.
fn push_scan_projections(expr: &AlgebraExpr) -> (AlgebraExpr, usize) {
    fn walk(expr: &AlgebraExpr, hits: &mut usize) -> AlgebraExpr {
        if let AlgebraExpr::Projection { input, columns } = expr {
            if let AlgebraExpr::ScanCsv(scan) = input.as_ref() {
                if scan.projection.is_none() {
                    if let ColumnSelector::ByLabels(labels) = columns {
                        *hits += 1;
                        return AlgebraExpr::scan_csv(scan.with_projection(labels.clone()));
                    }
                }
            }
        }
        map_children(expr, &mut |child| walk(child, hits))
    }
    let mut hits = 0;
    let out = walk(expr, &mut hits);
    (out, hits)
}

/// Count operators whose inputs never need schema induction (position-only selections,
/// arity-preserving maps with statically known output types, projections, renames,
/// limits, unions): paper §5.1.1's "rewrite rules to skip applying S".
fn count_induction_skippable(expr: &AlgebraExpr) -> usize {
    let own = match expr {
        AlgebraExpr::Selection { predicate, .. } => usize::from(predicate.is_position_only()),
        AlgebraExpr::Map { func, .. } => usize::from(
            func.static_output_domain().is_some() || matches!(func, MapFunc::FillNull(_)),
        ),
        AlgebraExpr::Projection { .. }
        | AlgebraExpr::Rename { .. }
        | AlgebraExpr::Limit { .. }
        | AlgebraExpr::Union { .. }
        | AlgebraExpr::Transpose { .. } => 1,
        _ => 0,
    };
    own + expr
        .children()
        .iter()
        .map(|c| count_induction_skippable(c))
        .sum::<usize>()
}

/// The two pivot plans of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotPlan {
    /// Pivot directly on the requested column (Figure 8a).
    Direct,
    /// Pivot on the other axis — whose distinct values are fewer or already sorted —
    /// and TRANSPOSE the smaller result (Figure 8b).
    PivotOtherAxisThenTranspose,
}

/// Choose between the Figure 8 plans given the distinct-value counts of the requested
/// pivot column and of the alternative axis column. Pivoting groups by the chosen
/// column, so grouping by the axis with fewer distinct values builds fewer, larger
/// groups and a narrower intermediate; the final TRANSPOSE of the small pivoted result
/// is cheap (especially under metadata-only transpose).
pub fn choose_pivot_plan(requested_distinct: usize, other_distinct: usize) -> PivotPlan {
    if other_distinct < requested_distinct {
        PivotPlan::PivotOtherAxisThenTranspose
    } else {
        PivotPlan::Direct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_core::algebra::{CmpOp, ColumnSelector};
    use df_core::dataframe::DataFrame;
    use df_core::ops::execute_reference;
    use df_types::cell::{cell, Cell};

    fn frame() -> DataFrame {
        DataFrame::from_rows(
            vec!["a", "b"],
            vec![
                vec![cell(1), cell(10.0)],
                vec![cell(2), Cell::Null],
                vec![cell(3), cell(30.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn double_transpose_is_eliminated() {
        let expr = AlgebraExpr::literal(frame()).transpose().transpose();
        let (optimized, stats) = optimize(&expr, OptimizerConfig::default());
        assert_eq!(stats.transpose_pairs_eliminated, 1);
        assert_eq!(optimized.transpose_count(), 0);
        // Semantics preserved.
        let a = execute_reference(&expr).unwrap();
        let b = execute_reference(&optimized).unwrap();
        assert!(a.same_data(&b));
    }

    #[test]
    fn triple_transpose_keeps_exactly_one() {
        let expr = AlgebraExpr::literal(frame())
            .transpose()
            .transpose()
            .transpose();
        let (optimized, stats) = optimize(&expr, OptimizerConfig::default());
        assert_eq!(stats.transpose_pairs_eliminated, 1);
        assert_eq!(optimized.transpose_count(), 1);
    }

    #[test]
    fn adjacent_selections_fuse_and_preserve_semantics() {
        let expr = AlgebraExpr::literal(frame())
            .select(Predicate::ColCmp {
                column: cell("a"),
                op: CmpOp::Gt,
                value: cell(1),
            })
            .select(Predicate::NotNull { column: cell("b") });
        let (optimized, stats) = optimize(&expr, OptimizerConfig::default());
        assert_eq!(stats.selections_fused, 1);
        assert_eq!(optimized.operator_count(), 1);
        assert!(execute_reference(&optimized)
            .unwrap()
            .same_data(&execute_reference(&expr).unwrap()));
    }

    #[test]
    fn limit_pushes_below_rowwise_operators() {
        let expr = AlgebraExpr::literal(frame())
            .map(MapFunc::IsNullMask)
            .project(ColumnSelector::All)
            .limit(2, false);
        let (optimized, stats) = optimize(&expr, OptimizerConfig::default());
        assert_eq!(stats.limits_pushed, 2);
        // The limit should now sit directly on the literal.
        fn limit_depth(expr: &AlgebraExpr) -> Option<usize> {
            match expr {
                AlgebraExpr::Limit { .. } => Some(expr.depth()),
                _ => expr.children().iter().find_map(|c| limit_depth(c)),
            }
        }
        assert_eq!(limit_depth(&optimized), Some(2));
        assert!(execute_reference(&optimized)
            .unwrap()
            .same_data(&execute_reference(&expr).unwrap()));
    }

    #[test]
    fn suffix_limit_does_not_push_below_windows() {
        let prefix = AlgebraExpr::literal(frame())
            .window(ColumnSelector::All, WindowFunc::CumSum)
            .limit(2, false);
        let (_, prefix_stats) = optimize(&prefix, OptimizerConfig::default());
        assert_eq!(prefix_stats.limits_pushed, 1);
        let suffix = AlgebraExpr::literal(frame())
            .window(ColumnSelector::All, WindowFunc::CumSum)
            .limit(2, true);
        let (optimized, suffix_stats) = optimize(&suffix, OptimizerConfig::default());
        assert_eq!(suffix_stats.limits_pushed, 0);
        assert!(execute_reference(&optimized)
            .unwrap()
            .same_data(&execute_reference(&suffix).unwrap()));
    }

    #[test]
    fn limit_does_not_push_below_selection_or_groupby() {
        let expr = AlgebraExpr::literal(frame())
            .select(Predicate::NotNull { column: cell("b") })
            .limit(1, false);
        let (optimized, stats) = optimize(&expr, OptimizerConfig::default());
        assert_eq!(stats.limits_pushed, 0);
        assert!(execute_reference(&optimized)
            .unwrap()
            .same_data(&execute_reference(&expr).unwrap()));
    }

    #[test]
    fn disabled_config_applies_nothing() {
        let expr = AlgebraExpr::literal(frame()).transpose().transpose();
        let (optimized, stats) = optimize(&expr, OptimizerConfig::disabled());
        assert_eq!(stats.total(), 0);
        assert_eq!(optimized.transpose_count(), 2);
    }

    #[test]
    fn induction_skippable_counts_type_agnostic_operators() {
        let expr = AlgebraExpr::literal(frame())
            .select(Predicate::PositionRange { start: 0, end: 2 })
            .map(MapFunc::IsNullMask)
            .project(ColumnSelector::All);
        let (_, stats) = optimize(&expr, OptimizerConfig::default());
        assert_eq!(stats.induction_skippable, 3);
    }

    fn scan() -> AlgebraExpr {
        AlgebraExpr::scan_csv(df_core::scan::ScanCsv::new(
            "/tmp/optimizer_test.csv",
            df_core::scan::ScanOptions::default(),
            "test-scan",
        ))
    }

    fn gt_a(value: i64) -> Predicate {
        Predicate::ColCmp {
            column: cell("a"),
            op: CmpOp::Gt,
            value: cell(value),
        }
    }

    #[test]
    fn selection_folds_into_scan_leaf() {
        let expr = scan().select(gt_a(1));
        let (optimized, stats) = optimize(&expr, OptimizerConfig::default());
        assert_eq!(stats.predicates_pushed, 1);
        match &optimized {
            AlgebraExpr::ScanCsv(s) => {
                assert_eq!(format!("{:?}", s.predicate), format!("{:?}", Some(gt_a(1))))
            }
            other => panic!("expected a bare scan, got {}", other.name()),
        }
    }

    #[test]
    fn projection_and_fused_selections_fold_into_scan_leaf() {
        let expr = scan()
            .select(gt_a(1))
            .select(Predicate::NotNull { column: cell("b") })
            .project(ColumnSelector::ByLabels(vec![cell("b")]));
        let (optimized, stats) = optimize(&expr, OptimizerConfig::default());
        assert_eq!(stats.selections_fused, 1);
        assert_eq!(stats.predicates_pushed, 1);
        assert_eq!(stats.projections_pushed, 1);
        match &optimized {
            AlgebraExpr::ScanCsv(s) => {
                assert_eq!(s.projection, Some(vec![cell("b")]));
                assert!(s.predicate.is_some());
            }
            other => panic!("expected a bare scan, got {}", other.name()),
        }
    }

    #[test]
    fn predicate_on_projected_away_column_stays_above_scan() {
        // PROJECT(b) folds in first; SELECT(a > 1) then references a column the scan
        // no longer emits. The unpushed plan evaluates that predicate as all-false,
        // so folding it below the projection would change semantics.
        let pre_projected = match scan() {
            AlgebraExpr::ScanCsv(s) => AlgebraExpr::scan_csv(s.with_projection(vec![cell("b")])),
            _ => unreachable!(),
        };
        let expr = pre_projected.select(gt_a(1));
        let (optimized, stats) = optimize(&expr, OptimizerConfig::default());
        assert_eq!(stats.predicates_pushed, 0);
        assert!(matches!(optimized, AlgebraExpr::Selection { .. }));
    }

    #[test]
    fn opaque_predicates_do_not_fold_into_scans() {
        for predicate in [
            Predicate::PositionRange { start: 0, end: 2 },
            Predicate::Custom {
                name: "opaque".into(),
                func: std::sync::Arc::new(|_| true),
            },
        ] {
            let expr = scan().select(predicate);
            let (optimized, stats) = optimize(&expr, OptimizerConfig::default());
            assert_eq!(stats.predicates_pushed, 0);
            assert!(matches!(optimized, AlgebraExpr::Selection { .. }));
        }
    }

    #[test]
    fn disabled_config_leaves_scans_bare() {
        let expr = scan()
            .select(gt_a(1))
            .project(ColumnSelector::ByLabels(vec![cell("a")]));
        let (optimized, stats) = optimize(&expr, OptimizerConfig::disabled());
        assert_eq!(stats.total(), 0);
        assert_eq!(optimized.operator_count(), 2);
    }

    #[test]
    fn pivot_axis_choice_follows_distinct_counts() {
        assert_eq!(
            choose_pivot_plan(12, 3),
            PivotPlan::PivotOtherAxisThenTranspose
        );
        assert_eq!(choose_pivot_plan(3, 12), PivotPlan::Direct);
        assert_eq!(choose_pivot_plan(5, 5), PivotPlan::Direct);
    }
}
