//! The task-parallel execution layer.
//!
//! Paper §3.3: MODIN schedules dataframe partitions on a task-parallel asynchronous
//! execution engine (Ray or Dask in the Python implementation). Here the execution
//! layer is an in-process scoped thread pool: [`ParallelExecutor::par_map`] fans a
//! closure out over partitions on worker threads and collects results in order. A
//! `threads = 1` configuration degenerates to sequential execution, which the tests use
//! for determinism and the ablations use to isolate layout effects from parallelism.
//!
//! The executor also carries the session's optional [`SpillStore`]: when the engine is
//! configured with a memory budget, every fan-out layer (per-band maps, shuffles, the
//! JOIN/SORT/DROP_DUPLICATES/DIFFERENCE kernels) reaches the store through
//! [`ParallelExecutor::store`] so partitions follow the out-of-core
//! load → compute → store-and-maybe-spill lifecycle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use df_storage::spill::SpillStore;
use df_types::error::{DfError, DfResult};

/// The default worker count: the `DF_THREADS` environment variable when set (CI runs
/// the test suite as a matrix over it), otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    threads_from_env(std::env::var("DF_THREADS").ok().as_deref())
}

/// Resolve a `DF_THREADS`-style override against the machine's parallelism. Split out
/// of [`default_threads`] so the precedence is unit-testable without touching the
/// process environment.
fn threads_from_env(raw: Option<&str>) -> usize {
    if let Some(threads) = raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        if threads >= 1 {
            return threads;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scoped thread-pool executor for per-partition work.
pub struct ParallelExecutor {
    threads: usize,
    store: Option<Arc<SpillStore>>,
    tasks_run: AtomicU64,
    batches_run: AtomicU64,
    shuffles_run: AtomicU64,
}

impl ParallelExecutor {
    /// An executor with an explicit worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ParallelExecutor {
            threads: threads.max(1),
            store: None,
            tasks_run: AtomicU64::new(0),
            batches_run: AtomicU64::new(0),
            shuffles_run: AtomicU64::new(0),
        }
    }

    /// An executor sized to the machine's available parallelism (or `DF_THREADS`).
    pub fn default_parallelism() -> Self {
        ParallelExecutor::new(default_threads())
    }

    /// Attach the session's spill store: band-level operators built on this executor
    /// will keep their results in the store (and therefore under its memory budget).
    pub fn with_store(mut self, store: Option<Arc<SpillStore>>) -> Self {
        self.store = store;
        self
    }

    /// The session's spill store, when the engine runs with a memory budget.
    pub fn store(&self) -> Option<&Arc<SpillStore>> {
        self.store.as_ref()
    }

    /// Number of worker threads used for fan-out.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total number of per-item tasks executed so far.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run.load(Ordering::Relaxed)
    }

    /// Total number of fan-out batches executed so far.
    pub fn batches_run(&self) -> u64 {
        self.batches_run.load(Ordering::Relaxed)
    }

    /// Total number of shuffles (hash or range exchanges) executed so far. Recorded by
    /// the shuffle subsystem so ablations can report shuffle counts per query.
    pub fn shuffles_run(&self) -> u64 {
        self.shuffles_run.load(Ordering::Relaxed)
    }

    /// Record one shuffle (called by the shuffle subsystem per exchange).
    pub fn record_shuffle(&self) {
        self.shuffles_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Apply `f` to every item, in parallel across the pool, returning results in input
    /// order. The first error encountered (lowest index) is returned if any task fails.
    pub fn par_map<T, U, F>(&self, items: Vec<T>, f: F) -> DfResult<Vec<U>>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> DfResult<U> + Send + Sync,
    {
        self.batches_run.fetch_add(1, Ordering::Relaxed);
        let n = items.len();
        self.tasks_run.fetch_add(n as u64, Ordering::Relaxed);
        if n == 0 {
            return Ok(Vec::new());
        }
        if self.threads == 1 || n == 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        // Work-stealing-free static assignment: a shared queue of indexed items that
        // each worker drains. Results are written into pre-allocated slots so order is
        // preserved without sorting.
        let queue = Mutex::new(items.into_iter().enumerate().collect::<Vec<_>>());
        let results: Vec<Mutex<Option<DfResult<U>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let next = {
                        let mut queue = queue.lock().expect("executor queue poisoned");
                        queue.pop()
                    };
                    match next {
                        Some((index, item)) => {
                            let outcome = f(index, item);
                            *results[index]
                                .lock()
                                .expect("executor result slot poisoned") = Some(outcome);
                        }
                        None => break,
                    }
                });
            }
        });
        let mut output = Vec::with_capacity(n);
        for slot in results {
            let value = slot
                .into_inner()
                .map_err(|_| DfError::internal("executor result slot poisoned"))?
                .ok_or_else(|| DfError::internal("executor task produced no result"))?;
            output.push(value?);
        }
        Ok(output)
    }
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        ParallelExecutor::default_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let executor = ParallelExecutor::new(4);
        let items: Vec<u64> = (0..100).collect();
        let out = executor.par_map(items, |_, v| Ok(v * 2)).unwrap();
        assert_eq!(out[0], 0);
        assert_eq!(out[99], 198);
        assert_eq!(out.len(), 100);
        assert_eq!(executor.tasks_run(), 100);
        assert_eq!(executor.batches_run(), 1);
        assert_eq!(executor.shuffles_run(), 0);
        executor.record_shuffle();
        assert_eq!(executor.shuffles_run(), 1);
    }

    #[test]
    fn sequential_mode_runs_in_place() {
        let executor = ParallelExecutor::new(1);
        assert_eq!(executor.threads(), 1);
        let out = executor
            .par_map(vec![1, 2, 3], |i, v| Ok(v + i as i32))
            .unwrap();
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn errors_are_propagated_by_lowest_index() {
        let executor = ParallelExecutor::new(4);
        let err = executor
            .par_map((0..10).collect::<Vec<u32>>(), |_, v| {
                if v >= 3 {
                    Err(DfError::internal(format!("task {v} failed")))
                } else {
                    Ok(v)
                }
            })
            .unwrap_err();
        assert!(matches!(err, DfError::Internal(msg) if msg.contains("task 3")));
    }

    #[test]
    fn empty_input_is_fine_and_zero_threads_clamp() {
        let executor = ParallelExecutor::new(0);
        assert_eq!(executor.threads(), 1);
        let out: Vec<u32> = executor.par_map(Vec::<u32>::new(), |_, v| Ok(v)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn default_parallelism_reports_at_least_one_thread() {
        assert!(ParallelExecutor::default().threads() >= 1);
    }

    #[test]
    fn df_threads_override_wins_when_valid() {
        assert_eq!(threads_from_env(Some("4")), 4);
        assert_eq!(threads_from_env(Some(" 2 ")), 2);
        let auto = threads_from_env(None);
        assert!(auto >= 1);
        // Zero and garbage fall back to the machine's parallelism.
        assert_eq!(threads_from_env(Some("0")), auto);
        assert_eq!(threads_from_env(Some("not-a-number")), auto);
    }

    #[test]
    fn store_attaches_and_detaches() {
        let executor = ParallelExecutor::new(2);
        assert!(executor.store().is_none());
        let store = Arc::new(SpillStore::unbounded().unwrap());
        let executor = executor.with_store(Some(Arc::clone(&store)));
        assert!(Arc::ptr_eq(executor.store().unwrap(), &store));
    }
}
