//! The task-parallel execution layer.
//!
//! Paper §3.3: MODIN schedules dataframe partitions on a task-parallel asynchronous
//! execution engine (Ray or Dask in the Python implementation). Here the execution
//! layer is an in-process scoped thread pool: [`ParallelExecutor::par_map`] fans a
//! closure out over partitions on worker threads and collects results in order. A
//! `threads = 1` configuration degenerates to sequential execution, which the tests use
//! for determinism and the ablations use to isolate layout effects from parallelism.
//!
//! The executor also carries the session's optional [`SpillStore`]: when the engine is
//! configured with a memory budget, every fan-out layer (per-band maps, shuffles, the
//! JOIN/SORT/DROP_DUPLICATES/DIFFERENCE kernels) reaches the store through
//! [`ParallelExecutor::store`] so partitions follow the out-of-core
//! load → compute → store-and-maybe-spill lifecycle.
//!
//! ## Fault isolation
//!
//! Every task runs under `catch_unwind`: a panicking worker surfaces as a typed
//! [`DfError::WorkerPanic`] instead of unwinding through the pool, sibling tasks are
//! abandoned via a fail-fast flag, and — because the queue and result slots use
//! non-poisoning `parking_lot` locks — the executor, its store and the session remain
//! fully usable afterwards. A cooperative [`CancelToken`] (shared with the session's
//! timeout/cancel entry points) is polled at every task boundary, so a cancelled
//! statement stops between tasks, never mid-write.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use df_core::dataframe::DataFrame;
use df_storage::spill::SpillStore;
use df_types::cancel::CancelToken;
use df_types::error::{DfError, DfResult};

/// The default worker count: the `DF_THREADS` environment variable when set (CI runs
/// the test suite as a matrix over it), otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    threads_from_env(std::env::var("DF_THREADS").ok().as_deref())
}

/// Resolve a `DF_THREADS`-style override against the machine's parallelism. Split out
/// of [`default_threads`] so the precedence is unit-testable without touching the
/// process environment.
fn threads_from_env(raw: Option<&str>) -> usize {
    if let Some(threads) = raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        if threads >= 1 {
            return threads;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Render a caught panic payload for [`DfError::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one task with panic isolation: a panic in `f` becomes a typed
/// [`DfError::WorkerPanic`] at this boundary instead of unwinding into the pool.
/// `AssertUnwindSafe` is sound here because a failed task's result is never
/// observed — the whole batch errors out, discarding any state `f` touched.
fn run_isolated<T, U, F>(f: &F, index: usize, item: T) -> DfResult<U>
where
    F: Fn(usize, T) -> DfResult<U>,
{
    catch_unwind(AssertUnwindSafe(|| f(index, item)))
        .unwrap_or_else(|payload| Err(DfError::WorkerPanic(panic_message(payload))))
}

/// A scoped thread-pool executor for per-partition work.
pub struct ParallelExecutor {
    threads: usize,
    store: Option<Arc<SpillStore>>,
    cancel: CancelToken,
    backend: Arc<dyn crate::backend::ExecBackend>,
    tasks_run: AtomicU64,
    batches_run: AtomicU64,
    shuffles_run: AtomicU64,
}

impl ParallelExecutor {
    /// An executor with an explicit worker count (clamped to at least 1), placing
    /// band tasks on the in-process [`crate::backend::ThreadsBackend`] by default.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        ParallelExecutor {
            threads,
            store: None,
            cancel: CancelToken::new(),
            backend: Arc::new(crate::backend::ThreadsBackend::new(threads)),
            tasks_run: AtomicU64::new(0),
            batches_run: AtomicU64::new(0),
            shuffles_run: AtomicU64::new(0),
        }
    }

    /// An executor sized to the machine's available parallelism (or `DF_THREADS`).
    pub fn default_parallelism() -> Self {
        ParallelExecutor::new(default_threads())
    }

    /// Attach the session's spill store: band-level operators built on this executor
    /// will keep their results in the store (and therefore under its memory budget).
    pub fn with_store(mut self, store: Option<Arc<SpillStore>>) -> Self {
        self.store = store;
        self
    }

    /// The session's spill store, when the engine runs with a memory budget.
    pub fn store(&self) -> Option<&Arc<SpillStore>> {
        self.store.as_ref()
    }

    /// Replace the cooperative cancel token (builder style). The session shares one
    /// token across the engine so its timeout/cancel entry points reach every batch.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The executor's cooperative cancel token: `cancel()` makes in-flight batches
    /// stop at the next task boundary with [`DfError::Cancelled`].
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Replace the task-placement backend (builder style). `par_map` fan-out stays
    /// on this executor's thread pool either way; the backend decides where each
    /// [`crate::backend::BandTask`] actually runs.
    pub fn with_backend(mut self, backend: Arc<dyn crate::backend::ExecBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The executor's task-placement backend.
    pub fn backend(&self) -> &Arc<dyn crate::backend::ExecBackend> {
        &self.backend
    }

    /// Place one band task on the backend. The engine's operator kernels call this
    /// from inside `par_map` closures, so placement composes with fan-out,
    /// cancellation and panic isolation.
    pub fn run_task(
        &self,
        task: &crate::backend::BandTask,
        inputs: Vec<DataFrame>,
    ) -> DfResult<Vec<DataFrame>> {
        self.backend.run_task(task, inputs)
    }

    /// Number of worker threads used for fan-out.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total number of per-item tasks executed so far.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run.load(Ordering::Relaxed)
    }

    /// Total number of fan-out batches executed so far.
    pub fn batches_run(&self) -> u64 {
        self.batches_run.load(Ordering::Relaxed)
    }

    /// Total number of shuffles (hash or range exchanges) executed so far. Recorded by
    /// the shuffle subsystem so ablations can report shuffle counts per query.
    pub fn shuffles_run(&self) -> u64 {
        self.shuffles_run.load(Ordering::Relaxed)
    }

    /// Record one shuffle (called by the shuffle subsystem per exchange).
    pub fn record_shuffle(&self) {
        self.shuffles_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Apply `f` to every item, in parallel across the pool, returning results in input
    /// order. The first error encountered (lowest index) is returned if any task fails.
    ///
    /// Every task runs panic-isolated: a panicking worker yields a typed
    /// [`DfError::WorkerPanic`], siblings still queued are abandoned (fail-fast), and
    /// the pool's locks stay healthy for the next batch. Cancellation via the
    /// executor's [`CancelToken`] is observed at every task boundary.
    pub fn par_map<T, U, F>(&self, items: Vec<T>, f: F) -> DfResult<Vec<U>>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> DfResult<U> + Send + Sync,
    {
        self.batches_run.fetch_add(1, Ordering::Relaxed);
        let n = items.len();
        self.tasks_run.fetch_add(n as u64, Ordering::Relaxed);
        if n == 0 {
            return Ok(Vec::new());
        }
        if self.threads == 1 || n == 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    self.cancel.check("band task")?;
                    run_isolated(&f, i, item)
                })
                .collect();
        }
        // Work-stealing-free static assignment: a shared queue of indexed items that
        // each worker drains. Results are written into pre-allocated slots so order is
        // preserved without sorting. A worker panic sets the abort flag so siblings
        // stop picking up work; ordinary task errors still let the batch drain, which
        // keeps "lowest-index error wins" deterministic.
        let queue = Mutex::new(items.into_iter().enumerate().collect::<Vec<_>>());
        let results: Vec<Mutex<Option<DfResult<U>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let abort = AtomicBool::new(false);
        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if abort.load(Ordering::SeqCst) || self.cancel.is_cancelled() {
                        break;
                    }
                    let next = queue.lock().pop();
                    match next {
                        Some((index, item)) => {
                            let outcome = run_isolated(&f, index, item);
                            if matches!(outcome, Err(DfError::WorkerPanic(_))) {
                                abort.store(true, Ordering::SeqCst);
                            }
                            *results[index].lock() = Some(outcome);
                        }
                        None => break,
                    }
                });
            }
        });
        let slots: Vec<Option<DfResult<U>>> = results.into_iter().map(Mutex::into_inner).collect();
        // Error precedence: the lowest-index *typed* failure wins outright — a
        // sibling that panics (possibly at a lower index, possibly racing the
        // fail-fast flag) must not mask the error that actually explains the
        // batch. Panics only surface when no typed error exists, and slots left
        // empty by fail-fast or cancellation only surface (as Cancelled) when
        // nothing failed at all.
        if let Some(err) = slots.iter().find_map(|slot| match slot {
            Some(Err(err)) if !err.is_cancelled() && !matches!(err, DfError::WorkerPanic(_)) => {
                Some(err.clone())
            }
            _ => None,
        }) {
            return Err(err);
        }
        if let Some(err) = slots.iter().find_map(|slot| match slot {
            Some(Err(err @ DfError::WorkerPanic(_))) => Some(err.clone()),
            _ => None,
        }) {
            return Err(err);
        }
        let mut output = Vec::with_capacity(n);
        for slot in slots {
            match slot {
                Some(Ok(value)) => output.push(value),
                Some(Err(err)) => return Err(err),
                None => {
                    return Err(DfError::Cancelled(
                        "band task abandoned after cancellation".to_string(),
                    ))
                }
            }
        }
        Ok(output)
    }
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        ParallelExecutor::default_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let executor = ParallelExecutor::new(4);
        let items: Vec<u64> = (0..100).collect();
        let out = executor.par_map(items, |_, v| Ok(v * 2)).unwrap();
        assert_eq!(out[0], 0);
        assert_eq!(out[99], 198);
        assert_eq!(out.len(), 100);
        assert_eq!(executor.tasks_run(), 100);
        assert_eq!(executor.batches_run(), 1);
        assert_eq!(executor.shuffles_run(), 0);
        executor.record_shuffle();
        assert_eq!(executor.shuffles_run(), 1);
    }

    #[test]
    fn sequential_mode_runs_in_place() {
        let executor = ParallelExecutor::new(1);
        assert_eq!(executor.threads(), 1);
        let out = executor
            .par_map(vec![1, 2, 3], |i, v| Ok(v + i as i32))
            .unwrap();
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn errors_are_propagated_by_lowest_index() {
        let executor = ParallelExecutor::new(4);
        let err = executor
            .par_map((0..10).collect::<Vec<u32>>(), |_, v| {
                if v >= 3 {
                    Err(DfError::internal(format!("task {v} failed")))
                } else {
                    Ok(v)
                }
            })
            .unwrap_err();
        assert!(matches!(err, DfError::Internal(msg) if msg.contains("task 3")));
    }

    #[test]
    fn a_late_panic_does_not_mask_an_earlier_typed_error() {
        // Regression: one item panics while a sibling returns a typed error. The
        // panic may land at the *lower* index, but the typed error is the one
        // that explains the failure and must win. The barrier guarantees both
        // items are mid-flight simultaneously (2 workers each pop one item
        // before blocking), so the fail-fast flag cannot serialise them.
        let barrier = std::sync::Barrier::new(2);
        let executor = ParallelExecutor::new(2);
        let err = executor
            .par_map(vec![0u32, 1u32], |_, v| {
                barrier.wait();
                if v == 0 {
                    panic!("panic on item 0");
                }
                Err::<u32, _>(DfError::spill_corruption(
                    "test.site",
                    "typed failure on item 1",
                ))
            })
            .unwrap_err();
        assert!(
            matches!(&err, DfError::SpillCorruption { .. }),
            "typed error must beat the panic, got {err:?}"
        );
        // Both orderings: typed error at the lower index also wins.
        let barrier = std::sync::Barrier::new(2);
        let err = executor
            .par_map(vec![0u32, 1u32], |_, v| {
                barrier.wait();
                if v == 1 {
                    panic!("panic on item 1");
                }
                Err::<u32, _>(DfError::spill_corruption(
                    "test.site",
                    "typed failure on item 0",
                ))
            })
            .unwrap_err();
        assert!(
            matches!(&err, DfError::SpillCorruption { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn worker_panics_become_typed_errors_and_the_pool_survives() {
        for threads in [1, 4] {
            let executor = ParallelExecutor::new(threads);
            let err = executor
                .par_map((0..16).collect::<Vec<u32>>(), |_, v| {
                    if v == 5 {
                        panic!("kaboom at {v}");
                    }
                    Ok(v)
                })
                .unwrap_err();
            assert!(
                matches!(&err, DfError::WorkerPanic(msg) if msg.contains("kaboom")),
                "threads={threads}: expected WorkerPanic, got {err:?}"
            );
            // No poisoned lock, no wedged state: the same executor keeps working.
            let out = executor
                .par_map((0..16).collect::<Vec<u32>>(), |_, v| Ok(v * 2))
                .unwrap();
            assert_eq!(out.len(), 16);
            assert_eq!(out[15], 30);
        }
    }

    #[test]
    fn cancellation_stops_batches_at_task_boundaries() {
        for threads in [1, 4] {
            let executor = ParallelExecutor::new(threads);
            executor.cancel_token().cancel();
            let err = executor
                .par_map((0..8).collect::<Vec<u32>>(), |_, v| Ok(v))
                .unwrap_err();
            assert!(err.is_cancelled(), "threads={threads}: got {err:?}");
            // Reset re-arms the executor for the next statement.
            executor.cancel_token().reset();
            let out = executor
                .par_map((0..8).collect::<Vec<u32>>(), |_, v| Ok(v))
                .unwrap();
            assert_eq!(out.len(), 8);
        }
    }

    #[test]
    fn empty_input_is_fine_and_zero_threads_clamp() {
        let executor = ParallelExecutor::new(0);
        assert_eq!(executor.threads(), 1);
        let out: Vec<u32> = executor.par_map(Vec::<u32>::new(), |_, v| Ok(v)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn default_parallelism_reports_at_least_one_thread() {
        assert!(ParallelExecutor::default().threads() >= 1);
    }

    #[test]
    fn df_threads_override_wins_when_valid() {
        assert_eq!(threads_from_env(Some("4")), 4);
        assert_eq!(threads_from_env(Some(" 2 ")), 2);
        let auto = threads_from_env(None);
        assert!(auto >= 1);
        // Zero and garbage fall back to the machine's parallelism.
        assert_eq!(threads_from_env(Some("0")), auto);
        assert_eq!(threads_from_env(Some("not-a-number")), auto);
    }

    #[test]
    fn store_attaches_and_detaches() {
        let executor = ParallelExecutor::new(2);
        assert!(executor.store().is_none());
        let store = Arc::new(SpillStore::unbounded().unwrap());
        let executor = executor.with_store(Some(Arc::clone(&store)));
        assert!(Arc::ptr_eq(executor.store().unwrap(), &store));
    }
}
