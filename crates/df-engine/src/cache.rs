//! Shared, budget-accounted result cache with single-flight execution.
//!
//! The §6.2.2 materialisation cache started life as one session's private
//! `HashMap<fingerprint, handle>`. A multi-tenant service wants the opposite: *one*
//! cache in front of the shared engine so identical statements from different
//! tenants execute once and everybody hits. [`ResultCache`] is that cache, designed
//! around three invariants the service stress suite pins:
//!
//! * **Single-flight** — the first session to miss a fingerprint becomes its
//!   *producer* (the key is marked in-flight); any other session submitting the
//!   same fingerprint blocks on the pending execution instead of re-executing, and
//!   is served the producer's handle when it lands. If the producer fails or is
//!   cancelled, its in-flight marker is withdrawn and the waiters race to become
//!   the new producer — an error never wedges a key.
//! * **Budget accounting** — every entry is costed via
//!   [`FrameHandle::approx_size_bytes`] (metadata only, spilled grids are costed
//!   from check-in sizes without load-backs) and the cache evicts
//!   least-recently-used entries past its byte budget. In-flight markers hold no
//!   bytes and are never evicted — a pending future always survives to completion.
//! * **Per-tenant attribution and quotas** — hits, productions and retained bytes
//!   are attributed to the tenant that caused them, and a tenant's retained bytes
//!   can be capped: past the quota its own least-recently-used entries are evicted
//!   first, and a single result too large for the quota is rejected with a typed
//!   [`DfError::ResourceExhausted`] so one tenant's appetite cannot crowd the
//!   shared budget.
//!
//! Entries keep the [`CachedResult`-style pin set](crate::session) of the plans
//! that produced their key: fingerprints identify literal/handle leaves by pointer
//! identity, so an entry must keep those allocations alive for exactly as long as
//! it is keyed on them. Eviction drops entry and pins together, which is what makes
//! eviction safe.
//!
//! Blocking uses `std::sync` primitives (the workspace's vendored `parking_lot`
//! shim deliberately has no `Condvar`); lock poisoning is impossible in practice —
//! no user code runs under the lock — and is recovered with
//! [`PoisonError::into_inner`] rather than propagated.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use df_core::handle::FrameHandle;
use df_types::error::{DfError, DfResult};

/// One ready entry: the computed handle, the leaf allocations pinning its key, and
/// the accounting the budget/quota policies run on.
struct ReadyEntry {
    #[allow(dead_code)] // held for its ownership (identity pinning), never read
    pins: Vec<FrameHandle>,
    handle: FrameHandle,
    bytes: usize,
    last_used: u64,
    /// The tenant whose execution produced this entry (`None` for an untenanted
    /// session). Hits from any *other* tenant count as shared hits.
    producer: Option<String>,
}

/// A key's state: computed, or being computed by exactly one producer.
enum Slot {
    Ready(ReadyEntry),
    InFlight,
}

/// Per-tenant attribution and quota state.
#[derive(Default)]
struct TenantState {
    hits: u64,
    produced: u64,
    retained_bytes: usize,
    quota: Option<usize>,
}

struct CacheInner {
    slots: HashMap<String, Slot>,
    budget: Option<usize>,
    /// Total bytes across Ready entries (in-flight markers are weightless).
    bytes: usize,
    /// LRU clock; bumped on every insert and hit.
    tick: u64,
    evictions: u64,
    hits: u64,
    shared_hits: u64,
    single_flight_waits: u64,
    quota_rejections: u64,
    tenants: HashMap<String, TenantState>,
}

impl CacheInner {
    /// Bump the clock and return the fresh tick.
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Remove a Ready entry (leaving in-flight markers untouched), releasing its
    /// byte accounting. Returns whether an entry was removed.
    fn remove_ready(&mut self, key: &str) -> bool {
        if !matches!(self.slots.get(key), Some(Slot::Ready(_))) {
            return false;
        }
        if let Some(Slot::Ready(entry)) = self.slots.remove(key) {
            self.bytes = self.bytes.saturating_sub(entry.bytes);
            if let Some(producer) = &entry.producer {
                if let Some(tenant) = self.tenants.get_mut(producer) {
                    tenant.retained_bytes = tenant.retained_bytes.saturating_sub(entry.bytes);
                }
            }
            return true;
        }
        false
    }

    /// The least-recently-used Ready key, optionally restricted to one producing
    /// tenant, excluding `exclude` (the entry being inserted).
    fn lru_victim(&self, exclude: &str, tenant_only: Option<&str>) -> Option<String> {
        self.slots
            .iter()
            .filter_map(|(key, slot)| match slot {
                Slot::Ready(entry) if key != exclude => match tenant_only {
                    Some(t) => (entry.producer.as_deref() == Some(t))
                        .then(|| (entry.last_used, key.clone())),
                    None => Some((entry.last_used, key.clone())),
                },
                _ => None,
            })
            .min()
            .map(|(_, key)| key)
    }

    /// Evict LRU entries until the global budget holds again. The entry just
    /// inserted under `keep_longest` is the last resort: a single result larger
    /// than the whole budget is returned to its caller but not retained.
    fn enforce_budget(&mut self, keep_longest: &str) {
        let Some(budget) = self.budget else { return };
        while self.bytes > budget {
            match self.lru_victim(keep_longest, None) {
                Some(victim) => {
                    self.remove_ready(&victim);
                    self.evictions += 1;
                }
                None => {
                    if self.remove_ready(keep_longest) {
                        self.evictions += 1;
                    }
                    break;
                }
            }
        }
    }

    /// Retained bytes currently attributed to `tenant`.
    fn retained(&self, tenant: &str) -> usize {
        self.tenants
            .get(tenant)
            .map(|t| t.retained_bytes)
            .unwrap_or(0)
    }

    /// Insert a Ready entry under `key`, enforcing the producing tenant's quota
    /// (own-LRU eviction first, typed rejection when the single result cannot fit)
    /// and then the global budget.
    fn insert_ready(
        &mut self,
        key: &str,
        pins: Vec<FrameHandle>,
        handle: FrameHandle,
        producer: Option<&str>,
    ) -> DfResult<()> {
        let bytes = handle.approx_size_bytes();
        self.remove_ready(key);
        if let Some(tenant) = producer {
            let quota = self.tenants.get(tenant).and_then(|t| t.quota);
            if let Some(quota) = quota {
                // A tenant over its own quota evicts *its own* least-recently-used
                // entries first — never another tenant's.
                while self.retained(tenant) + bytes > quota {
                    let Some(victim) = self.lru_victim(key, Some(tenant)) else {
                        break;
                    };
                    self.remove_ready(&victim);
                    self.evictions += 1;
                }
                if self.retained(tenant) + bytes > quota {
                    self.quota_rejections += 1;
                    return Err(DfError::ResourceExhausted(format!(
                        "tenant {tenant:?} memory quota exceeded: \
                         {bytes} byte result against a {quota} byte quota"
                    )));
                }
            }
        }
        let last_used = self.next_tick();
        self.bytes += bytes;
        if let Some(tenant) = producer {
            let state = self.tenants.entry(tenant.to_string()).or_default();
            state.retained_bytes += bytes;
            state.produced += 1;
        }
        self.slots.insert(
            key.to_string(),
            Slot::Ready(ReadyEntry {
                pins,
                handle,
                bytes,
                last_used,
                producer: producer.map(String::from),
            }),
        );
        self.enforce_budget(key);
        Ok(())
    }

    /// Record a hit by `tenant` on a Ready entry (bumps recency and attribution).
    fn note_hit(&mut self, key: &str, tenant: Option<&str>) -> Option<FrameHandle> {
        let tick = self.next_tick();
        let Some(Slot::Ready(entry)) = self.slots.get_mut(key) else {
            return None;
        };
        entry.last_used = tick;
        let handle = entry.handle.clone();
        let shared = entry.producer.as_deref() != tenant;
        self.hits += 1;
        if shared {
            self.shared_hits += 1;
        }
        if let Some(tenant) = tenant {
            self.tenants.entry(tenant.to_string()).or_default().hits += 1;
        }
        Some(handle)
    }
}

/// Result of [`ResultCache::begin`]: either a ready handle, or this caller is the
/// key's producer and must execute (then [`FlightGuard::complete`] or drop).
pub enum Lookup {
    /// The key was cached (possibly after waiting out another tenant's pending
    /// execution of it).
    Hit(FrameHandle),
    /// The key was absent: the caller is now its single-flight producer.
    Miss(FlightGuard),
}

/// The producer's claim on an in-flight key. [`FlightGuard::complete`] publishes
/// the computed handle and wakes every waiter; dropping the guard without
/// completing (execution failed or was cancelled) withdraws the claim and wakes
/// the waiters to race for a retry — so a failed producer never wedges a key.
pub struct FlightGuard {
    cache: Arc<ResultCache>,
    key: String,
    tenant: Option<String>,
    completed: bool,
}

impl FlightGuard {
    /// Publish the produced handle under the claimed key. `pins` must hold the
    /// leaf allocations the key's fingerprint identifies by address (see
    /// [`crate::session::QuerySession`]). Fails typed when the producing tenant's
    /// quota cannot fit the result — the handle is then *not* retained and the
    /// statement surfaces the quota error.
    pub fn complete(mut self, pins: Vec<FrameHandle>, handle: FrameHandle) -> DfResult<()> {
        self.completed = true;
        let cache = Arc::clone(&self.cache);
        let mut inner = cache.lock_inner();
        if matches!(inner.slots.get(&self.key), Some(Slot::InFlight)) {
            inner.slots.remove(&self.key);
        }
        let result = inner.insert_ready(&self.key, pins, handle, self.tenant.as_deref());
        drop(inner);
        cache.ready.notify_all();
        result
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        let mut inner = self.cache.lock_inner();
        if matches!(inner.slots.get(&self.key), Some(Slot::InFlight)) {
            inner.slots.remove(&self.key);
        }
        drop(inner);
        // Waiters re-check the key: one becomes the new producer.
        self.cache.ready.notify_all();
    }
}

/// Point-in-time cache counters (global plus per-tenant attribution).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Ready entries currently held.
    pub entries: usize,
    /// Bytes currently retained across entries.
    pub bytes: usize,
    /// The byte budget, when bounded.
    pub budget: Option<usize>,
    /// Entries evicted by budget or quota pressure (not explicit `evict` calls).
    pub evictions: u64,
    /// Hits served (first-try and after a single-flight wait alike).
    pub hits: u64,
    /// Hits where the hitting tenant differs from the producing tenant — the
    /// cross-session sharing the service exists for.
    pub shared_hits: u64,
    /// Times a caller blocked on another caller's pending execution instead of
    /// re-executing.
    pub single_flight_waits: u64,
    /// Results rejected because the producing tenant's quota could not fit them.
    pub quota_rejections: u64,
    /// Per-tenant attribution, sorted by tenant name.
    pub tenants: Vec<(String, TenantCacheStats)>,
}

/// One tenant's slice of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCacheStats {
    /// Hits this tenant was served.
    pub hits: u64,
    /// Entries this tenant's executions produced.
    pub produced: u64,
    /// Bytes currently retained for entries this tenant produced.
    pub retained_bytes: usize,
    /// This tenant's retained-bytes quota, when capped.
    pub quota: Option<usize>,
}

/// The shared fingerprint-keyed result cache (see the module docs for the
/// single-flight / budget / quota invariants).
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    ready: Condvar,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new()
    }
}

impl ResultCache {
    /// An unbounded cache (the single-session default — same retention behaviour
    /// the private per-session map had).
    pub fn new() -> Self {
        ResultCache::with_budget(None)
    }

    /// A cache bounded to `budget` bytes (`None` = unbounded), costed via
    /// [`FrameHandle::approx_size_bytes`] and evicted LRU-first.
    pub fn with_budget(budget: Option<usize>) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner {
                slots: HashMap::new(),
                budget,
                bytes: 0,
                tick: 0,
                evictions: 0,
                hits: 0,
                shared_hits: 0,
                single_flight_waits: 0,
                quota_rejections: 0,
                tenants: HashMap::new(),
            }),
            ready: Condvar::new(),
        }
    }

    fn lock_inner(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Cap (or uncap) the retained bytes attributed to `tenant`. Applies to
    /// future insertions; existing entries are not retroactively evicted.
    pub fn set_tenant_quota(&self, tenant: &str, quota: Option<usize>) {
        self.lock_inner()
            .tenants
            .entry(tenant.to_string())
            .or_default()
            .quota = quota;
    }

    /// Serve-or-claim `key` for `tenant`: a Ready entry is a [`Lookup::Hit`]; an
    /// in-flight entry blocks until its producer publishes or withdraws (counted
    /// as a single-flight wait); an absent entry makes this caller the producer
    /// and returns a [`Lookup::Miss`] guard.
    pub fn begin(self: &Arc<Self>, key: &str, tenant: Option<&str>) -> Lookup {
        let mut inner = self.lock_inner();
        loop {
            match inner.slots.get(key) {
                Some(Slot::Ready(_)) => {
                    if let Some(handle) = inner.note_hit(key, tenant) {
                        return Lookup::Hit(handle);
                    }
                }
                Some(Slot::InFlight) => {
                    inner.single_flight_waits += 1;
                    inner = self
                        .ready
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    inner.slots.insert(key.to_string(), Slot::InFlight);
                    return Lookup::Miss(FlightGuard {
                        cache: Arc::clone(self),
                        key: key.to_string(),
                        tenant: tenant.map(String::from),
                        completed: false,
                    });
                }
            }
        }
    }

    /// Non-blocking hit: serve a Ready entry (counting the hit), or `None` —
    /// including for in-flight keys, which callers on inspection paths (head/
    /// tail) deliberately do not wait on.
    pub fn lookup(&self, key: &str, tenant: Option<&str>) -> Option<FrameHandle> {
        self.lock_inner().note_hit(key, tenant)
    }

    /// Observational peek: the cached handle without touching any counter or
    /// recency state (plan rebasing and `explain` use this).
    pub fn peek(&self, key: &str) -> Option<FrameHandle> {
        match self.lock_inner().slots.get(key) {
            Some(Slot::Ready(entry)) => Some(entry.handle.clone()),
            _ => None,
        }
    }

    /// True when `key` is Ready *or* in flight (used to avoid spawning a
    /// duplicate background execution of a key someone is already producing).
    pub fn contains(&self, key: &str) -> bool {
        self.lock_inner().slots.contains_key(key)
    }

    /// Insert a handle computed outside a flight (promoting a finished background
    /// future). Skipped when the key is currently in flight — the producer owns
    /// the key and will publish its own result.
    pub fn insert(
        &self,
        key: &str,
        pins: Vec<FrameHandle>,
        handle: FrameHandle,
        tenant: Option<&str>,
    ) -> DfResult<()> {
        let mut inner = self.lock_inner();
        if matches!(inner.slots.get(key), Some(Slot::InFlight)) {
            return Ok(());
        }
        inner.insert_ready(key, pins, handle, tenant)
    }

    /// Drop one Ready entry (quarantine / invalidation). In-flight markers are
    /// owned by their producer's guard and never removed here.
    pub fn evict(&self, key: &str) {
        self.lock_inner().remove_ready(key);
    }

    /// Drop every Ready entry whose key starts with `prefix`, except `keep` — the
    /// ingest supersede path (same statement, regenerated file identity).
    pub fn evict_prefix_except(&self, prefix: &str, keep: &str) {
        let mut inner = self.lock_inner();
        let stale: Vec<String> = inner
            .slots
            .iter()
            .filter_map(|(key, slot)| match slot {
                Slot::Ready(_) if key != keep && key.starts_with(prefix) => Some(key.clone()),
                _ => None,
            })
            .collect();
        for key in stale {
            inner.remove_ready(&key);
        }
    }

    /// Drop every Ready entry produced by `tenant` (tenant disconnect, or a
    /// tenant voluntarily releasing its quota).
    pub fn evict_tenant(&self, tenant: &str) {
        let mut inner = self.lock_inner();
        let owned: Vec<String> = inner
            .slots
            .iter()
            .filter_map(|(key, slot)| match slot {
                Slot::Ready(entry) if entry.producer.as_deref() == Some(tenant) => {
                    Some(key.clone())
                }
                _ => None,
            })
            .collect();
        for key in owned {
            inner.remove_ready(&key);
        }
    }

    /// Drop every Ready entry (in-flight markers survive to completion).
    pub fn clear(&self) {
        let mut inner = self.lock_inner();
        let keys: Vec<String> = inner
            .slots
            .iter()
            .filter_map(|(key, slot)| match slot {
                Slot::Ready(_) => Some(key.clone()),
                _ => None,
            })
            .collect();
        for key in keys {
            inner.remove_ready(&key);
        }
    }

    /// Number of Ready entries.
    pub fn len(&self) -> usize {
        self.lock_inner()
            .slots
            .values()
            .filter(|slot| matches!(slot, Slot::Ready(_)))
            .count()
    }

    /// True when no Ready entry is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters, per-tenant attribution sorted by name.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock_inner();
        let mut tenants: Vec<(String, TenantCacheStats)> = inner
            .tenants
            .iter()
            .map(|(name, state)| {
                (
                    name.clone(),
                    TenantCacheStats {
                        hits: state.hits,
                        produced: state.produced,
                        retained_bytes: state.retained_bytes,
                        quota: state.quota,
                    },
                )
            })
            .collect();
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        CacheStats {
            entries: inner
                .slots
                .values()
                .filter(|slot| matches!(slot, Slot::Ready(_)))
                .count(),
            bytes: inner.bytes,
            budget: inner.budget,
            evictions: inner.evictions,
            hits: inner.hits,
            shared_hits: inner.shared_hits,
            single_flight_waits: inner.single_flight_waits,
            quota_rejections: inner.quota_rejections,
            tenants,
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResultCache")
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .field("budget", &stats.budget)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_core::dataframe::DataFrame;
    use df_types::cell::cell;

    fn handle(rows: usize) -> FrameHandle {
        FrameHandle::from_dataframe(
            DataFrame::from_columns(vec!["v"], vec![(0..rows).map(|i| cell(i as i64)).collect()])
                .unwrap(),
        )
    }

    #[test]
    fn begin_miss_then_hit_round_trips() {
        let cache = Arc::new(ResultCache::new());
        let Lookup::Miss(guard) = cache.begin("k", Some("a")) else {
            panic!("empty cache must miss");
        };
        let produced = handle(4);
        guard.complete(vec![], produced.clone()).unwrap();
        let Lookup::Hit(hit) = cache.begin("k", Some("b")) else {
            panic!("completed key must hit");
        };
        assert_eq!(hit.identity(), produced.identity());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.shared_hits, 1, "b hit a's entry");
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn waiters_block_on_the_flight_and_share_one_execution() {
        let cache = Arc::new(ResultCache::new());
        let Lookup::Miss(guard) = cache.begin("k", Some("producer")) else {
            panic!("first caller must be the producer");
        };
        let produced = handle(8);
        let waiters: Vec<_> = (0..4)
            .map(|i| {
                let cache = Arc::clone(&cache);
                let name = format!("waiter-{i}");
                std::thread::spawn(move || match cache.begin("k", Some(&name)) {
                    Lookup::Hit(h) => h.identity() as usize,
                    Lookup::Miss(_) => panic!("waiter must not become a producer"),
                })
            })
            .collect();
        // Give the waiters real time to park on the in-flight key.
        std::thread::sleep(std::time::Duration::from_millis(100));
        guard.complete(vec![], produced.clone()).unwrap();
        for waiter in waiters {
            assert_eq!(waiter.join().unwrap(), produced.identity() as usize);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.shared_hits, 4);
        assert!(stats.single_flight_waits >= 4, "{stats:?}");
    }

    #[test]
    fn abandoned_flights_hand_the_key_to_a_waiter() {
        let cache = Arc::new(ResultCache::new());
        let Lookup::Miss(guard) = cache.begin("k", None) else {
            panic!("first caller must be the producer");
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.begin("k", None) {
                Lookup::Miss(guard) => {
                    guard.complete(vec![], handle(2)).unwrap();
                    true
                }
                Lookup::Hit(_) => false,
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(100));
        drop(guard); // producer failed: the claim is withdrawn
        assert!(
            waiter.join().unwrap(),
            "the waiter must inherit the producer role"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_respects_the_budget_and_counts() {
        let unit = handle(16).approx_size_bytes();
        let cache = Arc::new(ResultCache::with_budget(Some(unit * 2 + unit / 2)));
        for key in ["a", "b", "c"] {
            let Lookup::Miss(guard) = cache.begin(key, None) else {
                panic!("fresh key must miss");
            };
            guard.complete(vec![], handle(16)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2, "{stats:?}");
        assert_eq!(stats.evictions, 1, "{stats:?}");
        assert!(stats.bytes <= unit * 2 + unit / 2);
        // "a" was least recently used.
        assert!(cache.peek("a").is_none());
        assert!(cache.peek("b").is_some() && cache.peek("c").is_some());
        // A hit on "b" refreshes it, so the next insert evicts "c".
        assert!(cache.lookup("b", None).is_some());
        let Lookup::Miss(guard) = cache.begin("d", None) else {
            panic!("fresh key must miss");
        };
        guard.complete(vec![], handle(16)).unwrap();
        assert!(cache.peek("b").is_some());
        assert!(cache.peek("c").is_none());
    }

    #[test]
    fn an_entry_larger_than_the_budget_is_returned_but_not_retained() {
        let unit = handle(64).approx_size_bytes();
        let cache = Arc::new(ResultCache::with_budget(Some(unit / 2)));
        let Lookup::Miss(guard) = cache.begin("big", None) else {
            panic!("fresh key must miss");
        };
        guard.complete(vec![], handle(64)).unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn tenant_quotas_evict_own_entries_first_then_reject_typed() {
        let unit = handle(16).approx_size_bytes();
        let cache = Arc::new(ResultCache::new());
        cache.set_tenant_quota("greedy", Some(unit + unit / 2));
        // Another tenant's entry must never be a quota victim.
        let Lookup::Miss(guard) = cache.begin("other", Some("modest")) else {
            panic!("fresh key must miss");
        };
        guard.complete(vec![], handle(16)).unwrap();
        for key in ["g1", "g2"] {
            let Lookup::Miss(guard) = cache.begin(key, Some("greedy")) else {
                panic!("fresh key must miss");
            };
            guard.complete(vec![], handle(16)).unwrap();
        }
        // g1 was evicted to make room for g2; modest's entry survived.
        assert!(cache.peek("g1").is_none());
        assert!(cache.peek("g2").is_some());
        assert!(cache.peek("other").is_some());
        // A single result over the whole quota rejects typed.
        cache.set_tenant_quota("greedy", Some(unit / 4));
        let Lookup::Miss(guard) = cache.begin("g3", Some("greedy")) else {
            panic!("fresh key must miss");
        };
        let err = guard.complete(vec![], handle(16)).unwrap_err();
        assert!(err.is_resource_exhausted(), "{err}");
        assert!(err.to_string().contains("quota"), "{err}");
        let stats = cache.stats();
        assert_eq!(stats.quota_rejections, 1, "{stats:?}");
        // Releasing the tenant's entries restores service.
        cache.set_tenant_quota("greedy", Some(unit * 4));
        cache.evict_tenant("greedy");
        let Lookup::Miss(guard) = cache.begin("g4", Some("greedy")) else {
            panic!("fresh key must miss");
        };
        guard.complete(vec![], handle(16)).unwrap();
        assert!(cache.peek("g4").is_some());
    }

    #[test]
    fn attribution_tracks_producers_and_hitters() {
        let cache = Arc::new(ResultCache::new());
        let Lookup::Miss(guard) = cache.begin("k", Some("a")) else {
            panic!("fresh key must miss");
        };
        guard.complete(vec![], handle(8)).unwrap();
        cache.lookup("k", Some("a"));
        cache.lookup("k", Some("b"));
        let stats = cache.stats();
        assert_eq!(stats.tenants.len(), 2);
        let (ref a_name, a) = stats.tenants[0];
        let (ref b_name, b) = stats.tenants[1];
        assert_eq!((a_name.as_str(), b_name.as_str()), ("a", "b"));
        assert_eq!((a.produced, a.hits), (1, 1));
        assert!(a.retained_bytes > 0);
        assert_eq!((b.produced, b.hits), (0, 1));
        assert_eq!(stats.shared_hits, 1);
    }

    #[test]
    fn clear_and_evict_leave_inflight_markers_alone() {
        let cache = Arc::new(ResultCache::new());
        let Lookup::Miss(flight) = cache.begin("pending", None) else {
            panic!("fresh key must miss");
        };
        let Lookup::Miss(done) = cache.begin("done", None) else {
            panic!("fresh key must miss");
        };
        done.complete(vec![], handle(4)).unwrap();
        cache.evict("pending"); // no-op: in flight
        cache.clear(); // drops "done", keeps the marker
        assert!(cache.contains("pending"));
        assert_eq!(cache.len(), 0);
        flight.complete(vec![], handle(4)).unwrap();
        assert_eq!(cache.len(), 1);
    }
}
