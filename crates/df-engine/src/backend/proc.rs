//! The process-parallel worker backend.
//!
//! [`ProcBackend`] keeps a lazily-grown pool of up to N spawned `df-band-worker`
//! processes and ships [`BandTask`]s to them over stdin/stdout pipes. The wire
//! payload for every band is the checksummed spill v4 frame
//! ([`df_storage::wire`]), so cross-process exchange inherits the spill format's
//! corruption detection verbatim — a flipped bit in transit fails the FNV-64
//! checksum exactly as a flipped bit on disk does.
//!
//! ## Failure model
//!
//! Faults split into two planes, distinguished by the exchange's nested result:
//!
//! * **Transport faults** (the pipe broke, the worker died, a frame failed its
//!   checksum): the worker is discarded (killed, waited, slot freed) and — since
//!   band tasks are pure functions of their inputs — the exchange is retried
//!   once on a fresh worker. A second transport fault surfaces as the typed
//!   error ([`DfError::WorkerLost`] / [`DfError::SpillCorruption`]); the engine's
//!   retry/recompute layer above can still recover the statement. Never a hang.
//! * **Task faults** (the task itself returned an error, or panicked in the
//!   worker): the worker stays healthy and is returned to the pool; the decoded
//!   error is returned without retry, exactly as the thread backend would.
//!
//! The `backend.exchange` failpoint makes both planes chaos-testable with the
//! deterministic df-types registry: `missing` kills the checked-out worker before
//! the exchange (exercising real death detection), `corrupt` mangles the received
//! response frame before decode (exercising the real checksum), `panic` panics in
//! the driver's task (exercising `par_map` isolation), and the I/O kinds surface
//! as typed spill errors.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use df_core::dataframe::DataFrame;
use df_storage::spill::{self, StoredPart};
use df_storage::wire;
use df_types::backend::BackendKind;
use df_types::fail::{self, FailAction};
use df_types::{DfError, DfResult};

use super::{BackendHealth, BandTask, ExecBackend, EXCHANGE_SITE};

/// One pooled worker process with its pipe endpoints.
struct Worker {
    id: usize,
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Worker {
    /// Kill the process and reap it. Best-effort: a worker that already exited
    /// is fine.
    fn destroy(mut self) {
        drop(self.stdin);
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Pool bookkeeping behind the mutex: parked idle workers plus the live count
/// (idle + checked out), which bounds spawning.
#[derive(Default)]
struct PoolState {
    idle: Vec<Worker>,
    live: usize,
}

/// The process-parallel backend (see the module docs for the protocol and the
/// failure model).
pub struct ProcBackend {
    workers: usize,
    bin: PathBuf,
    state: Mutex<PoolState>,
    available: Condvar,
    next_id: AtomicU64,
    workers_spawned: AtomicU64,
    restarts: AtomicU64,
    tasks_remote: AtomicU64,
    tasks_local: AtomicU64,
}

impl ProcBackend {
    /// A process backend with `workers` worker processes, spawning the
    /// `df-band-worker` binary found by [`super::resolve_worker_bin`]. Fails with
    /// a typed [`DfError::Unsupported`] when the binary cannot be located — a
    /// configuration that asked for process parallelism must never silently run
    /// on threads instead.
    pub fn new(workers: usize) -> DfResult<Self> {
        let bin = super::resolve_worker_bin()?;
        Ok(ProcBackend {
            workers: workers.max(1),
            bin,
            state: Mutex::new(PoolState::default()),
            available: Condvar::new(),
            next_id: AtomicU64::new(0),
            workers_spawned: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            tasks_remote: AtomicU64::new(0),
            tasks_local: AtomicU64::new(0),
        })
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        // Pool state holds no invariant a panicking holder could half-apply that
        // later holders cannot tolerate; recover from poisoning.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Take an idle worker, spawn a fresh one while under capacity, or wait for a
    /// checkin. `was_restart` marks respawns after a discard (health accounting).
    fn checkout(&self) -> DfResult<Worker> {
        let mut state = self.lock_state();
        loop {
            if let Some(worker) = state.idle.pop() {
                return Ok(worker);
            }
            if state.live < self.workers {
                state.live += 1;
                drop(state);
                return self.spawn().map_err(|err| {
                    self.lock_state().live -= 1;
                    self.available.notify_one();
                    err
                });
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn checkin(&self, worker: Worker) {
        self.lock_state().idle.push(worker);
        self.available.notify_one();
    }

    /// Kill a faulted worker and free its pool slot.
    fn discard(&self, worker: Worker) {
        worker.destroy();
        self.lock_state().live -= 1;
        self.available.notify_one();
    }

    fn spawn(&self) -> DfResult<Worker> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) as usize;
        let mut child = Command::new(&self.bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|err| {
                DfError::unsupported(format!(
                    "failed to spawn df-band-worker at {}: {err}",
                    self.bin.display()
                ))
            })?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take();
        let (stdin, stdout) = match (stdin, stdout) {
            (Some(stdin), Some(stdout)) => (stdin, stdout),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(DfError::internal("worker spawned without pipes"));
            }
        };
        let spawned_before = self.workers_spawned.fetch_add(1, Ordering::Relaxed);
        if spawned_before >= self.workers as u64 {
            // Spawns beyond the initial pool size are replacements for lost workers.
            self.restarts.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Worker {
            id,
            child,
            stdin,
            stdout: BufReader::new(stdout),
        })
    }

    /// One request/response round trip with `worker`. The nested result separates
    /// the planes: the outer `Err` is a transport fault (worker unusable), the
    /// inner `DfResult` is the task's own outcome (worker healthy either way).
    fn exchange(
        &self,
        worker: &mut Worker,
        task_raw: &str,
        parts: &[StoredPart],
        mangle_response: bool,
    ) -> Result<DfResult<Vec<DataFrame>>, DfError> {
        let lost = |worker: &Worker, detail: String| DfError::worker_lost(worker.id, detail);
        writeln!(worker.stdin, "T {} {}", parts.len(), task_raw.len())
            .and_then(|_| worker.stdin.write_all(task_raw.as_bytes()))
            .map_err(|err| lost(worker, format!("request header write failed: {err}")))?;
        for part in parts {
            wire::write_framed_part(&mut worker.stdin, part, EXCHANGE_SITE)
                .map_err(|err| lost(worker, format!("request frame write failed: {err}")))?;
        }
        worker
            .stdin
            .flush()
            .map_err(|err| lost(worker, format!("request flush failed: {err}")))?;

        let mut header = String::new();
        match worker.stdout.read_line(&mut header) {
            Ok(0) => {
                return Err(lost(
                    worker,
                    "worker closed its pipe before responding".into(),
                ))
            }
            Ok(_) => {}
            Err(err) => return Err(lost(worker, format!("response read failed: {err}"))),
        }
        let mut fields = header.trim_end().split(' ');
        match (fields.next(), fields.next(), fields.next()) {
            (Some("O"), Some(n), None) => {
                let n: usize = n
                    .parse()
                    .map_err(|_| lost(worker, format!("garbled response header {header:?}")))?;
                let mut outputs = Vec::with_capacity(n);
                for _ in 0..n {
                    let content = wire::read_frame_bytes(&mut worker.stdout, EXCHANGE_SITE)
                        .and_then(|content| {
                            content.ok_or_else(|| {
                                DfError::worker_lost(
                                    worker.id,
                                    "worker closed its pipe mid-response".to_string(),
                                )
                            })
                        })?;
                    let mut content = content;
                    if mangle_response {
                        // The `corrupt` failpoint models bit-rot on the wire: the
                        // mangled bytes go through the real checksum verification.
                        spill::mangle_payload(&mut content);
                    }
                    let part = spill::decode_spill_content(&content, EXCHANGE_SITE)?;
                    outputs.push(part.into_frame());
                }
                Ok(Ok(outputs))
            }
            (Some("E"), Some(len), None) => {
                let len: usize = len
                    .parse()
                    .map_err(|_| lost(worker, format!("garbled response header {header:?}")))?;
                let mut bytes = Vec::new();
                use std::io::Read;
                (&mut worker.stdout)
                    .take(len as u64)
                    .read_to_end(&mut bytes)
                    .map_err(|err| lost(worker, format!("error response read failed: {err}")))?;
                if bytes.len() < len {
                    return Err(lost(worker, "error response truncated".into()));
                }
                let raw = String::from_utf8_lossy(&bytes);
                Ok(Err(DfError::decode_wire(&raw)))
            }
            _ => Err(lost(worker, format!("garbled response header {header:?}"))),
        }
    }
}

impl ExecBackend for ProcBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Procs
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn run_task(&self, task: &BandTask, inputs: Vec<DataFrame>) -> DfResult<Vec<DataFrame>> {
        let encoded = match task.encode() {
            Some(encoded) => encoded,
            None => {
                // Closure-bearing tasks cannot cross the process boundary; run
                // them in the driver, visibly counted as local placements.
                self.tasks_local.fetch_add(1, Ordering::Relaxed);
                return task.run(inputs);
            }
        };
        let parts: Vec<StoredPart> = inputs.into_iter().map(StoredPart::Frame).collect();
        let mut attempt = 0;
        loop {
            attempt += 1;
            let injected = fail::failpoint(EXCHANGE_SITE);
            match injected {
                // The I/O and panic kinds model driver-side faults around the
                // exchange; `into_error` panics for Panic (caught by par_map's
                // isolation boundary) and types the rest.
                Some(action @ (FailAction::IoFull | FailAction::Panic)) => {
                    return Err(action.into_error(EXCHANGE_SITE));
                }
                Some(action @ FailAction::IoTransient) if attempt > 1 => {
                    return Err(action.into_error(EXCHANGE_SITE));
                }
                Some(FailAction::IoTransient) => continue,
                _ => {}
            }
            let mut worker = self.checkout()?;
            if injected == Some(FailAction::Missing) {
                // Kill the worker under us so the exchange exercises the *real*
                // death-detection path (broken pipe / EOF), not a synthetic error.
                let _ = worker.child.kill();
                let _ = worker.child.wait();
            }
            let mangle = injected == Some(FailAction::Corrupt);
            match self.exchange(&mut worker, &encoded, &parts, mangle) {
                Ok(outcome) => {
                    self.checkin(worker);
                    self.tasks_remote.fetch_add(1, Ordering::Relaxed);
                    return outcome;
                }
                Err(transport) => {
                    self.discard(worker);
                    if attempt == 1 {
                        // Band tasks are pure: a fresh worker recomputes the same
                        // outputs, so one lost worker never fails a statement.
                        continue;
                    }
                    return Err(transport);
                }
            }
        }
    }

    fn health(&self) -> BackendHealth {
        let live = self.lock_state().live as u64;
        BackendHealth {
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            workers_live: live,
            restarts: self.restarts.load(Ordering::Relaxed),
            tasks_remote: self.tasks_remote.load(Ordering::Relaxed),
            tasks_local: self.tasks_local.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        let mut state = self.lock_state();
        let idle = std::mem::take(&mut state.idle);
        state.live -= idle.len();
        drop(state);
        for worker in idle {
            worker.destroy();
        }
        self.available.notify_all();
    }
}

impl Drop for ProcBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}
