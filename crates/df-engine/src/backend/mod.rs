//! Executor backends: where per-band tasks actually run.
//!
//! The paper's architectural waist (§3.3) is that the dataframe algebra decouples
//! the API from execution — the Python implementation swaps Ray for Dask without
//! touching the operators. [`ExecBackend`] is that waist in this codebase: the
//! engine's operator kernels describe per-band work as serialisable
//! [`BandTask`]s and hand them to the session's backend for *placement*, while
//! the [`crate::executor::ParallelExecutor`] keeps owning *fan-out* (its
//! `par_map` thread pool, cancellation token and panic isolation are shared by
//! every backend).
//!
//! Two placements ship:
//!
//! * [`ThreadsBackend`] — run the task in-process on the calling worker thread
//!   (the pre-existing behaviour, bit-for-bit).
//! * [`proc::ProcBackend`] — serialise the task and its input bands, ship them to
//!   a spawned `df-band-worker` process over a pipe protocol whose payload is the
//!   checksummed spill v4 frame ([`df_storage::wire`]), and decode the results.
//!   Worker death or a corrupted frame surfaces as a typed
//!   [`df_types::DfError`] and the pool respawns — a lost worker never hangs a
//!   statement.
//!
//! Selection is configuration, not code: `ModinConfig::with_backend` /
//! `DF_BACKEND=threads|procs` pick the implementation per engine, and every
//! operator runs unchanged on either.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use df_core::dataframe::DataFrame;
use df_storage::spill::StoredPart;
use df_storage::wire;
use df_types::backend::BackendKind;
use df_types::{DfError, DfResult};

pub mod proc;
pub mod task;

pub use proc::ProcBackend;
pub use task::BandTask;

/// A snapshot of a backend's worker-pool health and task placement counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendHealth {
    /// Worker processes spawned over the backend's lifetime (0 for threads).
    pub workers_spawned: u64,
    /// Worker processes currently alive (0 for threads).
    pub workers_live: u64,
    /// Workers respawned after being lost or discarded mid-exchange.
    pub restarts: u64,
    /// Tasks executed in another process via the wire protocol.
    pub tasks_remote: u64,
    /// Tasks executed in the driver process (all of them, for threads; the
    /// closure-bearing remainder, for procs).
    pub tasks_local: u64,
}

/// Task placement: run a [`BandTask`] somewhere and return its outputs.
///
/// Implementations must be shareable across the executor's worker threads
/// (`Send + Sync`) and must never panic on worker failure — death, corruption
/// and protocol faults are typed [`DfError`]s. Cancellation stays cooperative at
/// the executor layer: `par_map` checks its [`df_types::CancelToken`] at every
/// task boundary, so a cancelled statement stops submitting tasks to the backend
/// rather than interrupting one mid-flight.
pub trait ExecBackend: Send + Sync {
    /// Which backend this is (mirrors `ModinConfig::backend`).
    fn kind(&self) -> BackendKind;

    /// The worker parallelism the backend was sized for.
    fn workers(&self) -> usize;

    /// Execute one task on its input bands.
    fn run_task(&self, task: &BandTask, inputs: Vec<DataFrame>) -> DfResult<Vec<DataFrame>>;

    /// Current pool health and placement counters.
    fn health(&self) -> BackendHealth;

    /// Release pool resources (kill idle workers). Dropping the backend does the
    /// same; this exists for explicit teardown in services.
    fn shutdown(&self) {}
}

/// The in-process backend: tasks run inline on the calling thread, exactly as the
/// engine computed them before backends existed.
pub struct ThreadsBackend {
    threads: usize,
    tasks_local: AtomicU64,
}

impl ThreadsBackend {
    /// A threads backend reporting the given worker parallelism.
    pub fn new(threads: usize) -> Self {
        ThreadsBackend {
            threads: threads.max(1),
            tasks_local: AtomicU64::new(0),
        }
    }
}

impl ExecBackend for ThreadsBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Threads
    }

    fn workers(&self) -> usize {
        self.threads
    }

    fn run_task(&self, task: &BandTask, inputs: Vec<DataFrame>) -> DfResult<Vec<DataFrame>> {
        self.tasks_local.fetch_add(1, Ordering::Relaxed);
        task.run(inputs)
    }

    fn health(&self) -> BackendHealth {
        BackendHealth {
            tasks_local: self.tasks_local.load(Ordering::Relaxed),
            ..BackendHealth::default()
        }
    }
}

/// Locate the `df-band-worker` binary the process backend spawns.
///
/// Resolution order: the `DF_WORKER_BIN` environment variable (tests set it from
/// `CARGO_BIN_EXE_df-band-worker`), then next to the current executable (test
/// binaries live in `target/<profile>/deps/`, the worker one level up), then
/// `target/{debug,release}` under the current directory and each of its
/// ancestors (doctest executables run from the crate's own directory, with the
/// workspace `target/` two levels up). A missing binary is a
/// typed [`DfError::Unsupported`] — never a silent fallback to threads, because
/// a test matrix arm that asked for procs must fail loudly if it cannot get them.
pub fn resolve_worker_bin() -> DfResult<PathBuf> {
    if let Ok(explicit) = std::env::var("DF_WORKER_BIN") {
        let path = PathBuf::from(explicit);
        if path.is_file() {
            return Ok(path);
        }
        return Err(DfError::unsupported(format!(
            "DF_WORKER_BIN points at {}, which does not exist",
            path.display()
        )));
    }
    let name = format!("df-band-worker{}", std::env::consts::EXE_SUFFIX);
    let mut candidates: Vec<PathBuf> = Vec::new();
    if let Ok(exe) = std::env::current_exe() {
        if let Some(dir) = exe.parent() {
            candidates.push(dir.join(&name));
            if let Some(parent) = dir.parent() {
                candidates.push(parent.join(&name));
            }
        }
    }
    if let Ok(cwd) = std::env::current_dir() {
        for dir in cwd.ancestors() {
            candidates.push(dir.join("target").join("debug").join(&name));
            candidates.push(dir.join("target").join("release").join(&name));
        }
    }
    candidates.into_iter().find(|p| p.is_file()).ok_or_else(|| {
        DfError::unsupported(
            "process backend requires the df-band-worker binary; \
                 build it with `cargo build --workspace` or set DF_WORKER_BIN",
        )
    })
}

/// The failure site every wire-protocol error is tagged with.
pub(crate) const EXCHANGE_SITE: &str = "backend.exchange";

/// The worker process's protocol loop; the `df-band-worker` binary is a thin
/// wrapper around this. Returns the process exit code.
///
/// Requests arrive on stdin as `T {n_inputs} {task_len}\n`, the task bytes, then
/// `n_inputs` length-prefixed spill v4 frames; responses leave on stdout as
/// `O {n_outputs}\n` plus framed outputs, or `E {err_len}\n` plus a wire-encoded
/// [`DfError`]. The failure model keeps the driver in charge:
///
/// * clean EOF at a request boundary → exit 0 (the driver closed the pipe);
/// * any malformed or truncated request → exit 2 (stream sync is unknowable, so
///   the driver sees a lost worker and respawns);
/// * a task that returns an error or panics → an `E` response (the worker stays
///   healthy — task failure is the *driver's* error to handle, not the pool's).
pub fn worker_main() -> i32 {
    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    let stdout = std::io::stdout();
    let mut writer = stdout.lock();
    loop {
        match serve_one(&mut reader, &mut writer) {
            Ok(true) => {}
            Ok(false) => return 0,
            Err(code) => return code,
        }
    }
}

/// Serve one request. `Ok(false)` = clean EOF, `Err(code)` = protocol fault.
fn serve_one<R: std::io::BufRead, W: std::io::Write>(
    reader: &mut R,
    writer: &mut W,
) -> Result<bool, i32> {
    use std::io::Read;

    let mut header = String::new();
    match reader.read_line(&mut header) {
        Ok(0) => return Ok(false),
        Ok(_) => {}
        Err(_) => return Err(2),
    }
    let mut fields = header.trim_end().split(' ');
    let (n_inputs, task_len) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
        (Some("T"), Some(n), Some(len), None) => match (n.parse::<usize>(), len.parse::<usize>()) {
            (Ok(n), Ok(len)) => (n, len),
            _ => return Err(2),
        },
        _ => return Err(2),
    };
    let mut task_bytes = Vec::new();
    if reader
        .take(task_len as u64)
        .read_to_end(&mut task_bytes)
        .is_err()
        || task_bytes.len() < task_len
    {
        return Err(2);
    }
    let task_raw = match String::from_utf8(task_bytes) {
        Ok(raw) => raw,
        Err(_) => return Err(2),
    };
    let mut inputs = Vec::with_capacity(n_inputs);
    for _ in 0..n_inputs {
        match wire::read_framed_part(reader, EXCHANGE_SITE) {
            Ok(Some(part)) => inputs.push(part.into_frame()),
            // EOF mid-request or a frame we cannot trust our position after:
            // bail out and let the driver respawn a clean worker.
            Ok(None) | Err(_) => return Err(2),
        }
    }
    let outcome = match BandTask::decode(&task_raw) {
        Ok(task) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.run(inputs)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(DfError::WorkerPanic(msg))
            }),
        Err(err) => Err(err),
    };
    let wrote = match outcome {
        Ok(outputs) => write_ok(writer, outputs),
        Err(err) => write_err(writer, &err),
    };
    if wrote.is_err() || writer.flush().is_err() {
        return Err(1);
    }
    Ok(true)
}

fn write_ok<W: std::io::Write>(writer: &mut W, outputs: Vec<DataFrame>) -> DfResult<()> {
    writeln!(writer, "O {}", outputs.len()).map_err(DfError::from)?;
    for frame in outputs {
        wire::write_framed_part(writer, &StoredPart::Frame(frame), EXCHANGE_SITE)?;
    }
    Ok(())
}

fn write_err<W: std::io::Write>(writer: &mut W, err: &DfError) -> DfResult<()> {
    let encoded = err.encode_wire();
    writeln!(writer, "E {}", encoded.len()).map_err(DfError::from)?;
    writer
        .write_all(encoded.as_bytes())
        .map_err(DfError::from)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell;
    use std::io::Write;

    fn frame() -> DataFrame {
        DataFrame::from_rows(
            vec![cell("a"), cell("b")],
            vec![
                vec![cell(1), cell("x")],
                vec![cell(2), cell("y")],
                vec![cell(3), cell("z")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn threads_backend_runs_tasks_inline_and_counts_them() {
        let backend = ThreadsBackend::new(2);
        assert_eq!(backend.kind(), BackendKind::Threads);
        assert_eq!(backend.workers(), 2);
        let task =
            BandTask::Projection(df_core::algebra::ColumnSelector::ByLabels(vec![cell("a")]));
        let out = backend.run_task(&task, vec![frame()]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].n_cols(), 1);
        let health = backend.health();
        assert_eq!(health.tasks_local, 1);
        assert_eq!(health.tasks_remote, 0);
        assert_eq!(health.workers_live, 0);
    }

    #[test]
    fn worker_loop_serves_requests_over_in_memory_pipes() {
        // Drive the exact protocol the driver speaks, against in-memory buffers.
        let task = BandTask::Selection(df_core::algebra::Predicate::ColCmp {
            column: cell("a"),
            op: df_core::algebra::CmpOp::Ge,
            value: cell(2),
        });
        let encoded = task.encode().unwrap();
        let mut request = Vec::new();
        writeln!(request, "T 1 {}", encoded.len()).unwrap();
        request.extend_from_slice(encoded.as_bytes());
        wire::write_framed_part(&mut request, &StoredPart::Frame(frame()), EXCHANGE_SITE).unwrap();

        let mut reader = std::io::Cursor::new(request);
        let mut response = Vec::new();
        assert_eq!(serve_one(&mut reader, &mut response), Ok(true));
        // Next call sees the clean EOF.
        assert_eq!(serve_one(&mut reader, &mut response), Ok(false));

        let mut resp_reader = std::io::Cursor::new(response);
        let mut header = String::new();
        std::io::BufRead::read_line(&mut resp_reader, &mut header).unwrap();
        assert_eq!(header.trim_end(), "O 1");
        let part = wire::read_framed_part(&mut resp_reader, EXCHANGE_SITE)
            .unwrap()
            .unwrap();
        assert_eq!(part.to_frame().n_rows(), 2);
    }

    #[test]
    fn worker_loop_reports_task_errors_without_dying() {
        // A task-level failure (unknown column) must produce an E response and
        // leave the loop ready for the next request.
        let task = BandTask::Projection(df_core::algebra::ColumnSelector::ByLabels(vec![cell(
            "no-such-column",
        )]));
        let encoded = task.encode().unwrap();
        let mut request = Vec::new();
        writeln!(request, "T 1 {}", encoded.len()).unwrap();
        request.extend_from_slice(encoded.as_bytes());
        wire::write_framed_part(&mut request, &StoredPart::Frame(frame()), EXCHANGE_SITE).unwrap();

        let mut reader = std::io::Cursor::new(request);
        let mut response = Vec::new();
        assert_eq!(serve_one(&mut reader, &mut response), Ok(true));

        let text = String::from_utf8(response).unwrap();
        let (header, body) = text.split_once('\n').unwrap();
        let len: usize = header.strip_prefix("E ").unwrap().parse().unwrap();
        assert_eq!(body.len(), len);
        assert!(matches!(
            DfError::decode_wire(body),
            DfError::ColumnNotFound(_)
        ));
    }

    #[test]
    fn worker_loop_rejects_malformed_requests_with_a_protocol_exit() {
        for garbage in ["X 1 4\n", "T one 4\n", "T 1\n", "T 1 999\nshort"] {
            let mut reader = std::io::Cursor::new(garbage.as_bytes().to_vec());
            let mut response = Vec::new();
            assert_eq!(serve_one(&mut reader, &mut response), Err(2), "{garbage:?}");
            assert!(response.is_empty());
        }
    }

    #[test]
    fn missing_worker_bin_is_a_typed_error() {
        // resolve_worker_bin with an explicit bogus path must not fall back.
        // (Set/unset of the env var is test-order sensitive, so use the explicit
        // branch only.)
        std::env::set_var("DF_WORKER_BIN", "/no/such/binary");
        let err = resolve_worker_bin().unwrap_err();
        std::env::remove_var("DF_WORKER_BIN");
        assert!(matches!(err, DfError::Unsupported(_)));
    }
}
