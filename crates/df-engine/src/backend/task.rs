//! Serialisable per-band tasks — the unit of work a backend places.
//!
//! [`BandTask`] names every embarrassingly-parallel stage the engine fans out over
//! bands: the rowwise operators, the GROUPBY partial phase, the shuffle's
//! split/concat hops (the band exchange itself), the per-band sort, the CSV chunk
//! parse and the ingest domain-reconciliation pass. A task is *data*, not a
//! closure: it can be encoded to a flat string and shipped to a worker process
//! that shares no address space with the driver, which is what lets one plan run
//! unchanged on the thread backend or the process backend (paper §3.3's
//! API/execution decoupling).
//!
//! The codec is a netstring-style length-prefixed encoding (`{len}:{bytes}`, list
//! counts ahead of elements) — unambiguous without any escaping, because every
//! string is read by its byte length. Cell literals (predicate constants, fill
//! values, rename pairs, group keys) ride in the spill format's own cell dialect
//! via [`df_storage::spill::encode_cells`], so the wire speaks one value language
//! end to end.
//!
//! Tasks built from opaque closures (`Predicate::Custom`, `MapFunc::Custom`,
//! `MapFunc::PerCell`) cannot cross a process boundary; [`BandTask::encode`]
//! returns `None` for them and the process backend runs them in-place on the
//! driver instead (counted as local tasks in [`super::BackendHealth`]).

use df_core::algebra::{AggFunc, Aggregation, CmpOp, ColumnSelector, MapFunc, Predicate, SortSpec};
use df_core::dataframe::DataFrame;
use df_core::ops;
use df_storage::csv::{self, CsvChunk, CsvIngestPlan, CsvOptions};
use df_storage::spill;
use df_types::{Cell, DfError, DfResult, Domain};

use crate::shuffle::{self, ShuffleKey};

/// One unit of per-band work, serialisable for cross-process placement.
#[derive(Debug, Clone)]
pub enum BandTask {
    /// SELECTION: keep the band's rows matching the predicate (1 input → 1 output).
    Selection(Predicate),
    /// PROJECTION: keep/reorder the selected columns (1 → 1).
    Projection(ColumnSelector),
    /// RENAME: relabel columns by the given `(old, new)` pairs (1 → 1).
    Rename(Vec<(Cell, Cell)>),
    /// MAP: apply a row function uniformly (1 → 1).
    Map(MapFunc),
    /// The GROUPBY partial phase: per-band partial aggregation, keys kept as
    /// leading data columns (1 → 1).
    GroupPartial {
        /// Group-key column labels.
        keys: Vec<Cell>,
        /// The partial-plan aggregations to fold per band.
        aggs: Vec<Aggregation>,
    },
    /// The shuffle's scatter hop: split one band into `parts` key-hashed bucket
    /// slices (1 input → `parts` outputs).
    HashSplit {
        /// What to hash rows on.
        key: ShuffleKey,
        /// Number of output buckets.
        parts: usize,
    },
    /// The shuffle's gather hop: concatenate one bucket's slices from every band
    /// into a single output band (n inputs → 1 output).
    Concat,
    /// The parallel sort's per-band phase: sort one band by the spec (1 → 1).
    SortBand(SortSpec),
    /// Parse one planned CSV chunk into a raw band (0 inputs → 1 output). The
    /// worker re-reads the chunk's byte range from the file itself, so only plan
    /// metadata crosses the wire, never file content.
    CsvChunk {
        /// Path of the CSV file (workers share the driver's filesystem).
        path: String,
        /// Parse options.
        options: CsvOptions,
        /// The plan's split header fields, if the file has a header.
        header: Option<Vec<String>>,
        /// Record arity from the plan.
        n_cols: usize,
        /// Total data records from the plan.
        total_rows: usize,
        /// File length from the plan.
        total_bytes: u64,
        /// The chunk to parse.
        chunk: CsvChunk,
    },
    /// The ingest reconcile pass: parse a raw band's columns into the reconciled
    /// per-column domains (1 → 1).
    ApplyDomains(Vec<Domain>),
}

impl BandTask {
    /// Execute the task on its inputs. This is the single definition of what each
    /// task *means*: the thread backend calls it in-process and the worker binary
    /// calls it on decoded inputs, so both backends compute the identical function.
    pub fn run(&self, inputs: Vec<DataFrame>) -> DfResult<Vec<DataFrame>> {
        match self {
            BandTask::Selection(predicate) => {
                Ok(vec![ops::rowwise::selection(&one(inputs)?, predicate)?])
            }
            BandTask::Projection(columns) => {
                Ok(vec![ops::rowwise::projection(&one(inputs)?, columns)?])
            }
            BandTask::Rename(mapping) => Ok(vec![ops::rowwise::rename(&one(inputs)?, mapping)?]),
            BandTask::Map(func) => Ok(vec![ops::rowwise::map(&one(inputs)?, func)?]),
            BandTask::GroupPartial { keys, aggs } => Ok(vec![ops::group::group_by(
                &one(inputs)?,
                keys,
                aggs,
                false,
            )?]),
            BandTask::HashSplit { key, parts } => shuffle::split_band(one(inputs)?, key, *parts),
            BandTask::Concat => Ok(vec![ops::setops::union_all(inputs)?]),
            BandTask::SortBand(spec) => Ok(vec![ops::group::sort(&one(inputs)?, spec)?]),
            BandTask::CsvChunk {
                path,
                options,
                header,
                n_cols,
                total_rows,
                total_bytes,
                chunk,
            } => {
                if !inputs.is_empty() {
                    return Err(DfError::internal("CsvChunk task takes no inputs"));
                }
                // `read_csv_chunk` only consults the plan's arity and labels; the
                // chunk list stays with the driver.
                let plan = CsvIngestPlan {
                    header: header.clone(),
                    n_cols: *n_cols,
                    total_rows: *total_rows,
                    total_bytes: *total_bytes,
                    chunks: Vec::new(),
                };
                Ok(vec![csv::read_csv_chunk(path, options, &plan, chunk)?])
            }
            BandTask::ApplyDomains(domains) => Ok(vec![csv::apply_domains(one(inputs)?, domains)?]),
        }
    }

    /// True when the task can be encoded and shipped to another process. False for
    /// tasks carrying opaque closures, which the process backend runs in-place.
    pub fn is_remote_safe(&self) -> bool {
        match self {
            BandTask::Selection(p) => predicate_is_data(p),
            BandTask::Map(f) => !matches!(f, MapFunc::Custom { .. } | MapFunc::PerCell { .. }),
            _ => true,
        }
    }

    /// Encode the task for the wire, or `None` when it carries closures (see
    /// [`BandTask::is_remote_safe`]).
    pub fn encode(&self) -> Option<String> {
        let mut e = Enc::default();
        match self {
            BandTask::Selection(p) => {
                e.str("sel");
                enc_predicate(&mut e, p)?;
            }
            BandTask::Projection(sel) => {
                e.str("proj");
                enc_selector(&mut e, sel);
            }
            BandTask::Rename(mapping) => {
                e.str("ren");
                e.count(mapping.len());
                for (old, new) in mapping {
                    e.cell(old);
                    e.cell(new);
                }
            }
            BandTask::Map(f) => {
                e.str("map");
                enc_map(&mut e, f)?;
            }
            BandTask::GroupPartial { keys, aggs } => {
                e.str("grp");
                e.cells(keys);
                e.count(aggs.len());
                for agg in aggs {
                    enc_aggregation(&mut e, agg);
                }
            }
            BandTask::HashSplit { key, parts } => {
                e.str("split");
                enc_key(&mut e, key);
                e.count(*parts);
            }
            BandTask::Concat => e.str("concat"),
            BandTask::SortBand(spec) => {
                e.str("sort");
                e.cells(&spec.by);
                e.count(spec.ascending.len());
                for &asc in &spec.ascending {
                    e.bool(asc);
                }
                e.bool(spec.stable);
            }
            BandTask::CsvChunk {
                path,
                options,
                header,
                n_cols,
                total_rows,
                total_bytes,
                chunk,
            } => {
                e.str("csv");
                e.str(path);
                e.str(&options.delimiter.to_string());
                e.bool(options.has_header);
                e.bool(options.infer_schema);
                match header {
                    Some(names) => {
                        e.bool(true);
                        e.count(names.len());
                        for name in names {
                            e.str(name);
                        }
                    }
                    None => e.bool(false),
                }
                e.count(*n_cols);
                e.count(*total_rows);
                e.count(*total_bytes as usize);
                e.count(chunk.start_byte as usize);
                e.count(chunk.end_byte as usize);
                e.count(chunk.rows);
                e.count(chunk.start_row);
            }
            BandTask::ApplyDomains(domains) => {
                e.str("domains");
                e.count(domains.len());
                for d in domains {
                    e.str(d.name());
                }
            }
        }
        Some(e.finish())
    }

    /// Decode a task encoded by [`BandTask::encode`]. Malformed input is a typed
    /// [`DfError::Internal`] (the worker folds it into its protocol error path) —
    /// never a panic.
    pub fn decode(raw: &str) -> DfResult<BandTask> {
        let mut d = Dec::new(raw);
        let tag = d.str()?.to_string();
        let task = match tag.as_str() {
            "sel" => BandTask::Selection(dec_predicate(&mut d)?),
            "proj" => BandTask::Projection(dec_selector(&mut d)?),
            "ren" => {
                let n = d.count()?;
                let mut mapping = Vec::with_capacity(n);
                for _ in 0..n {
                    let old = d.cell()?;
                    let new = d.cell()?;
                    mapping.push((old, new));
                }
                BandTask::Rename(mapping)
            }
            "map" => BandTask::Map(dec_map(&mut d)?),
            "grp" => {
                let keys = d.cells()?;
                let n = d.count()?;
                let mut aggs = Vec::with_capacity(n);
                for _ in 0..n {
                    aggs.push(dec_aggregation(&mut d)?);
                }
                BandTask::GroupPartial { keys, aggs }
            }
            "split" => {
                let key = dec_key(&mut d)?;
                let parts = d.count()?;
                BandTask::HashSplit { key, parts }
            }
            "concat" => BandTask::Concat,
            "sort" => {
                let by = d.cells()?;
                let n = d.count()?;
                let mut ascending = Vec::with_capacity(n);
                for _ in 0..n {
                    ascending.push(d.bool()?);
                }
                let stable = d.bool()?;
                BandTask::SortBand(SortSpec {
                    by,
                    ascending,
                    stable,
                })
            }
            "csv" => {
                let path = d.str()?.to_string();
                let delim = d.str()?.to_string();
                let mut delim_chars = delim.chars();
                let delimiter = match (delim_chars.next(), delim_chars.next()) {
                    (Some(c), None) => c,
                    _ => return Err(DfError::internal("band task: bad CSV delimiter")),
                };
                let has_header = d.bool()?;
                let infer_schema = d.bool()?;
                let header = if d.bool()? {
                    let n = d.count()?;
                    let mut names = Vec::with_capacity(n);
                    for _ in 0..n {
                        names.push(d.str()?.to_string());
                    }
                    Some(names)
                } else {
                    None
                };
                let n_cols = d.count()?;
                let total_rows = d.count()?;
                let total_bytes = d.count()? as u64;
                let chunk = CsvChunk {
                    start_byte: d.count()? as u64,
                    end_byte: d.count()? as u64,
                    rows: d.count()?,
                    start_row: d.count()?,
                };
                BandTask::CsvChunk {
                    path,
                    options: CsvOptions {
                        delimiter,
                        has_header,
                        infer_schema,
                    },
                    header,
                    n_cols,
                    total_rows,
                    total_bytes,
                    chunk,
                }
            }
            "domains" => {
                let n = d.count()?;
                let mut domains = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = d.str()?;
                    let domain = Domain::from_name(name).ok_or_else(|| {
                        DfError::internal(format!("band task: unknown domain {name:?}"))
                    })?;
                    domains.push(domain);
                }
                BandTask::ApplyDomains(domains)
            }
            other => {
                return Err(DfError::internal(format!(
                    "band task: unknown tag {other:?}"
                )))
            }
        };
        d.end()?;
        Ok(task)
    }
}

/// Extract the single input a 1-ary task expects.
fn one(inputs: Vec<DataFrame>) -> DfResult<DataFrame> {
    let mut inputs = inputs;
    match (inputs.pop(), inputs.pop()) {
        (Some(band), None) => Ok(band),
        _ => Err(DfError::internal("band task expects exactly one input")),
    }
}

fn predicate_is_data(p: &Predicate) -> bool {
    match p {
        Predicate::True
        | Predicate::ColCmp { .. }
        | Predicate::IsNull { .. }
        | Predicate::NotNull { .. }
        | Predicate::PositionRange { .. } => true,
        Predicate::Not(inner) => predicate_is_data(inner),
        Predicate::And(a, b) | Predicate::Or(a, b) => predicate_is_data(a) && predicate_is_data(b),
        Predicate::Custom { .. } => false,
    }
}

// ---------------------------------------------------------------------------
// Netstring-style encoder / decoder
// ---------------------------------------------------------------------------

/// Length-prefixed string writer: every atom is `{byte_len}:{bytes}`, so no value
/// ever needs escaping and the stream needs no delimiters.
#[derive(Default)]
struct Enc {
    out: String,
}

impl Enc {
    fn str(&mut self, s: &str) {
        self.out.push_str(&s.len().to_string());
        self.out.push(':');
        self.out.push_str(s);
    }

    fn count(&mut self, n: usize) {
        self.str(&n.to_string());
    }

    fn bool(&mut self, b: bool) {
        self.str(if b { "1" } else { "0" });
    }

    fn f64(&mut self, v: f64) {
        // `{}` on f64 prints the shortest string that parses back to the same bits.
        self.str(&format!("{v}"));
    }

    fn cell(&mut self, c: &Cell) {
        self.str(&spill::encode_cells(std::slice::from_ref(c)));
    }

    fn cells(&mut self, cs: &[Cell]) {
        self.count(cs.len());
        self.str(&spill::encode_cells(cs));
    }

    fn finish(self) -> String {
        self.out
    }
}

struct Dec<'a> {
    raw: &'a str,
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(raw: &'a str) -> Dec<'a> {
        Dec { raw, pos: 0 }
    }

    fn bad(&self, what: &str) -> DfError {
        DfError::internal(format!("band task: malformed {what} at byte {}", self.pos))
    }

    fn str(&mut self) -> DfResult<&'a str> {
        let rest = &self.raw[self.pos..];
        let colon = rest.find(':').ok_or_else(|| self.bad("length prefix"))?;
        let len: usize = rest[..colon]
            .parse()
            .map_err(|_| self.bad("length prefix"))?;
        let start = self.pos + colon + 1;
        let end = start.checked_add(len).ok_or_else(|| self.bad("length"))?;
        if end > self.raw.len() || !self.raw.is_char_boundary(end) {
            return Err(self.bad("atom"));
        }
        self.pos = end;
        Ok(&self.raw[start..end])
    }

    fn count(&mut self) -> DfResult<usize> {
        let raw = self.str()?;
        raw.parse().map_err(|_| self.bad("count"))
    }

    fn bool(&mut self) -> DfResult<bool> {
        match self.str()? {
            "1" => Ok(true),
            "0" => Ok(false),
            _ => Err(self.bad("bool")),
        }
    }

    fn f64(&mut self) -> DfResult<f64> {
        let raw = self.str()?;
        raw.parse().map_err(|_| self.bad("float"))
    }

    fn cell(&mut self) -> DfResult<Cell> {
        let raw = self.str()?;
        let mut cells = spill::decode_cells(raw, 1)?;
        cells
            .pop()
            .ok_or_else(|| DfError::internal("band task: empty cell atom"))
    }

    fn cells(&mut self) -> DfResult<Vec<Cell>> {
        let n = self.count()?;
        let raw = self.str()?;
        spill::decode_cells(raw, n)
    }

    /// Assert the stream was fully consumed — trailing bytes mean a codec skew.
    fn end(&self) -> DfResult<()> {
        if self.pos == self.raw.len() {
            Ok(())
        } else {
            Err(DfError::internal(format!(
                "band task: {} trailing bytes after decode",
                self.raw.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Algebra-type codecs
// ---------------------------------------------------------------------------

fn enc_predicate(e: &mut Enc, p: &Predicate) -> Option<()> {
    match p {
        Predicate::True => e.str("t"),
        Predicate::ColCmp { column, op, value } => {
            e.str("cmp");
            e.cell(column);
            e.str(cmp_name(*op));
            e.cell(value);
        }
        Predicate::IsNull { column } => {
            e.str("isnull");
            e.cell(column);
        }
        Predicate::NotNull { column } => {
            e.str("notnull");
            e.cell(column);
        }
        Predicate::PositionRange { start, end } => {
            e.str("range");
            e.count(*start);
            e.count(*end);
        }
        Predicate::Not(inner) => {
            e.str("not");
            enc_predicate(e, inner)?;
        }
        Predicate::And(a, b) => {
            e.str("and");
            enc_predicate(e, a)?;
            enc_predicate(e, b)?;
        }
        Predicate::Or(a, b) => {
            e.str("or");
            enc_predicate(e, a)?;
            enc_predicate(e, b)?;
        }
        Predicate::Custom { .. } => return None,
    }
    Some(())
}

fn dec_predicate(d: &mut Dec<'_>) -> DfResult<Predicate> {
    let tag = d.str()?.to_string();
    Ok(match tag.as_str() {
        "t" => Predicate::True,
        "cmp" => {
            let column = d.cell()?;
            let op = cmp_from_name(d.str()?)?;
            let value = d.cell()?;
            Predicate::ColCmp { column, op, value }
        }
        "isnull" => Predicate::IsNull { column: d.cell()? },
        "notnull" => Predicate::NotNull { column: d.cell()? },
        "range" => Predicate::PositionRange {
            start: d.count()?,
            end: d.count()?,
        },
        "not" => Predicate::Not(Box::new(dec_predicate(d)?)),
        "and" => Predicate::And(Box::new(dec_predicate(d)?), Box::new(dec_predicate(d)?)),
        "or" => Predicate::Or(Box::new(dec_predicate(d)?), Box::new(dec_predicate(d)?)),
        other => {
            return Err(DfError::internal(format!(
                "band task: unknown predicate tag {other:?}"
            )))
        }
    })
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn cmp_from_name(name: &str) -> DfResult<CmpOp> {
    Ok(match name {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => {
            return Err(DfError::internal(format!(
                "band task: unknown comparison {other:?}"
            )))
        }
    })
}

fn enc_selector(e: &mut Enc, sel: &ColumnSelector) {
    match sel {
        ColumnSelector::All => e.str("all"),
        ColumnSelector::ByLabels(labels) => {
            e.str("labels");
            e.cells(labels);
        }
        ColumnSelector::ByPositions(positions) => {
            e.str("pos");
            e.count(positions.len());
            for &p in positions {
                e.count(p);
            }
        }
        ColumnSelector::Numeric => e.str("numeric"),
        ColumnSelector::Excluding(labels) => {
            e.str("excl");
            e.cells(labels);
        }
    }
}

fn dec_selector(d: &mut Dec<'_>) -> DfResult<ColumnSelector> {
    let tag = d.str()?.to_string();
    Ok(match tag.as_str() {
        "all" => ColumnSelector::All,
        "labels" => ColumnSelector::ByLabels(d.cells()?),
        "pos" => {
            let n = d.count()?;
            let mut positions = Vec::with_capacity(n);
            for _ in 0..n {
                positions.push(d.count()?);
            }
            ColumnSelector::ByPositions(positions)
        }
        "numeric" => ColumnSelector::Numeric,
        "excl" => ColumnSelector::Excluding(d.cells()?),
        other => {
            return Err(DfError::internal(format!(
                "band task: unknown selector tag {other:?}"
            )))
        }
    })
}

fn enc_map(e: &mut Enc, f: &MapFunc) -> Option<()> {
    match f {
        MapFunc::IsNullMask => e.str("isnullmask"),
        MapFunc::FillNull(v) => {
            e.str("fill");
            e.cell(v);
        }
        MapFunc::StrUpper => e.str("upper"),
        MapFunc::StrLower => e.str("lower"),
        MapFunc::NumericAdd(v) => {
            e.str("add");
            e.f64(*v);
        }
        MapFunc::NumericMul(v) => {
            e.str("mul");
            e.f64(*v);
        }
        MapFunc::Cast(cols) => {
            e.str("cast");
            e.count(cols.len());
            for (label, domain) in cols {
                e.cell(label);
                e.str(domain.name());
            }
        }
        MapFunc::ParseRaw => e.str("parseraw"),
        MapFunc::NormalizeNumeric => e.str("norm"),
        MapFunc::OneHot { column, categories } => {
            e.str("onehot");
            e.cell(column);
            e.cells(categories);
        }
        MapFunc::PivotFlatten {
            label_source,
            value_source,
            output_labels,
        } => {
            e.str("pivot");
            e.cell(label_source);
            e.cell(value_source);
            e.cells(output_labels);
        }
        MapFunc::ProjectValues(sel) => {
            e.str("projvals");
            enc_selector(e, sel);
        }
        MapFunc::Custom { .. } | MapFunc::PerCell { .. } => return None,
    }
    Some(())
}

fn dec_map(d: &mut Dec<'_>) -> DfResult<MapFunc> {
    let tag = d.str()?.to_string();
    Ok(match tag.as_str() {
        "isnullmask" => MapFunc::IsNullMask,
        "fill" => MapFunc::FillNull(d.cell()?),
        "upper" => MapFunc::StrUpper,
        "lower" => MapFunc::StrLower,
        "add" => MapFunc::NumericAdd(d.f64()?),
        "mul" => MapFunc::NumericMul(d.f64()?),
        "cast" => {
            let n = d.count()?;
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                let label = d.cell()?;
                let name = d.str()?;
                let domain = Domain::from_name(name).ok_or_else(|| {
                    DfError::internal(format!("band task: unknown domain {name:?}"))
                })?;
                cols.push((label, domain));
            }
            MapFunc::Cast(cols)
        }
        "parseraw" => MapFunc::ParseRaw,
        "norm" => MapFunc::NormalizeNumeric,
        "onehot" => {
            let column = d.cell()?;
            let categories = d.cells()?;
            MapFunc::OneHot { column, categories }
        }
        "pivot" => {
            let label_source = d.cell()?;
            let value_source = d.cell()?;
            let output_labels = d.cells()?;
            MapFunc::PivotFlatten {
                label_source,
                value_source,
                output_labels,
            }
        }
        "projvals" => MapFunc::ProjectValues(dec_selector(d)?),
        other => {
            return Err(DfError::internal(format!(
                "band task: unknown map tag {other:?}"
            )))
        }
    })
}

fn agg_name(func: &AggFunc) -> &'static str {
    match func {
        AggFunc::Count => "count",
        AggFunc::CountNonNull => "countnn",
        AggFunc::Sum => "sum",
        AggFunc::Mean => "mean",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Std => "std",
        AggFunc::First => "first",
        AggFunc::Last => "last",
        AggFunc::Collect => "collect",
    }
}

fn agg_from_name(name: &str) -> DfResult<AggFunc> {
    Ok(match name {
        "count" => AggFunc::Count,
        "countnn" => AggFunc::CountNonNull,
        "sum" => AggFunc::Sum,
        "mean" => AggFunc::Mean,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "std" => AggFunc::Std,
        "first" => AggFunc::First,
        "last" => AggFunc::Last,
        "collect" => AggFunc::Collect,
        other => {
            return Err(DfError::internal(format!(
                "band task: unknown aggregate {other:?}"
            )))
        }
    })
}

fn enc_aggregation(e: &mut Enc, agg: &Aggregation) {
    match &agg.column {
        Some(c) => {
            e.bool(true);
            e.cell(c);
        }
        None => e.bool(false),
    }
    e.str(agg_name(&agg.func));
    match &agg.alias {
        Some(a) => {
            e.bool(true);
            e.cell(a);
        }
        None => e.bool(false),
    }
}

fn dec_aggregation(d: &mut Dec<'_>) -> DfResult<Aggregation> {
    let column = if d.bool()? { Some(d.cell()?) } else { None };
    let func = agg_from_name(d.str()?)?;
    let alias = if d.bool()? { Some(d.cell()?) } else { None };
    Ok(Aggregation {
        column,
        func,
        alias,
    })
}

fn enc_key(e: &mut Enc, key: &ShuffleKey) {
    match key {
        ShuffleKey::Positions(positions) => {
            e.str("pos");
            e.count(positions.len());
            for &p in positions {
                e.count(p);
            }
        }
        ShuffleKey::RowLabels => e.str("rowlabels"),
    }
}

fn dec_key(d: &mut Dec<'_>) -> DfResult<ShuffleKey> {
    let tag = d.str()?.to_string();
    Ok(match tag.as_str() {
        "pos" => {
            let n = d.count()?;
            let mut positions = Vec::with_capacity(n);
            for _ in 0..n {
                positions.push(d.count()?);
            }
            ShuffleKey::Positions(positions)
        }
        "rowlabels" => ShuffleKey::RowLabels,
        other => {
            return Err(DfError::internal(format!(
                "band task: unknown shuffle key tag {other:?}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell;
    use std::sync::Arc;

    fn sample_tasks() -> Vec<BandTask> {
        vec![
            BandTask::Selection(Predicate::And(
                Box::new(Predicate::ColCmp {
                    column: cell("a"),
                    op: CmpOp::Gt,
                    value: cell(1.5f64),
                }),
                Box::new(Predicate::Not(Box::new(Predicate::Or(
                    Box::new(Predicate::IsNull { column: cell("b") }),
                    Box::new(Predicate::PositionRange { start: 2, end: 9 }),
                )))),
            )),
            BandTask::Selection(Predicate::True),
            BandTask::Projection(ColumnSelector::ByLabels(vec![cell("x"), cell(3)])),
            BandTask::Projection(ColumnSelector::ByPositions(vec![2, 0, 1])),
            BandTask::Projection(ColumnSelector::Excluding(vec![cell("weird\ncol")])),
            BandTask::Rename(vec![(cell("old"), cell("new")), (cell(1), cell("one"))]),
            BandTask::Map(MapFunc::FillNull(cell("∅"))),
            BandTask::Map(MapFunc::NumericMul(f64::NAN)),
            BandTask::Map(MapFunc::Cast(vec![
                (cell("a"), Domain::Int),
                (cell("b"), Domain::Float),
            ])),
            BandTask::Map(MapFunc::OneHot {
                column: cell("city"),
                categories: vec![cell("oslo"), cell("lima")],
            }),
            BandTask::Map(MapFunc::ProjectValues(ColumnSelector::Numeric)),
            BandTask::GroupPartial {
                keys: vec![cell("k")],
                aggs: vec![
                    Aggregation::count_rows(),
                    Aggregation::of("v", AggFunc::Sum).with_alias("total"),
                    Aggregation::of("v", AggFunc::CountNonNull),
                ],
            },
            BandTask::HashSplit {
                key: ShuffleKey::Positions(vec![0, 2]),
                parts: 7,
            },
            BandTask::HashSplit {
                key: ShuffleKey::RowLabels,
                parts: 1,
            },
            BandTask::Concat,
            BandTask::SortBand(SortSpec {
                by: vec![cell("a"), cell("b")],
                ascending: vec![true, false],
                stable: true,
            }),
            BandTask::CsvChunk {
                path: "/tmp/with spaces:and colons.csv".into(),
                options: CsvOptions {
                    delimiter: ';',
                    has_header: true,
                    infer_schema: false,
                },
                header: Some(vec!["a".into(), "b c".into()]),
                n_cols: 2,
                total_rows: 100,
                total_bytes: 4096,
                chunk: CsvChunk {
                    start_byte: 17,
                    end_byte: 201,
                    rows: 9,
                    start_row: 4,
                },
            },
            BandTask::CsvChunk {
                path: "plain.csv".into(),
                options: CsvOptions::default(),
                header: None,
                n_cols: 3,
                total_rows: 0,
                total_bytes: 0,
                chunk: CsvChunk {
                    start_byte: 0,
                    end_byte: 0,
                    rows: 0,
                    start_row: 0,
                },
            },
            BandTask::ApplyDomains(vec![Domain::Int, Domain::Str, Domain::Bool]),
        ]
    }

    #[test]
    fn every_serialisable_task_round_trips() {
        for task in sample_tasks() {
            let encoded = task.encode().expect("sample tasks are remote-safe");
            let decoded = BandTask::decode(&encoded)
                .unwrap_or_else(|err| panic!("decode failed for {task:?}: {err}"));
            // BandTask cannot derive PartialEq (MapFunc/Predicate carry closures in
            // other variants), so equality is pinned by re-encoding.
            assert_eq!(
                decoded.encode().expect("decoded task stays remote-safe"),
                encoded,
                "re-encode mismatch for {task:?}"
            );
            assert!(task.is_remote_safe());
        }
    }

    #[test]
    fn closure_tasks_are_not_remote_safe() {
        let custom_pred = BandTask::Selection(Predicate::Custom {
            name: "udf".into(),
            func: Arc::new(|_| true),
        });
        let custom_map = BandTask::Map(MapFunc::PerCell {
            name: "udf".into(),
            func: Arc::new(|c| c.clone()),
        });
        for task in [custom_pred, custom_map] {
            assert!(!task.is_remote_safe());
            assert!(task.encode().is_none());
        }
        // Closures nested inside combinators are caught too.
        let nested = BandTask::Selection(Predicate::Not(Box::new(Predicate::Custom {
            name: "udf".into(),
            func: Arc::new(|_| false),
        })));
        assert!(!nested.is_remote_safe());
        assert!(nested.encode().is_none());
    }

    #[test]
    fn decoding_garbage_is_a_typed_error() {
        for raw in [
            "",
            "3:zzz",
            "5:sel",
            "3:sel3:cmp",
            "6:concat9:trailing!",
            "99999:sel",
        ] {
            assert!(
                BandTask::decode(raw).is_err(),
                "raw {raw:?} should fail to decode"
            );
        }
    }

    #[test]
    fn decoded_tasks_compute_the_same_function() {
        let frame = DataFrame::from_rows(
            vec![cell("k"), cell("v")],
            vec![
                vec![cell("a"), cell(1)],
                vec![cell("b"), cell(2)],
                vec![cell("a"), cell(3)],
            ],
        )
        .unwrap();
        let task = BandTask::GroupPartial {
            keys: vec![cell("k")],
            aggs: vec![Aggregation::of("v", AggFunc::Sum)],
        };
        let direct = task.run(vec![frame.clone()]).unwrap();
        let decoded = BandTask::decode(&task.encode().unwrap()).unwrap();
        let via_wire = decoded.run(vec![frame]).unwrap();
        assert_eq!(direct.len(), via_wire.len());
        assert!(direct[0].same_data(&via_wire[0]));
    }
}
